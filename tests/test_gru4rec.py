"""Tests for the GRU substrate layer and the GRU4Rec extension baseline."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.numeric import gradient_check
from repro.autograd.recurrent import GRU, GRUCell
from repro.data import InteractionDataset, split_setting
from repro.evaluation import RankingEvaluator
from repro.models import GRU4Rec, Popularity, create_model
from repro.training import Trainer, TrainingConfig


class TestGRUCell:
    def test_output_shape_and_range(self):
        cell = GRUCell(4, 6, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        h = Tensor(np.zeros((3, 6)))
        out = cell(x, h)
        assert out.shape == (3, 6)
        # GRU output is a convex combination of h (=0) and tanh candidate, so
        # it must stay strictly inside (-1, 1).
        assert np.all(np.abs(out.data) < 1.0)

    def test_zero_update_gate_keeps_state(self):
        cell = GRUCell(3, 3, rng=np.random.default_rng(2))
        # Force the update gate to ~0 by a large negative bias on its block.
        cell.bias.data[:3] = -50.0
        h = Tensor(np.random.default_rng(3).normal(size=(2, 3)))
        x = Tensor(np.random.default_rng(4).normal(size=(2, 3)))
        out = cell(x, h)
        assert np.allclose(out.data, h.data, atol=1e-6)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GRUCell(0, 3, rng=np.random.default_rng(5))

    def test_gradcheck(self):
        cell = GRUCell(2, 2, rng=np.random.default_rng(6))
        x = Tensor(np.random.default_rng(7).normal(size=(2, 2)), requires_grad=True)
        h = Tensor(np.random.default_rng(8).normal(size=(2, 2)), requires_grad=True)
        gradient_check(lambda: (cell(x, h) ** 2).sum(),
                       [x, h, cell.weight_input, cell.weight_hidden, cell.bias])


class TestGRULayer:
    def test_sequence_output_shape(self):
        gru = GRU(4, 5, rng=np.random.default_rng(9))
        sequence = Tensor(np.random.default_rng(10).normal(size=(2, 6, 4)))
        out = gru(sequence)
        assert out.shape == (2, 6, 5)
        assert gru.final_state(sequence).shape == (2, 5)

    def test_mask_carries_state_through_padding(self):
        gru = GRU(3, 4, rng=np.random.default_rng(11))
        rng = np.random.default_rng(12)
        real = rng.normal(size=(1, 3, 3))
        # Same real prefix, then one garbage step that is masked out.
        padded = np.concatenate([real, rng.normal(size=(1, 1, 3))], axis=1)
        mask = np.array([[True, True, True, False]])
        state_real = gru.final_state(Tensor(real)).data
        state_padded = gru.final_state(Tensor(padded), mask=mask).data
        assert np.allclose(state_real, state_padded)

    def test_order_matters(self):
        gru = GRU(3, 4, rng=np.random.default_rng(13))
        rng = np.random.default_rng(14)
        seq = rng.normal(size=(1, 4, 3))
        reversed_seq = seq[:, ::-1, :].copy()
        assert not np.allclose(gru.final_state(Tensor(seq)).data,
                               gru.final_state(Tensor(reversed_seq)).data)


class TestGRU4Rec:
    def test_interface_shapes(self):
        model = GRU4Rec(num_users=10, num_items=30, embedding_dim=8,
                        sequence_length=5, rng=np.random.default_rng(15))
        users = np.array([0, 1, 2])
        inputs = np.random.default_rng(16).integers(0, 30, size=(3, 5))
        assert model.sequence_representation(users, inputs).shape == (3, 8)
        assert model.score_all(users, inputs).shape == (3, 30)

    def test_padding_does_not_blow_up(self):
        model = GRU4Rec(num_users=10, num_items=30, embedding_dim=8,
                        sequence_length=5, rng=np.random.default_rng(17))
        inputs = np.full((2, 5), 30, dtype=np.int64)   # fully padded rows
        inputs[:, -1] = [3, 7]
        scores = model.score_all(np.array([0, 1]), inputs)
        assert np.all(np.isfinite(scores))

    def test_registry_and_default_hyperparameters(self):
        from repro.experiments.configs import default_model_hyperparameters
        params = default_model_hyperparameters("GRU4Rec", "cds")
        model = create_model("GRU4Rec", num_users=8, num_items=20,
                             rng=np.random.default_rng(18), **params)
        assert model.input_length == params["sequence_length"]

    def test_gradients_reach_gru_parameters(self):
        model = GRU4Rec(num_users=10, num_items=30, embedding_dim=8,
                        sequence_length=4, rng=np.random.default_rng(19))
        users = np.array([0, 1])
        inputs = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
        model.score_items(users, inputs, np.array([[9], [10]])).sum().backward()
        assert model.gru.cell.weight_input.grad is not None
        assert model.item_embeddings.weight.grad is not None

    def test_learns_successor_pattern(self):
        # Same integration check as for HAM: on data with a deterministic
        # successor pattern a recurrent model must beat popularity.
        num_items = 20
        rng = np.random.default_rng(20)
        sequences = []
        for _ in range(30):
            start = int(rng.integers(0, num_items))
            sequences.append([(start + t) % num_items for t in range(15)])
        dataset = InteractionDataset(sequences, num_items, name="pattern")
        split = split_setting(dataset, "80-3-CUT")
        evaluator = RankingEvaluator(split, ks=(5,), mode="test")

        model = GRU4Rec(dataset.num_users, num_items, embedding_dim=16,
                        sequence_length=4, rng=np.random.default_rng(21))
        Trainer(model, TrainingConfig(num_epochs=30, batch_size=128, n_p=2, seed=21)).fit(
            split.train_plus_valid())
        pop = Popularity(dataset.num_users, num_items).fit_counts(split.train_plus_valid())
        assert (evaluator.evaluate(model)["Recall@5"]
                > evaluator.evaluate(pop)["Recall@5"])
