"""Tests for pooling, synergies and the HAM model family."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.numeric import gradient_check
from repro.models import HAM, HAMSynergy
from repro.models.pooling import get_pooling, masked_max_pool, masked_mean_pool
from repro.models.synergy import latent_cross, synergy_vectors


def embeddings_and_mask(batch=2, length=4, dim=3, seed=0, masked_positions=()):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(batch, length, dim))
    mask = np.ones((batch, length), dtype=bool)
    for row, column in masked_positions:
        mask[row, column] = False
        data[row, column] = 0.0  # padded rows carry zero embeddings
    return Tensor(data, requires_grad=True), mask


class TestPooling:
    def test_mean_pool_without_padding_matches_numpy(self):
        x, mask = embeddings_and_mask()
        pooled = masked_mean_pool(x, mask)
        assert np.allclose(pooled.data, x.data.mean(axis=1))

    def test_mean_pool_ignores_padding(self):
        x, mask = embeddings_and_mask(masked_positions=[(0, 0), (0, 1)])
        pooled = masked_mean_pool(x, mask)
        expected = x.data[0, 2:].mean(axis=0)
        assert np.allclose(pooled.data[0], expected)

    def test_max_pool_without_padding_matches_numpy(self):
        x, mask = embeddings_and_mask(seed=1)
        pooled = masked_max_pool(x, mask)
        assert np.allclose(pooled.data, x.data.max(axis=1))

    def test_max_pool_ignores_padding(self):
        x, mask = embeddings_and_mask(seed=2)
        # Put a huge value in a masked slot: it must not win the max.
        x.data[0, 0] = 100.0
        mask[0, 0] = False
        pooled = masked_max_pool(x, mask)
        assert pooled.data[0].max() < 100.0

    def test_fully_masked_row_gives_zero(self):
        x, mask = embeddings_and_mask()
        mask[1, :] = False
        assert np.allclose(masked_mean_pool(x, mask).data[1], 0.0)
        assert np.allclose(masked_max_pool(x, mask).data[1], 0.0)

    def test_mean_pool_gradcheck(self):
        x, mask = embeddings_and_mask(masked_positions=[(1, 3)])
        gradient_check(lambda: (masked_mean_pool(x, mask) ** 2).sum(), [x])

    def test_max_pool_gradient_goes_to_argmax(self):
        x, mask = embeddings_and_mask(seed=3)
        masked_max_pool(x, mask).sum().backward()
        # each (batch, dim) cell routes gradient 1 to exactly one position
        assert np.allclose(x.grad.sum(axis=1), 1.0)

    def test_get_pooling(self):
        assert get_pooling("mean") is masked_mean_pool
        assert get_pooling("MAX") is masked_max_pool
        with pytest.raises(ValueError):
            get_pooling("sum")


class TestSynergy:
    def test_order_one_returns_empty(self):
        x, mask = embeddings_and_mask()
        assert synergy_vectors(x, mask, order=1) == []

    def test_order_two_matches_bruteforce(self):
        x, mask = embeddings_and_mask(batch=1, length=4, dim=3, seed=4)
        data = x.data[0]
        # brute force Eq. 2-4
        per_item = []
        for j in range(4):
            synergy_j = np.zeros(3)
            for k in range(4):
                if k != j:
                    synergy_j += data[j] * data[k]
            per_item.append(synergy_j)
        expected = np.mean(per_item, axis=0)
        result = synergy_vectors(x, mask, order=2)[0]
        assert np.allclose(result.data[0], expected)

    def test_order_three_matches_recursive_bruteforce(self):
        x, mask = embeddings_and_mask(batch=1, length=3, dim=2, seed=5)
        data = x.data[0]
        total = data.sum(axis=0)
        per_item_2 = [data[j] * (total - data[j]) for j in range(3)]
        per_item_3 = [per_item_2[j] * (total - data[j]) for j in range(3)]
        expected = np.mean(per_item_3, axis=0)
        result = synergy_vectors(x, mask, order=3)[1]
        assert np.allclose(result.data[0], expected)

    def test_padding_is_excluded(self):
        # One padded position: the synergy must equal the bruteforce value
        # computed on the real items only.
        x, mask = embeddings_and_mask(batch=1, length=4, dim=3, seed=6,
                                      masked_positions=[(0, 0)])
        data = x.data[0, 1:]
        per_item = []
        for j in range(3):
            synergy_j = np.zeros(3)
            for k in range(3):
                if k != j:
                    synergy_j += data[j] * data[k]
            per_item.append(synergy_j)
        expected = np.mean(per_item, axis=0)
        result = synergy_vectors(x, mask, order=2)[0]
        assert np.allclose(result.data[0], expected)

    def test_number_of_orders(self):
        x, mask = embeddings_and_mask()
        assert len(synergy_vectors(x, mask, order=4)) == 3

    def test_gradcheck(self):
        x, mask = embeddings_and_mask(batch=1, length=3, dim=2, seed=7)
        gradient_check(
            lambda: Tensor.concatenate(synergy_vectors(x, mask, 3), axis=1).sum(), [x]
        )

    def test_latent_cross(self):
        h = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        c2 = Tensor(np.array([[0.5, 0.5]]))
        c3 = Tensor(np.array([[0.1, -0.1]]))
        out = latent_cross(h, [c2, c3])
        assert np.allclose(out.data, [[1 + 0.5 + 0.1, 2 + 1.0 - 0.2]])
        assert np.allclose(latent_cross(h, []).data, h.data)


def make_inputs(batch=4, n_h=5, num_items=30, seed=0, with_padding=False):
    rng = np.random.default_rng(seed)
    users = rng.integers(0, 10, size=batch)
    inputs = rng.integers(0, num_items, size=(batch, n_h))
    if with_padding:
        inputs[0, :2] = num_items  # pad first two slots of first row
    return users, inputs


class TestHAM:
    def test_output_shapes(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8, n_h=5, n_l=2,
                    rng=np.random.default_rng(0))
        users, inputs = make_inputs()
        rep = model.sequence_representation(users, inputs)
        assert rep.shape == (4, 8)
        scores = model.score_all(users, inputs)
        assert scores.shape == (4, 30)

    def test_score_items_matches_score_all(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8,
                    rng=np.random.default_rng(1))
        users, inputs = make_inputs(seed=1)
        items = np.array([[0, 5, 7], [1, 2, 3], [9, 9, 9], [29, 0, 15]])
        specific = model.score_items(users, inputs, items).data
        full = model.score_all(users, inputs)
        for row in range(4):
            assert np.allclose(specific[row], full[row, items[row]])

    def test_representation_is_sum_of_three_factors(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8, n_h=5, n_l=2,
                    rng=np.random.default_rng(2))
        users, inputs = make_inputs(seed=2)
        high, low = model.association_embeddings(inputs)
        user_vec = model.user_embeddings(users)
        rep = model.sequence_representation(users, inputs)
        assert np.allclose(rep.data, (high + low + user_vec).data)

    def test_padding_rows_do_not_affect_mean_pooling(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8, n_h=5, n_l=2,
                    pooling="mean", rng=np.random.default_rng(3))
        users, inputs = make_inputs(seed=3, with_padding=True)
        rep_padded = model.sequence_representation(users, inputs).data[0]
        # Build the equivalent unpadded short window by hand.
        real = inputs[0, 2:]
        high = model.source_item_embeddings.weight.data[real].mean(axis=0)
        low = model.source_item_embeddings.weight.data[inputs[0, -2:]].mean(axis=0)
        user_vec = model.user_embeddings.weight.data[users[0]]
        assert np.allclose(rep_padded, high + low + user_vec)

    def test_nl_zero_drops_low_order_term(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8, n_h=4, n_l=0,
                    rng=np.random.default_rng(4))
        users, inputs = make_inputs(n_h=4, seed=4)
        high, low = model.association_embeddings(inputs)
        assert low is None
        rep = model.sequence_representation(users, inputs)
        expected = high + model.user_embeddings(users)
        assert np.allclose(rep.data, expected.data)

    def test_no_user_embedding_variant(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8, n_h=4, n_l=2,
                    use_user_embedding=False, rng=np.random.default_rng(5))
        users, inputs = make_inputs(n_h=4, seed=5)
        rep = model.sequence_representation(users, inputs)
        high, low = model.association_embeddings(inputs)
        assert np.allclose(rep.data, (high + low).data)

    def test_variant_names(self):
        rng = np.random.default_rng(6)
        assert HAM(5, 10, 4, pooling="mean", rng=rng).variant_name == "HAMm"
        assert HAM(5, 10, 4, pooling="max", rng=rng).variant_name == "HAMx"
        assert HAM(5, 10, 4, n_l=0, rng=rng).variant_name == "HAMm-o"
        assert HAM(5, 10, 4, use_user_embedding=False, rng=rng).variant_name == "HAMm-u"

    def test_invalid_configurations(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            HAM(5, 10, 4, n_h=3, n_l=4, rng=rng)
        with pytest.raises(ValueError):
            HAM(0, 10, 4, rng=rng)
        with pytest.raises(ValueError):
            HAM(5, 10, 4, pooling="median", rng=rng)

    def test_gradients_reach_all_parameter_groups(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8, n_h=5, n_l=2,
                    rng=np.random.default_rng(8))
        users, inputs = make_inputs(seed=8)
        items = np.array([[1], [2], [3], [4]])
        model.score_items(users, inputs, items).sum().backward()
        assert model.user_embeddings.weight.grad is not None
        assert model.source_item_embeddings.weight.grad is not None
        assert model.target_item_embeddings.weight.grad is not None

    def test_after_step_keeps_padding_zero(self):
        model = HAM(num_users=10, num_items=30, embedding_dim=8,
                    rng=np.random.default_rng(9))
        model.source_item_embeddings.weight.data[model.pad_id] = 1.0
        model.after_step()
        assert np.allclose(model.source_item_embeddings.weight.data[model.pad_id], 0.0)


class TestHAMSynergy:
    def test_reduces_to_ham_when_order_one(self):
        rng_a = np.random.default_rng(10)
        rng_b = np.random.default_rng(10)
        ham = HAM(num_users=10, num_items=30, embedding_dim=8, n_h=5, n_l=2, rng=rng_a)
        hams = HAMSynergy(num_users=10, num_items=30, embedding_dim=8, n_h=5, n_l=2,
                          synergy_order=1, rng=rng_b)
        users, inputs = make_inputs(seed=11)
        assert np.allclose(
            ham.sequence_representation(users, inputs).data,
            hams.sequence_representation(users, inputs).data,
        )

    def test_synergy_changes_representation(self):
        rng_a = np.random.default_rng(12)
        rng_b = np.random.default_rng(12)
        plain = HAMSynergy(10, 30, 8, n_h=5, n_l=2, synergy_order=1, rng=rng_a)
        synergy = HAMSynergy(10, 30, 8, n_h=5, n_l=2, synergy_order=2, rng=rng_b)
        users, inputs = make_inputs(seed=12)
        assert not np.allclose(
            plain.sequence_representation(users, inputs).data,
            synergy.sequence_representation(users, inputs).data,
        )

    def test_latent_cross_formula(self):
        model = HAMSynergy(10, 30, 8, n_h=4, n_l=0, synergy_order=3,
                           use_user_embedding=False, rng=np.random.default_rng(13))
        users, inputs = make_inputs(n_h=4, seed=13)
        high, _ = model.association_embeddings(inputs)
        synergies = model.synergy_terms(inputs)
        expected = high.data * (1.0 + sum(s.data for s in synergies))
        rep = model.sequence_representation(users, inputs)
        assert np.allclose(rep.data, expected)

    def test_variant_names(self):
        rng = np.random.default_rng(14)
        assert HAMSynergy(5, 10, 4, pooling="mean", rng=rng).variant_name == "HAMs_m"
        assert HAMSynergy(5, 10, 4, pooling="max", rng=rng).variant_name == "HAMs_x"
        assert HAMSynergy(5, 10, 4, n_l=0, rng=rng).variant_name == "HAMs_m-o"
        assert HAMSynergy(5, 10, 4, use_user_embedding=False, rng=rng).variant_name == "HAMs_m-u"

    def test_invalid_synergy_order(self):
        rng = np.random.default_rng(15)
        with pytest.raises(ValueError):
            HAMSynergy(5, 10, 4, synergy_order=0, rng=rng)
        with pytest.raises(ValueError):
            HAMSynergy(5, 10, 4, n_h=3, synergy_order=4, rng=rng)

    def test_score_all_shape(self):
        model = HAMSynergy(10, 30, 8, rng=np.random.default_rng(16))
        users, inputs = make_inputs(seed=16)
        assert model.score_all(users, inputs).shape == (4, 30)

    def test_gradients_flow_through_synergies(self):
        model = HAMSynergy(10, 30, 8, n_h=5, n_l=2, synergy_order=3,
                           rng=np.random.default_rng(17))
        users, inputs = make_inputs(seed=17)
        items = np.array([[1], [2], [3], [4]])
        model.score_items(users, inputs, items).sum().backward()
        assert model.source_item_embeddings.weight.grad is not None
