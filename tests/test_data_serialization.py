"""Tests for dataset/split serialization and the multi-seed experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    InteractionDataset,
    load_dataset,
    load_split,
    save_dataset,
    save_split,
    split_setting,
)
from repro.experiments import run_multi_seed_experiment
from repro.experiments.overall import clear_cache

NUM_ITEMS = 25


def make_dataset(num_users: int = 10, seed: int = 0) -> InteractionDataset:
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(10, 20)).tolist()
        for _ in range(num_users)
    ]
    # One empty-ish short user exercises the ragged encoding edge cases.
    sequences.append([3])
    return InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS, name="unit")


class TestDatasetSerialization:
    def test_roundtrip_preserves_sequences(self, tmp_path):
        dataset = make_dataset()
        path = save_dataset(dataset, tmp_path / "data")
        assert path.suffix == ".npz"
        restored = load_dataset(path)
        assert restored.name == dataset.name
        assert restored.num_items == dataset.num_items
        assert restored.sequences == dataset.sequences

    def test_roundtrip_preserves_statistics(self, tmp_path):
        dataset = make_dataset(seed=3)
        restored = load_dataset(save_dataset(dataset, tmp_path / "stats.npz"))
        assert restored.num_users == dataset.num_users
        assert restored.num_interactions == dataset.num_interactions
        assert np.allclose(restored.item_frequencies(), dataset.item_frequencies())

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.npz")

    def test_empty_sequences_supported(self, tmp_path):
        dataset = InteractionDataset([[], [1, 2], []], num_items=5, name="sparse")
        restored = load_dataset(save_dataset(dataset, tmp_path / "sparse"))
        assert restored.sequences == [[], [1, 2], []]


class TestSplitSerialization:
    @pytest.mark.parametrize("setting", ["80-20-CUT", "80-3-CUT", "3-LOS"])
    def test_roundtrip_every_setting(self, tmp_path, setting):
        split = split_setting(make_dataset(num_users=12, seed=1), setting)
        restored = load_split(save_split(split, tmp_path / setting))
        assert restored.setting == split.setting
        assert restored.num_items == split.num_items
        assert restored.train == split.train
        assert restored.valid == split.valid
        assert restored.test == split.test
        assert restored.train_plus_valid() == split.train_plus_valid()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_split(tmp_path / "absent.npz")


class TestMultiSeed:
    @pytest.fixture(autouse=True)
    def _clear(self):
        clear_cache()
        yield
        clear_cache()

    def test_aggregates_over_seeds(self):
        result = run_multi_seed_experiment("cds", "80-3-CUT", methods=("HAMm", "POP"),
                                           seeds=(0, 1), scale="tiny", epochs=1)
        assert result.seeds == (0, 1)
        values = result.metric_values("HAMm", "Recall@10")
        assert values.shape == (2,)
        aggregate = result.aggregate("HAMm", "Recall@10")
        assert aggregate.mean == pytest.approx(values.mean())
        assert aggregate.minimum <= aggregate.mean <= aggregate.maximum
        assert aggregate.num_seeds == 2
        assert aggregate.as_row()["method"] == "HAMm"

    def test_aggregates_table_and_win_counts(self):
        result = run_multi_seed_experiment("cds", "80-3-CUT", methods=("HAMm", "POP"),
                                           seeds=(0, 1), scale="tiny", epochs=1)
        rows = result.aggregates("Recall@10", methods=("HAMm", "POP"))
        assert [row.method for row in rows] == ["HAMm", "POP"]
        counts = result.best_method_counts("Recall@10")
        assert sum(counts.values()) == 2
        assert set(counts) <= {"HAMm", "POP"}

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            run_multi_seed_experiment("cds", "80-3-CUT", seeds=())
        with pytest.raises(ValueError):
            run_multi_seed_experiment("cds", "80-3-CUT", seeds=(0, 0))

    def test_pop_is_deterministic_across_seeds(self):
        result = run_multi_seed_experiment("cds", "80-3-CUT", methods=("POP",),
                                           seeds=(0, 1), scale="tiny", epochs=1)
        aggregate = result.aggregate("POP", "Recall@10")
        # POP ignores the training seed entirely, so the std must be zero.
        assert aggregate.std == pytest.approx(0.0, abs=1e-12)
