"""Tests for the baseline models: Caser, SASRec, HGN, POP, BPR-MF, FPMC."""

import numpy as np
import pytest

from repro.models import BPRMF, FPMC, HGN, Caser, Popularity, SASRec, create_model
from repro.models.registry import HAM_VARIANTS, MODEL_REGISTRY, PAPER_METHODS


def make_inputs(batch=3, length=5, num_items=40, num_users=12, seed=0, pad_first=False):
    rng = np.random.default_rng(seed)
    users = rng.integers(0, num_users, size=batch)
    inputs = rng.integers(0, num_items, size=(batch, length))
    if pad_first:
        inputs[0, :2] = num_items
    return users, inputs


class TestCaser:
    def _model(self, **overrides):
        kwargs = dict(num_users=12, num_items=40, embedding_dim=8, sequence_length=5,
                      num_vertical_filters=2, num_horizontal_filters=4,
                      rng=np.random.default_rng(0))
        kwargs.update(overrides)
        return Caser(**kwargs)

    def test_representation_is_twice_embedding_dim(self):
        model = self._model()
        users, inputs = make_inputs()
        rep = model.sequence_representation(users, inputs)
        assert rep.shape == (3, 16)

    def test_score_all_shape(self):
        model = self._model()
        users, inputs = make_inputs()
        assert model.score_all(users, inputs).shape == (3, 40)

    def test_item_bias_used(self):
        model = self._model()
        model.eval()
        users, inputs = make_inputs()
        before = model.score_all(users, inputs)
        model.output_item_bias.data[7] += 5.0
        after = model.score_all(users, inputs)
        assert np.allclose(after[:, 7] - before[:, 7], 5.0)

    def test_gradients_reach_filters(self):
        model = self._model()
        users, inputs = make_inputs()
        items = np.array([[1], [2], [3]])
        model.score_items(users, inputs, items).sum().backward()
        assert model.vertical_filters.grad is not None
        assert model.horizontal_filters[0].grad is not None
        assert model.fc.weight.grad is not None

    def test_dropout_only_in_training_mode(self):
        model = self._model(dropout=0.9)
        users, inputs = make_inputs()
        model.eval()
        a = model.score_all(users, inputs)
        b = model.score_all(users, inputs)
        assert np.allclose(a, b)

    def test_invalid_filter_counts(self):
        with pytest.raises(ValueError):
            self._model(num_vertical_filters=0)

    def test_handles_padding(self):
        model = self._model()
        users, inputs = make_inputs(pad_first=True)
        scores = model.score_all(users, inputs)
        assert np.all(np.isfinite(scores))


class TestSASRec:
    def _model(self, **overrides):
        kwargs = dict(num_users=12, num_items=40, embedding_dim=8, sequence_length=6,
                      num_heads=2, num_blocks=2, rng=np.random.default_rng(1))
        kwargs.update(overrides)
        return SASRec(**kwargs)

    def test_shapes(self):
        model = self._model()
        users, inputs = make_inputs(length=6, seed=1)
        rep = model.sequence_representation(users, inputs)
        assert rep.shape == (3, 8)
        assert model.score_all(users, inputs).shape == (3, 40)

    def test_wrong_sequence_length_raises(self):
        model = self._model()
        users, inputs = make_inputs(length=4, seed=2)
        with pytest.raises(ValueError):
            model.sequence_representation(users, inputs)

    def test_heads_must_divide_dim(self):
        with pytest.raises(ValueError):
            self._model(embedding_dim=9, num_heads=2)

    def test_causality_last_position_ignores_nothing_before(self):
        # Changing an item *after* the window end is impossible; instead we
        # verify that changing the FIRST item does change the representation
        # (it is attended to) while the causal mask keeps scores finite.
        model = self._model()
        model.eval()
        users, inputs = make_inputs(length=6, seed=3)
        base = model.sequence_representation(users, inputs).data.copy()
        modified = inputs.copy()
        modified[:, 0] = (modified[:, 0] + 1) % 40
        changed = model.sequence_representation(users, modified).data
        assert not np.allclose(base, changed)

    def test_eval_mode_is_deterministic(self):
        model = self._model(dropout=0.5)
        model.eval()
        users, inputs = make_inputs(length=6, seed=4)
        assert np.allclose(model.score_all(users, inputs), model.score_all(users, inputs))

    def test_gradients_reach_attention_parameters(self):
        model = self._model()
        users, inputs = make_inputs(length=6, seed=5)
        items = np.array([[1], [2], [3]])
        model.score_items(users, inputs, items).sum().backward()
        assert model.blocks[0].query.weight.grad is not None
        assert model.blocks[1].ffn_outer.weight.grad is not None
        assert model.position_embeddings.grad is not None

    def test_train_eval_propagates_to_blocks(self):
        model = self._model()
        model.eval()
        assert not model.blocks[0].dropout.training
        model.train()
        assert model.blocks[1].dropout.training

    def test_num_blocks_validation(self):
        with pytest.raises(ValueError):
            self._model(num_blocks=0)


class TestHGN:
    def _model(self, **overrides):
        kwargs = dict(num_users=12, num_items=40, embedding_dim=8, sequence_length=5,
                      rng=np.random.default_rng(2))
        kwargs.update(overrides)
        return HGN(**kwargs)

    def test_shapes(self):
        model = self._model()
        users, inputs = make_inputs(seed=6)
        assert model.sequence_representation(users, inputs).shape == (3, 8)
        assert model.score_all(users, inputs).shape == (3, 40)

    def test_instance_gate_weights_in_unit_interval(self):
        model = self._model()
        users, inputs = make_inputs(seed=7)
        weights = model.instance_gate_weights(users, inputs)
        assert weights.shape == (3, 5)
        assert np.nanmin(weights) > 0.0 and np.nanmax(weights) < 1.0

    def test_instance_gate_weights_nan_for_padding(self):
        model = self._model()
        users, inputs = make_inputs(seed=8, pad_first=True)
        weights = model.instance_gate_weights(users, inputs)
        assert np.isnan(weights[0, 0]) and np.isnan(weights[0, 1])
        assert not np.isnan(weights[0, 2])

    def test_initial_gate_weights_center_near_half(self):
        # With small random initialization the gate pre-activations are near
        # zero, so sigmoid outputs concentrate around 0.5 — the basis of the
        # paper's Fig. 4 observation about rarely-updated items.
        model = self._model()
        users, inputs = make_inputs(batch=50, seed=9)
        weights = model.instance_gate_weights(users, inputs)
        assert abs(np.nanmean(weights) - 0.5) < 0.05

    def test_gradients_reach_gates(self):
        model = self._model()
        users, inputs = make_inputs(seed=10)
        items = np.array([[1], [2], [3]])
        model.score_items(users, inputs, items).sum().backward()
        assert model.feature_gate_item.grad is not None
        assert model.instance_gate_user.grad is not None

    def test_padding_rows_are_ignored(self):
        model = self._model()
        users, inputs = make_inputs(seed=11, pad_first=True)
        scores = model.score_all(users, inputs)
        assert np.all(np.isfinite(scores))


class TestSimpleBaselines:
    def test_popularity_ranks_by_frequency(self):
        model = Popularity(num_users=5, num_items=10)
        model.fit_counts([[0, 0, 0, 1], [0, 2, 2]])
        users = np.array([0, 1])
        inputs = np.zeros((2, 5), dtype=np.int64)
        scores = model.score_all(users, inputs)
        assert scores.shape == (2, 10)
        assert np.argmax(scores[0]) == 0
        assert scores[0, 2] > scores[0, 1]

    def test_popularity_requires_fit(self):
        model = Popularity(num_users=5, num_items=10)
        with pytest.raises(RuntimeError):
            model.score_all(np.array([0]), np.zeros((1, 5), dtype=np.int64))

    def test_bprmf_ignores_recent_items(self):
        model = BPRMF(num_users=5, num_items=10, embedding_dim=4,
                      rng=np.random.default_rng(3))
        users = np.array([1, 1])
        inputs_a = np.array([[0], [1]])
        inputs_b = np.array([[5], [7]])
        assert np.allclose(model.score_all(users, inputs_a), model.score_all(users, inputs_b))

    def test_fpmc_depends_on_last_item_only(self):
        model = FPMC(num_users=5, num_items=10, embedding_dim=4, input_length=3,
                     rng=np.random.default_rng(4))
        users = np.array([2])
        inputs_a = np.array([[1, 2, 3]])
        inputs_b = np.array([[7, 8, 3]])   # same last item
        inputs_c = np.array([[1, 2, 4]])   # different last item
        assert np.allclose(model.score_all(users, inputs_a), model.score_all(users, inputs_b))
        assert not np.allclose(model.score_all(users, inputs_a), model.score_all(users, inputs_c))

    def test_fpmc_representation_dim(self):
        model = FPMC(num_users=5, num_items=10, embedding_dim=4,
                     rng=np.random.default_rng(5))
        rep = model.sequence_representation(np.array([0]), np.array([[1]]))
        assert rep.shape == (1, 8)


class TestRegistry:
    def test_paper_methods_all_registered(self):
        for name in PAPER_METHODS + HAM_VARIANTS:
            assert name in MODEL_REGISTRY

    def test_create_model_ham_variants(self):
        rng = np.random.default_rng(6)
        model = create_model("HAMs_m", num_users=8, num_items=20, rng=rng,
                             embedding_dim=8, n_h=4, n_l=1, synergy_order=2)
        assert model.variant_name == "HAMs_m"
        ablated = create_model("HAMs_m-o", num_users=8, num_items=20, rng=rng,
                               embedding_dim=8, n_h=4)
        assert ablated.n_l == 0

    def test_create_model_baselines(self):
        rng = np.random.default_rng(7)
        for name in ("Caser", "SASRec", "HGN", "BPR-MF", "FPMC"):
            model = create_model(name, num_users=8, num_items=20, rng=rng, embedding_dim=8)
            assert model.num_items == 20

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            create_model("NoSuchModel", num_users=4, num_items=10)

    def test_create_model_gru4rec(self):
        model = create_model("GRU4Rec", num_users=4, num_items=10,
                             rng=np.random.default_rng(3), embedding_dim=8)
        assert model.num_items == 10

    def test_describe(self):
        model = create_model("HAMm", num_users=8, num_items=20,
                             rng=np.random.default_rng(8), embedding_dim=8)
        text = model.describe()
        assert "HAM" in text and "items=20" in text
