"""Tests for the serving layer: top-k recommendation, similarity queries
and HAM score explanations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import InteractionDataset
from repro.data.splits import split_setting
from repro.models import HAM, HAMSynergy, ItemKNN, Popularity, create_model
from repro.serving import Recommender, explain_ham_score
from repro.training import Trainer, TrainingConfig

pytestmark = pytest.mark.fast

NUM_ITEMS = 20


def tiny_split(num_users: int = 10, seed: int = 0):
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(12, 18)).tolist()
        for _ in range(num_users)
    ]
    dataset = InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)
    return split_setting(dataset, "80-3-CUT")


def trained_ham(split, synergy: bool = True):
    model_name = "HAMs_m" if synergy else "HAMm"
    model = create_model(model_name, split.num_users, NUM_ITEMS,
                         rng=np.random.default_rng(0), embedding_dim=8, n_h=4, n_l=2)
    Trainer(model, TrainingConfig(num_epochs=2, batch_size=64, seed=0)).fit(
        split.train_plus_valid())
    return model


class TestRecommender:
    def test_topk_shapes_and_ordering(self):
        split = tiny_split()
        model = trained_ham(split)
        recommender = Recommender(model, split.train_plus_valid())
        recommendations = recommender.recommend(0, k=5)
        assert len(recommendations) == 5
        scores = [entry.score for entry in recommendations]
        assert scores == sorted(scores, reverse=True)
        assert [entry.rank for entry in recommendations] == list(range(5))

    def test_excludes_seen_items_by_default(self):
        split = tiny_split()
        model = trained_ham(split)
        histories = split.train_plus_valid()
        recommender = Recommender(model, histories)
        for entry in recommender.recommend(0, k=10):
            assert entry.item not in set(histories[0])

    def test_include_seen_items_when_asked(self):
        split = tiny_split()
        pop = Popularity(split.num_users, NUM_ITEMS).fit_counts(split.train_plus_valid())
        histories = split.train_plus_valid()
        with_seen = Recommender(pop, histories, exclude_seen=False).recommend(0, k=5)
        # POP's global top item is almost surely in some user's history, so
        # allowing seen items must not error and must return k entries.
        assert len(with_seen) == 5

    def test_batch_matches_single(self):
        split = tiny_split()
        model = trained_ham(split)
        recommender = Recommender(model, split.train_plus_valid())
        batch = recommender.recommend_batch([0, 1], k=3)
        for user, expected in zip((0, 1), batch):
            single = recommender.recommend(user, k=3)
            assert [entry.item for entry in single] == [entry.item for entry in expected]
            # Scores may differ in the last float bit across batch layouts;
            # models train in float32 by default, so the bound is single
            # precision.
            for got, want in zip(single, expected):
                assert got.score == pytest.approx(want.score, rel=1e-5)

    def test_score_matches_recommendation_score(self):
        split = tiny_split()
        model = trained_ham(split)
        recommender = Recommender(model, split.train_plus_valid())
        top = recommender.recommend(2, k=1)[0]
        assert recommender.score(2, top.item) == pytest.approx(top.score)

    def test_similar_items_embedding_model(self):
        split = tiny_split()
        model = trained_ham(split)
        recommender = Recommender(model, split.train_plus_valid())
        similar = recommender.similar_items(3, k=4)
        assert len(similar) == 4
        assert all(entry.item != 3 for entry in similar)
        scores = [entry.score for entry in similar]
        assert scores == sorted(scores, reverse=True)

    def test_similar_items_itemknn_uses_neighbors(self):
        split = tiny_split()
        knn = ItemKNN(split.num_users, NUM_ITEMS, cooccurrence_window=2)
        knn.fit_counts(split.train_plus_valid())
        recommender = Recommender(knn, split.train_plus_valid())
        similar = recommender.similar_items(0, k=3)
        assert all(entry.item != 0 for entry in similar)

    def test_validation(self):
        split = tiny_split()
        model = trained_ham(split)
        recommender = Recommender(model, split.train_plus_valid())
        with pytest.raises(ValueError):
            recommender.recommend(999, k=5)
        with pytest.raises(ValueError):
            recommender.recommend(0, k=0)
        with pytest.raises(ValueError):
            recommender.score(0, NUM_ITEMS + 5)
        with pytest.raises(ValueError):
            recommender.similar_items(-1)
        with pytest.raises(ValueError):
            Recommender(model, histories=[[0, 1]])   # too few histories


class TestExplanation:
    def test_factors_sum_to_total_and_match_model_score(self):
        split = tiny_split()
        model = trained_ham(split, synergy=True)
        history = split.train_plus_valid()[0]
        explanation = explain_ham_score(model, user=0, history=history, item=5)
        assert explanation.total == pytest.approx(
            explanation.user_preference + explanation.high_order + explanation.low_order
        )
        recommender = Recommender(model, split.train_plus_valid())
        assert explanation.total == pytest.approx(recommender.score(0, 5), abs=1e-9)
        assert explanation.uses_synergies
        assert explanation.dominant_factor() in ("user_preference", "high_order", "low_order")
        assert explanation.as_row()["item"] == 5

    def test_plain_ham_explanation_matches_score(self):
        split = tiny_split()
        model = trained_ham(split, synergy=False)
        history = split.train_plus_valid()[1]
        explanation = explain_ham_score(model, user=1, history=history, item=7)
        recommender = Recommender(model, split.train_plus_valid())
        assert explanation.total == pytest.approx(recommender.score(1, 7), abs=1e-9)
        assert not explanation.uses_synergies

    def test_ablated_user_term_is_zero(self):
        model = HAMSynergy(5, NUM_ITEMS, embedding_dim=8, n_h=4, n_l=2,
                           synergy_order=2, use_user_embedding=False,
                           rng=np.random.default_rng(0))
        explanation = explain_ham_score(model, user=0, history=[1, 2, 3], item=4)
        assert explanation.user_preference == 0.0

    def test_ablated_low_order_term_is_zero(self):
        model = HAM(5, NUM_ITEMS, embedding_dim=8, n_h=4, n_l=0,
                    rng=np.random.default_rng(0))
        explanation = explain_ham_score(model, user=0, history=[1, 2, 3], item=4)
        assert explanation.low_order == 0.0

    def test_only_ham_family_supported(self):
        model = create_model("HGN", 5, NUM_ITEMS, rng=np.random.default_rng(0),
                             embedding_dim=8, sequence_length=4)
        with pytest.raises(TypeError):
            explain_ham_score(model, user=0, history=[1, 2], item=3)

    def test_id_validation(self):
        model = HAM(5, NUM_ITEMS, embedding_dim=8, n_h=3, n_l=1,
                    rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            explain_ham_score(model, user=99, history=[1], item=0)
        with pytest.raises(ValueError):
            explain_ham_score(model, user=0, history=[1], item=NUM_ITEMS)
