"""Tests for the ranking losses in :mod:`repro.training.losses`.

Each loss is checked against a hand-computed value on a tiny example, for
its gradient direction (pushing the positive score up must reduce the
loss), and for correct mask handling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.training.losses import (
    LOSS_FUNCTIONS,
    bpr_loss,
    bpr_max_loss,
    get_loss,
    hinge_loss,
    sampled_softmax_loss,
    top1_loss,
    top1_max_loss,
)

ALL_LOSSES = sorted(LOSS_FUNCTIONS)


def sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def make_scores(num_negatives: int = 1, seed: int = 0):
    rng = np.random.default_rng(seed)
    positives = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
    if num_negatives == 1:
        negatives = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
    else:
        negatives = Tensor(rng.normal(size=(3, 2, num_negatives)), requires_grad=True)
    return positives, negatives


class TestRegistry:
    def test_contains_paper_default(self):
        assert "bpr" in LOSS_FUNCTIONS

    def test_get_loss_case_insensitive(self):
        assert get_loss("BPR_MAX") is bpr_max_loss

    def test_unknown_loss(self):
        with pytest.raises(KeyError):
            get_loss("focal")

    @pytest.mark.parametrize("name", ALL_LOSSES)
    def test_every_loss_returns_scalar(self, name):
        positives, negatives = make_scores(num_negatives=4)
        loss = LOSS_FUNCTIONS[name](positives, negatives)
        assert loss.shape == ()
        assert np.isfinite(float(loss.data))

    @pytest.mark.parametrize("name", ALL_LOSSES)
    def test_every_loss_accepts_single_negative(self, name):
        positives, negatives = make_scores(num_negatives=1)
        loss = LOSS_FUNCTIONS[name](positives, negatives)
        assert np.isfinite(float(loss.data))

    @pytest.mark.parametrize("name", ALL_LOSSES)
    def test_gradient_pushes_positive_up(self, name):
        positives, negatives = make_scores(num_negatives=3)
        loss = LOSS_FUNCTIONS[name](positives, negatives)
        loss.backward()
        # The derivative of each loss w.r.t. the positive score is negative
        # (raising the positive score lowers the loss).
        assert np.all(positives.grad <= 1e-12)
        assert np.any(positives.grad < 0)

    @pytest.mark.parametrize("name", ALL_LOSSES)
    def test_mask_removes_positions(self, name):
        positives, negatives = make_scores(num_negatives=2, seed=1)
        mask = np.array([[True, False], [True, True], [False, False]])
        masked_value = float(LOSS_FUNCTIONS[name](positives, negatives, mask).data)

        # Recompute keeping only the unmasked positions and compare.
        keep_rows, keep_cols = np.where(mask)
        kept_pos = Tensor(positives.data[keep_rows, keep_cols].reshape(-1, 1))
        kept_neg = Tensor(negatives.data[keep_rows, keep_cols].reshape(-1, 1, 2))
        expected = float(LOSS_FUNCTIONS[name](kept_pos, kept_neg).data)
        assert masked_value == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("name", ALL_LOSSES)
    def test_shape_mismatch_rejected(self, name):
        positives = Tensor(np.zeros((3, 2)))
        negatives = Tensor(np.zeros((4, 2, 2)))
        with pytest.raises(ValueError):
            LOSS_FUNCTIONS[name](positives, negatives)


class TestHandComputedValues:
    def test_bpr_single_pair(self):
        loss = bpr_loss(Tensor([[2.0]]), Tensor([[0.5]]))
        assert float(loss.data) == pytest.approx(-np.log(sigmoid(1.5)))

    def test_bpr_multi_negative_averages_pairs(self):
        positives = Tensor([[1.0]])
        negatives = Tensor([[[0.0, 2.0]]])
        loss = LOSS_FUNCTIONS["bpr"](positives, negatives)
        expected = np.mean([-np.log(sigmoid(1.0)), -np.log(sigmoid(-1.0))])
        assert float(loss.data) == pytest.approx(expected)

    def test_top1_single_pair(self):
        loss = top1_loss(Tensor([[1.0]]), Tensor([[0.0]]))
        expected = sigmoid(-1.0) + sigmoid(0.0)
        assert float(loss.data) == pytest.approx(expected)

    def test_hinge_zero_when_margin_satisfied(self):
        loss = hinge_loss(Tensor([[3.0]]), Tensor([[0.5]]), margin=1.0)
        assert float(loss.data) == pytest.approx(0.0)

    def test_hinge_linear_inside_margin(self):
        loss = hinge_loss(Tensor([[1.0]]), Tensor([[0.8]]), margin=1.0)
        assert float(loss.data) == pytest.approx(0.8)

    def test_hinge_requires_positive_margin(self):
        with pytest.raises(ValueError):
            hinge_loss(Tensor([[1.0]]), Tensor([[0.0]]), margin=0.0)

    def test_sampled_softmax_uniform_scores(self):
        # With identical scores for the positive and N negatives, the loss
        # is log(N + 1).
        positives = Tensor([[0.0]])
        negatives = Tensor([[[0.0, 0.0, 0.0]]])
        loss = sampled_softmax_loss(positives, negatives)
        assert float(loss.data) == pytest.approx(np.log(4.0))

    def test_bpr_max_reduces_to_bpr_like_for_one_negative(self):
        # With a single negative the softmax weight is 1 and BPR-max equals
        # BPR plus the regularization term.
        positives = Tensor([[1.0]])
        negatives = Tensor([[0.2]])
        value = float(bpr_max_loss(positives, negatives, regularization=0.0).data)
        assert value == pytest.approx(-np.log(sigmoid(0.8)), rel=1e-6)

    def test_bpr_max_regularization_adds_penalty(self):
        positives = Tensor([[1.0]])
        negatives = Tensor([[2.0]])
        plain = float(bpr_max_loss(positives, negatives, regularization=0.0).data)
        regularized = float(bpr_max_loss(positives, negatives, regularization=1.0).data)
        assert regularized == pytest.approx(plain + 4.0)

    def test_top1_max_weights_hard_negatives(self):
        # The higher-scoring negative dominates the softmax weighting, so
        # TOP1-max is larger than plain TOP1 averaging when one negative is
        # much harder than the other.
        positives = Tensor([[0.0]])
        negatives = Tensor([[[5.0, -5.0]]])
        assert float(top1_max_loss(positives, negatives).data) > float(
            top1_loss(positives, negatives).data
        )

    def test_invalid_negative_rank(self):
        with pytest.raises(ValueError):
            bpr_max_loss(Tensor([[1.0]]), Tensor([1.0]))
