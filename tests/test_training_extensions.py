"""Tests for training extensions: schedules, early stopping, checkpoints,
gradient clipping and the extended trainer options (loss choice, multiple
negatives, GRU4Rec++ defaults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, clip_grad_norm
from repro.autograd.module import Parameter
from repro.data.dataset import InteractionDataset
from repro.data.splits import split_setting
from repro.evaluation import RankingEvaluator
from repro.models import GRU4RecPlus, create_model
from repro.training import (
    ConstantSchedule,
    CosineDecaySchedule,
    EarlyStopping,
    ExponentialDecaySchedule,
    StepDecaySchedule,
    Trainer,
    TrainingConfig,
    WarmupSchedule,
    load_checkpoint,
    read_metadata,
    save_checkpoint,
)

NUM_ITEMS = 20


def tiny_split(num_users: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(12, 20)).tolist()
        for _ in range(num_users)
    ]
    dataset = InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)
    return split_setting(dataset, "80-20-CUT")


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(1e-3)
        assert schedule.preview(3) == [1e-3, 1e-3, 1e-3]

    def test_step_decay(self):
        schedule = StepDecaySchedule(1.0, step_size=2, decay=0.5)
        assert schedule.preview(5) == pytest.approx([1.0, 1.0, 0.5, 0.5, 0.25])

    def test_exponential_decay(self):
        schedule = ExponentialDecaySchedule(1.0, decay=0.9)
        assert schedule(3) == pytest.approx(0.81)

    def test_cosine_endpoints(self):
        schedule = CosineDecaySchedule(1.0, num_epochs=5, final_lr=0.1)
        assert schedule(1) == pytest.approx(1.0)
        assert schedule(5) == pytest.approx(0.1)
        assert schedule(10) == pytest.approx(0.1)

    def test_warmup_ramps_then_defers(self):
        schedule = WarmupSchedule(ConstantSchedule(1.0), warmup_epochs=2)
        rates = schedule.preview(4)
        assert rates[0] < rates[1] < rates[2]
        assert rates[2] == pytest.approx(1.0)
        assert rates[3] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
        with pytest.raises(ValueError):
            StepDecaySchedule(1.0, step_size=0)
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(1.0, decay=1.5)
        with pytest.raises(ValueError):
            CosineDecaySchedule(1.0, num_epochs=3, final_lr=2.0)
        with pytest.raises(ValueError):
            ConstantSchedule(1.0)(0)


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.5)
        assert not stopper.update(0.4)
        assert stopper.update(0.45)
        assert stopper.should_stop

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5)
        stopper.update(0.4)
        assert not stopper.update(0.6)
        assert stopper.num_bad_evaluations == 0
        assert stopper.best_score == pytest.approx(0.6)

    def test_min_delta_counts_small_gains_as_stagnation(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(0.5)
        assert stopper.update(0.55)

    def test_reset(self):
        stopper = EarlyStopping(patience=1)
        stopper.update(1.0)
        stopper.update(0.5)
        stopper.reset()
        assert not stopper.should_stop
        assert stopper.best_score == float("-inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-0.1)


class TestGradientClipping:
    def test_large_gradients_scaled_to_max_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.array([3.0, 4.0, 0.0, 0.0])
        observed = clip_grad_norm([param], max_norm=1.0)
        assert observed == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_small_gradients_untouched(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.2])
        clip_grad_norm([param], max_norm=10.0)
        assert param.grad == pytest.approx([0.1, 0.2])

    def test_requires_positive_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestCheckpoint:
    def test_roundtrip_restores_parameters(self, tmp_path):
        rng = np.random.default_rng(0)
        model = create_model("HAMm", num_users=6, num_items=NUM_ITEMS, rng=rng,
                             embedding_dim=8, n_h=4, n_l=2)
        path = save_checkpoint(model, tmp_path / "ham", metadata={"method": "HAMm"})
        assert path.suffix == ".npz"

        fresh = create_model("HAMm", num_users=6, num_items=NUM_ITEMS,
                             rng=np.random.default_rng(99), embedding_dim=8, n_h=4, n_l=2)
        metadata = load_checkpoint(fresh, path)
        assert metadata == {"method": "HAMm"}
        for name, value in model.state_dict().items():
            assert np.allclose(fresh.state_dict()[name], value)

    def test_read_metadata_without_loading(self, tmp_path):
        rng = np.random.default_rng(0)
        model = create_model("BPR-MF", num_users=4, num_items=NUM_ITEMS, rng=rng,
                             embedding_dim=4)
        path = save_checkpoint(model, tmp_path / "mf.npz", metadata={"seed": 7})
        assert read_metadata(path)["seed"] == 7

    def test_strict_mismatch_raises(self, tmp_path):
        rng = np.random.default_rng(0)
        model = create_model("BPR-MF", num_users=4, num_items=NUM_ITEMS, rng=rng,
                             embedding_dim=4)
        path = save_checkpoint(model, tmp_path / "mf")
        other = create_model("HAMm", num_users=4, num_items=NUM_ITEMS, rng=rng,
                             embedding_dim=4, n_h=3, n_l=1)
        with pytest.raises(KeyError):
            load_checkpoint(other, path)

    def test_non_strict_loads_intersection(self, tmp_path):
        rng = np.random.default_rng(0)
        model = create_model("BPR-MF", num_users=4, num_items=NUM_ITEMS, rng=rng,
                             embedding_dim=4)
        path = save_checkpoint(model, tmp_path / "mf")
        bigger = create_model("BPR-MF", num_users=4, num_items=NUM_ITEMS,
                              rng=np.random.default_rng(5), embedding_dim=8)
        metadata = load_checkpoint(bigger, path, strict=False)
        assert metadata == {}

    def test_missing_file(self, tmp_path):
        rng = np.random.default_rng(0)
        model = create_model("BPR-MF", num_users=4, num_items=NUM_ITEMS, rng=rng,
                             embedding_dim=4)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(model, tmp_path / "absent.npz")


class TestTrainerExtensions:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(num_negatives=0)
        with pytest.raises(ValueError):
            TrainingConfig(max_grad_norm=0.0)

    def test_alternative_loss_and_multiple_negatives_train(self):
        split = tiny_split()
        model = create_model("HAMm", split.num_users, NUM_ITEMS,
                             rng=np.random.default_rng(1), embedding_dim=8, n_h=4, n_l=2)
        config = TrainingConfig(num_epochs=2, batch_size=64, loss="bpr_max",
                                num_negatives=4, max_grad_norm=5.0, seed=1)
        result = Trainer(model, config).fit(split.train)
        assert len(result.epoch_losses) == 2
        assert all(np.isfinite(result.epoch_losses))

    def test_unknown_loss_rejected_at_construction(self):
        split = tiny_split()
        model = create_model("HAMm", split.num_users, NUM_ITEMS,
                             rng=np.random.default_rng(1), embedding_dim=8, n_h=4, n_l=2)
        with pytest.raises(KeyError):
            Trainer(model, TrainingConfig(loss="nope"))

    def test_gru4rec_plus_recommends_bpr_max(self):
        split = tiny_split()
        model = GRU4RecPlus(split.num_users, NUM_ITEMS, embedding_dim=8,
                            sequence_length=5, num_negatives=3,
                            rng=np.random.default_rng(2))
        trainer = Trainer(model, TrainingConfig(num_epochs=1, batch_size=64))
        assert trainer.loss_name == "bpr_max"
        assert trainer.num_negatives == 3
        result = trainer.fit(split.train)
        assert np.isfinite(result.final_loss)

    def test_explicit_config_overrides_model_recommendation(self):
        model = GRU4RecPlus(4, NUM_ITEMS, embedding_dim=8, sequence_length=5,
                            rng=np.random.default_rng(2))
        trainer = Trainer(model, TrainingConfig(loss="bpr", num_negatives=1))
        assert trainer.loss_name == "bpr"
        assert trainer.num_negatives == 1

    def test_schedule_changes_learning_rate_and_early_stopping_halts(self):
        split = tiny_split()
        model = create_model("HAMm", split.num_users, NUM_ITEMS,
                             rng=np.random.default_rng(3), embedding_dim=8, n_h=4, n_l=2)
        evaluator = RankingEvaluator(split, ks=(5,), mode="validation")
        config = TrainingConfig(num_epochs=10, batch_size=64, eval_every=1, seed=3)
        trainer = Trainer(
            model, config,
            validation_fn=lambda m: evaluator.validation_metric(m, "Recall@5"),
            schedule=StepDecaySchedule(1e-3, step_size=1, decay=0.5),
            early_stopping=EarlyStopping(patience=2),
        )
        result = trainer.fit(split.train)
        # Early stopping may or may not fire on such a tiny dataset, but the
        # run must end within the epoch budget and keep a best epoch.
        assert 1 <= len(result.epoch_losses) <= 10
        assert result.best_epoch >= 1
