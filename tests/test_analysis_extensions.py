"""Tests for the extension analyses: user-activity sparsity buckets,
convergence summaries, settings comparison and the synergy-aggregation
study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    compare_by_user_activity,
    compare_convergence,
    compare_settings,
    metric_by_test_set_size,
    performance_by_user_activity,
    run_synergy_aggregation_study,
    summarize_convergence,
)
from repro.data.dataset import InteractionDataset
from repro.data.splits import split_setting
from repro.evaluation import RankingEvaluator
from repro.models import Popularity, create_model
from repro.training import Trainer, TrainingConfig
from repro.training.trainer import TrainingResult

NUM_ITEMS = 30


def tiny_dataset(num_users: int = 16, seed: int = 0) -> InteractionDataset:
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(12, 30)).tolist()
        for _ in range(num_users)
    ]
    return InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)


def evaluated_popularity(split):
    model = Popularity(split.num_users, NUM_ITEMS).fit_counts(split.train_plus_valid())
    return model, RankingEvaluator(split, ks=(5, 10)).evaluate(model)


class TestSparsityBuckets:
    def test_buckets_partition_all_users(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        _, result = evaluated_popularity(split)
        buckets = performance_by_user_activity(split, result, num_buckets=4)
        assert sum(bucket.num_users for bucket in buckets) == result.num_users_evaluated

    def test_buckets_ordered_by_activity(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        _, result = evaluated_popularity(split)
        buckets = performance_by_user_activity(split, result, num_buckets=3)
        lengths = [bucket.mean_history_length for bucket in buckets]
        assert lengths == sorted(lengths)
        assert all(b.min_interactions <= b.max_interactions for b in buckets)

    def test_single_bucket_recovers_overall_mean(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        _, result = evaluated_popularity(split)
        buckets = performance_by_user_activity(split, result, metric="Recall@10",
                                               num_buckets=1)
        assert len(buckets) == 1
        assert buckets[0].mean_metric == pytest.approx(result.metrics["Recall@10"])

    def test_unknown_metric_and_bad_mode(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        _, result = evaluated_popularity(split)
        with pytest.raises(KeyError):
            performance_by_user_activity(split, result, metric="Recall@99")
        with pytest.raises(ValueError):
            performance_by_user_activity(split, result, mode="train")
        with pytest.raises(ValueError):
            performance_by_user_activity(split, result, num_buckets=0)

    def test_compare_by_user_activity_keys(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        _, result = evaluated_popularity(split)
        comparison = compare_by_user_activity(split, {"POP": result, "POP2": result})
        assert set(comparison) == {"POP", "POP2"}
        assert comparison["POP"][0].as_row()["users"] > 0


class TestConvergence:
    def make_result(self):
        return TrainingResult(
            epoch_losses=[1.0, 0.7, 0.5, 0.45, 0.44],
            validation_history=[(1, 0.02), (3, 0.09), (5, 0.10)],
            best_validation=0.10,
            best_epoch=5,
            train_seconds=1.5,
        )

    def test_summary_values(self):
        summary = summarize_convergence(self.make_result())
        assert summary.num_epochs == 5
        assert summary.final_loss == pytest.approx(0.44)
        assert summary.best_epoch == 5
        assert summary.epochs_to_90_percent == 3      # 0.09 >= 0.9 * 0.10
        assert summary.loss_decrease_fraction == pytest.approx(1.0)
        assert summary.as_row()["seconds"] == pytest.approx(1.5)

    def test_no_validation_history(self):
        result = TrainingResult(epoch_losses=[1.0, 0.9])
        summary = summarize_convergence(result)
        assert summary.best_validation == 0.0
        assert summary.epochs_to_90_percent is None

    def test_non_monotone_losses(self):
        result = TrainingResult(epoch_losses=[1.0, 1.2, 0.8])
        summary = summarize_convergence(result)
        assert summary.loss_decrease_fraction == pytest.approx(0.5)

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            summarize_convergence(TrainingResult())

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            summarize_convergence(self.make_result(), fraction=0.0)

    def test_compare(self):
        comparison = compare_convergence({"a": self.make_result(), "b": self.make_result()})
        assert set(comparison) == {"a", "b"}
        with pytest.raises(ValueError):
            compare_convergence({})

    def test_real_training_run_summarizes(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        model = create_model("HAMm", split.num_users, NUM_ITEMS,
                             rng=np.random.default_rng(0), embedding_dim=8, n_h=4, n_l=2)
        evaluator = RankingEvaluator(split, ks=(5,), mode="validation")
        trainer = Trainer(model, TrainingConfig(num_epochs=3, batch_size=64, eval_every=1),
                          validation_fn=lambda m: evaluator.validation_metric(m, "Recall@5"))
        summary = summarize_convergence(trainer.fit(split.train))
        assert summary.num_epochs == 3
        assert summary.train_seconds > 0


class TestSettingsComparison:
    def test_test_size_buckets_partition_users(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        _, result = evaluated_popularity(split)
        buckets = metric_by_test_set_size(split, result, metric="NDCG@10", num_buckets=3)
        assert sum(bucket.num_users for bucket in buckets) == result.num_users_evaluated
        sizes = [bucket.max_test_items for bucket in buckets]
        assert sizes == sorted(sizes)

    def test_equal_test_sizes_in_3los(self):
        split = split_setting(tiny_dataset(), "3-LOS")
        _, result = evaluated_popularity(split)
        buckets = metric_by_test_set_size(split, result, num_buckets=2)
        # Every user has exactly 3 test items in 3-LOS.
        assert all(bucket.min_test_items == 3 and bucket.max_test_items == 3
                   for bucket in buckets)

    def test_validation_errors(self):
        split = split_setting(tiny_dataset(), "80-20-CUT")
        _, result = evaluated_popularity(split)
        with pytest.raises(KeyError):
            metric_by_test_set_size(split, result, metric="nope")
        with pytest.raises(ValueError):
            metric_by_test_set_size(split, result, num_buckets=0)

    def test_compare_settings_runs_all_three(self):
        dataset = tiny_dataset()
        rows = compare_settings(dataset, method="HAMm", dataset_key="cds", epochs=1)
        assert [row.setting for row in rows] == ["80-20-CUT", "80-3-CUT", "3-LOS"]
        for row in rows:
            assert set(row.metrics) == {"Recall@5", "Recall@10", "NDCG@5", "NDCG@10"}
            assert row.num_users_evaluated > 0
            assert row.as_row()["setting"] == row.setting


class TestSynergyStudy:
    def test_rows_cover_requested_combinations(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        combinations = (("sum", "mean"), ("max", "mean"))
        rows = run_synergy_aggregation_study("cds", combinations=combinations, epochs=1)
        assert [(row.inner, row.outer) for row in rows] == list(combinations)
        assert rows[0].is_paper_choice and not rows[1].is_paper_choice
        for row in rows:
            assert 0.0 <= row.recall_at_10 <= 1.0
            assert row.as_row()["dataset"] == "cds"

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError):
            run_synergy_aggregation_study("cds", combinations=(("median", "mean"),))
