"""Docstring audit of the public serving, parallel, cluster and durability APIs.

The ``docs/`` tree points readers at the load-bearing classes; this test
keeps the pointers trustworthy: every name a package exports through
``__all__`` must carry a real docstring, and so must the public methods
of every exported class.  A deprecation shim test rides along: the
``benchmarks.schema`` module must warn loudly instead of silently
re-exporting.
"""

from __future__ import annotations

import inspect
import warnings

import pytest

import repro.cluster
import repro.durability
import repro.parallel
import repro.retrieval
import repro.serving

pytestmark = pytest.mark.fast

AUDITED_PACKAGES = [repro.serving, repro.parallel, repro.cluster,
                    repro.durability, repro.retrieval]


def _has_docstring(obj) -> bool:
    doc = getattr(obj, "__doc__", None)
    return bool(doc and doc.strip())


@pytest.mark.parametrize("package", AUDITED_PACKAGES,
                         ids=lambda package: package.__name__)
def test_every_exported_name_has_a_docstring(package):
    assert _has_docstring(package), f"{package.__name__} has no module docstring"
    assert package.__all__, f"{package.__name__} exports nothing"
    undocumented = [
        name for name in package.__all__
        if not _has_docstring(getattr(package, name))
    ]
    assert not undocumented, (
        f"{package.__name__} exports without docstrings: {undocumented}"
    )


@pytest.mark.parametrize("package", AUDITED_PACKAGES,
                         ids=lambda package: package.__name__)
def test_public_methods_of_exported_classes_are_documented(package):
    undocumented = []
    for name in package.__all__:
        exported = getattr(package, name)
        if not inspect.isclass(exported):
            continue
        for method_name, member in inspect.getmembers(exported):
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(member) or isinstance(
                    member, (property, staticmethod, classmethod))):
                continue
            # Only audit methods the repo defines (not ndarray helpers
            # or other inherited library members).
            module = getattr(inspect.unwrap(getattr(member, "fget", member)),
                             "__module__", "") or ""
            if not module.startswith("repro."):
                continue
            if not _has_docstring(member):
                undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{package.__name__} class members without docstrings: {undocumented}"
    )


def test_benchmarks_schema_shim_warns_deprecation():
    import importlib
    import benchmarks.schema as shim

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.reload(shim)
    assert any(issubclass(entry.category, DeprecationWarning) and
               "repro.bench_schema" in str(entry.message)
               for entry in caught), "benchmarks.schema did not warn"
