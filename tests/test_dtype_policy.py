"""Compute-dtype policy: float32 propagation and float64 gradient parity.

The training hot path runs in ``float32`` by default; these tests pin
down the two properties that make that safe:

* a model cast to ``float32`` stays ``float32`` through every forward
  and backward op (no silent upcast via masks, scalars or dropout);
* the ``float32`` gradients agree with the ``float64`` gradients — which
  are themselves verified against central finite differences — to single
  precision, for HAM, SASRec and GRU4Rec.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    default_dtype,
    get_default_dtype,
    gradient_check,
    resolve_dtype,
    set_default_dtype,
)
from repro.models import create_model
from repro.training import TrainingConfig, Trainer
from repro.training.losses import get_loss

pytestmark = pytest.mark.fast


def tiny_sequences(num_users=12, num_items=15, length=12, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, num_items, size=length).tolist() for _ in range(num_users)]


MODEL_CASES = [
    ("HAMm", dict(embedding_dim=8, n_h=4, n_l=2)),
    ("SASRec", dict(embedding_dim=8, sequence_length=4, num_heads=2,
                    num_blocks=1, dropout=0.0)),
    ("GRU4Rec", dict(embedding_dim=8, sequence_length=4)),
]


class TestDtypeResolution:
    def test_resolve(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64
        assert resolve_dtype(None) == get_default_dtype()

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            resolve_dtype(np.int64)
        with pytest.raises(ValueError):
            resolve_dtype("float16")

    def test_context_manager_restores(self):
        before = get_default_dtype()
        with default_dtype("float32") as dtype:
            assert dtype == np.float32
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == before

    def test_set_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype(previous)


class TestTensorDtype:
    def test_float_arrays_keep_their_dtype(self):
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_non_float_coerced_to_default(self):
        assert Tensor([1, 2, 3]).dtype == get_default_dtype()
        assert Tensor(np.arange(3)).dtype == get_default_dtype()

    def test_scalar_arithmetic_does_not_upcast(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        for result in (x * 2.0, x + 1.0, x - 0.5, x / 2.0, 1.0 - x, 2.0 / x,
                       x.mean(), x.sigmoid(), (x * 3.0).sum()):
            assert result.dtype == np.float32, result

    def test_gradients_match_parameter_dtype(self):
        x = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
        assert x.grad.dtype == np.float32

    def test_default_dtype_context_builds_float32_params(self):
        with default_dtype("float32"):
            model = create_model("HAMm", 4, 9, rng=np.random.default_rng(0),
                                 embedding_dim=4, n_h=3, n_l=1)
        assert model.compute_dtype() == np.float32


class TestModuleAstype:
    def test_astype_casts_all_parameters(self):
        model = create_model("HAMm", 5, 11, rng=np.random.default_rng(0),
                             embedding_dim=4, n_h=3, n_l=1)
        assert model.compute_dtype() == np.float64
        model.astype("float32")
        for _, param in model.named_parameters():
            assert param.data.dtype == np.float32

    def test_create_model_dtype_kwarg(self):
        model = create_model("SASRec", 5, 11, rng=np.random.default_rng(0),
                             embedding_dim=8, sequence_length=4, dtype="float32")
        assert model.compute_dtype() == np.float32

    def test_constructor_dtype_kwarg(self):
        from repro.models.ham import HAM

        model = HAM(5, 11, embedding_dim=4, n_h=3, n_l=1,
                    rng=np.random.default_rng(0), dtype="float32")
        assert model.compute_dtype() == np.float32


class TestTrainerDtype:
    def test_trainer_casts_model_to_config_dtype(self):
        sequences = tiny_sequences()
        model = create_model("HAMm", 12, 15, rng=np.random.default_rng(0),
                             embedding_dim=8, n_h=3, n_l=1)
        Trainer(model, TrainingConfig(num_epochs=1, batch_size=32)).fit(sequences)
        assert model.compute_dtype() == np.float32

    def test_float64_pin_keeps_double_precision(self):
        sequences = tiny_sequences()
        model = create_model("HAMm", 12, 15, rng=np.random.default_rng(0),
                             embedding_dim=8, n_h=3, n_l=1)
        config = TrainingConfig(num_epochs=1, batch_size=32, dtype="float64",
                                sparse_embedding_grad=False,
                                vectorized_sampling=False)
        Trainer(model, config).fit(sequences)
        assert model.compute_dtype() == np.float64


def _model_grads(name, kwargs, dtype):
    """Forward/backward of one BPR loss batch; dict of gradients by name."""
    model = create_model(name, 6, 12, rng=np.random.default_rng(3),
                         dtype=dtype, **kwargs)
    model.eval()  # dropout off so both dtypes see identical computations
    rng = np.random.default_rng(7)
    batch = 5
    length = model.input_length
    users = rng.integers(0, 6, size=batch)
    inputs = rng.integers(0, 12, size=(batch, length))
    targets = rng.integers(0, 12, size=(batch, 2))
    negatives = rng.integers(0, 12, size=(batch, 2))
    positive = model.score_items(users, inputs, targets)
    negative = model.score_items(users, inputs, negatives)
    loss = get_loss("bpr")(positive, negative, np.ones((batch, 2), dtype=bool))
    model.zero_grad()
    loss.backward()
    return {
        name: (None if param.grad is None else np.asarray(param.grad, dtype=np.float64))
        for name, param in model.named_parameters()
    }


class TestGradientParityAcrossDtypes:
    @pytest.mark.parametrize("name,kwargs", MODEL_CASES)
    def test_float32_matches_float64_gradients(self, name, kwargs):
        grads64 = _model_grads(name, kwargs, "float64")
        grads32 = _model_grads(name, kwargs, "float32")
        assert set(grads64) == set(grads32)
        # Some gradients are analytically ~0 (e.g. attention key biases,
        # which cancel under the softmax shift invariance) and carry pure
        # rounding noise; the absolute tolerance is therefore anchored to
        # the overall gradient magnitude, not the per-tensor one.
        scale = max(
            float(np.abs(g).max()) for g in grads64.values() if g is not None
        )
        for key in grads64:
            g64, g32 = grads64[key], grads32[key]
            assert (g64 is None) == (g32 is None), key
            if g64 is None:
                continue
            assert np.allclose(g32, g64, atol=5e-6 * scale, rtol=5e-5), (
                f"{name}.{key}: max diff {np.abs(g32 - g64).max():.3e}"
            )

    @pytest.mark.parametrize("name,kwargs", MODEL_CASES)
    def test_float64_gradients_match_finite_differences(self, name, kwargs):
        model = create_model(name, 4, 8, rng=np.random.default_rng(5),
                             dtype="float64", **kwargs)
        model.eval()
        rng = np.random.default_rng(6)
        users = rng.integers(0, 4, size=2)
        inputs = rng.integers(0, 8, size=(2, model.input_length))
        targets = rng.integers(0, 8, size=(2, 1))
        negatives = rng.integers(0, 8, size=(2, 1))

        def loss():
            positive = model.score_items(users, inputs, targets)
            negative = model.score_items(users, inputs, negatives)
            return get_loss("bpr")(positive, negative)

        # A couple of representative parameters per model keeps the
        # finite-difference sweep fast while still crossing every layer.
        params = model.parameters()
        checked = [params[0], params[-1]]
        assert gradient_check(loss, checked, epsilon=1e-6)
