"""Tests for repro.autograd.functional operations."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.autograd.numeric import gradient_check


def make(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = make((4, 7), seed=1)
        probs = F.softmax(x, axis=-1)
        assert np.allclose(probs.data.sum(axis=-1), 1.0)

    def test_invariant_to_shift(self):
        x = make((3, 5), seed=2)
        shifted = Tensor(x.data + 100.0)
        assert np.allclose(F.softmax(x).data, F.softmax(shifted).data)

    def test_gradcheck(self):
        x = make((2, 4), seed=3)
        gradient_check(lambda: (F.softmax(x, axis=-1) ** 2).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self):
        x = make((3, 6), seed=4)
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_log_softmax_gradcheck(self):
        x = make((2, 3), seed=5)
        gradient_check(lambda: F.log_softmax(x, axis=-1).sum(), [x])


class TestLogSigmoid:
    def test_matches_naive_formula_in_safe_range(self):
        x = make((10,), seed=6)
        expected = np.log(1.0 / (1.0 + np.exp(-x.data)))
        assert np.allclose(F.logsigmoid(x).data, expected)

    def test_no_overflow_for_large_negative_inputs(self):
        x = Tensor(np.array([-1000.0, -100.0, 0.0, 100.0]), requires_grad=True)
        out = F.logsigmoid(x)
        assert np.all(np.isfinite(out.data))
        # log sigmoid(-1000) ~ -1000, log sigmoid(100) ~ 0
        assert out.data[0] == pytest.approx(-1000.0, rel=1e-6)
        assert out.data[3] == pytest.approx(0.0, abs=1e-6)

    def test_gradcheck(self):
        x = make((5,), seed=7)
        gradient_check(lambda: F.logsigmoid(x).sum(), [x])

    def test_gradient_is_one_minus_sigmoid(self):
        x = make((6,), seed=8)
        F.logsigmoid(x).sum().backward()
        expected = 1.0 - 1.0 / (1.0 + np.exp(-x.data))
        assert np.allclose(x.grad, expected)


class TestDropout:
    def test_identity_when_not_training(self):
        x = make((10, 10), seed=9)
        out = F.dropout(x, 0.5, training=False)
        assert np.array_equal(out.data, x.data)

    def test_identity_when_p_zero(self):
        x = make((10, 10), seed=10)
        out = F.dropout(x, 0.0, training=True)
        assert np.array_equal(out.data, x.data)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(11)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(make((2, 2)), 1.0, training=True)


class TestPoolingAndEmbedding:
    def test_mean_pool(self):
        x = Tensor(np.arange(12.0).reshape(2, 3, 2), requires_grad=True)
        pooled = F.mean_pool(x, axis=1)
        assert pooled.shape == (2, 2)
        assert np.allclose(pooled.data[0], [2.0, 3.0])

    def test_max_pool(self):
        x = Tensor(np.arange(12.0).reshape(2, 3, 2), requires_grad=True)
        pooled = F.max_pool(x, axis=1)
        assert np.allclose(pooled.data[0], [4.0, 5.0])

    def test_embedding_lookup_shape(self):
        weight = make((10, 4), seed=12)
        out = F.embedding(weight, np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 4)

    def test_embedding_gradcheck(self):
        weight = make((8, 3), seed=13)
        idx = np.array([[0, 1], [1, 7]])
        gradient_check(lambda: (F.embedding(weight, idx) ** 2).sum(), [weight])


class TestMaskedFillAndAttention:
    def test_masked_fill_values(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -5.0)
        assert np.allclose(out.data, [[-5.0, 1.0], [1.0, -5.0]])

    def test_masked_fill_blocks_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        F.masked_fill(x, mask, -5.0).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_attention_output_shape(self):
        q = make((2, 5, 8), seed=14)
        k = make((2, 5, 8), seed=15)
        v = make((2, 5, 8), seed=16)
        out = F.scaled_dot_product_attention(q, k, v)
        assert out.shape == (2, 5, 8)

    def test_causal_mask_blocks_future(self):
        # With a causal mask, the first position can only attend to itself,
        # so its output must equal the first value row exactly.
        length, dim = 4, 3
        q = make((1, length, dim), seed=17)
        k = make((1, length, dim), seed=18)
        v = make((1, length, dim), seed=19)
        causal = np.triu(np.ones((length, length), dtype=bool), k=1)
        out = F.scaled_dot_product_attention(q, k, v, mask=causal)
        assert np.allclose(out.data[0, 0], v.data[0, 0])

    def test_attention_gradcheck(self):
        q = make((1, 3, 2), seed=20)
        k = make((1, 3, 2), seed=21)
        v = make((1, 3, 2), seed=22)
        gradient_check(
            lambda: (F.scaled_dot_product_attention(q, k, v) ** 2).sum(),
            [q, k, v],
        )
