"""Tests of the ``multicore`` marker's skip helper.

The throughput benchmarks assert relative speedups that only exist with
at least two real cores; those assertions sit in ``multicore``-marked
tests that call :func:`repro.bench_all.require_multicore` first.  This
module pins the helper's contract on both sides — it must *skip* on a
single-core machine and *pass through* on a multi-core one — with
``os.cpu_count`` monkeypatched so the fast tier exercises both branches
regardless of the runner.
"""

from __future__ import annotations

import os

import pytest

from repro.bench_all import require_multicore

pytestmark = pytest.mark.fast


def test_skips_on_single_core(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    with pytest.raises(pytest.skip.Exception) as outcome:
        require_multicore()
    assert "cpu_count=1" in str(outcome.value)


def test_skips_when_cpu_count_is_unknown(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    with pytest.raises(pytest.skip.Exception):
        require_multicore()


def test_passes_through_on_multicore(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    require_multicore()  # must not raise


def test_marker_is_registered(request):
    markers = request.config.getini("markers")
    assert any(line.startswith("multicore:") for line in markers), (
        "the multicore marker must be declared in pytest.ini")
