"""Property-based tests (hypothesis) on core data structures and invariants.

These complement the example-based unit tests by checking invariants over
randomly generated inputs:

* autograd results match NumPy and gradients match finite differences,
* pooling and synergies agree with their brute-force definitions,
* the ranking metrics and the top-k selection obey their mathematical
  invariants,
* the experimental-setting splits and the sliding windows never lose,
  reorder or invent interactions.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, functional as F
from repro.data import InteractionDataset, build_training_instances, leave_n_out, split_cut
from repro.data.windows import pad_id_for
from repro.evaluation.metrics import ndcg_at_k, recall_at_k
from repro.evaluation.ranking import rank_items, top_k_items
from repro.models.pooling import masked_max_pool, masked_mean_pool
from repro.models.synergy import synergy_vectors
from repro.training.bpr import bpr_loss

# Small-but-varied float arrays with safe magnitudes.
floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=floats)


class TestAutogradProperties:
    @given(arrays((3, 4)), arrays((3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_addition_matches_numpy_and_gradient_is_one(self, a, b):
        x, y = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        out = x + y
        assert np.allclose(out.data, a + b)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)
        assert np.allclose(y.grad, 1.0)

    @given(arrays((4, 3)), arrays((3, 2)))
    @settings(max_examples=30, deadline=None)
    def test_matmul_matches_numpy(self, a, b):
        out = Tensor(a).matmul(Tensor(b))
        assert np.allclose(out.data, a @ b, atol=1e-10)

    @given(arrays((2, 5)))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_a_distribution(self, a):
        probs = F.softmax(Tensor(a), axis=-1).data
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    @given(arrays((3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_bounds_and_symmetry(self, a):
        s = Tensor(a).sigmoid().data
        assert np.all((s > 0) & (s < 1))
        s_neg = Tensor(-a).sigmoid().data
        assert np.allclose(s + s_neg, 1.0)

    @given(arrays((3, 4)))
    @settings(max_examples=20, deadline=None)
    def test_sum_gradient_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(a))

    @given(arrays((6,)), arrays((6,)))
    @settings(max_examples=30, deadline=None)
    def test_mul_gradient_is_other_operand(self, a, b):
        x = Tensor(a, requires_grad=True)
        y = Tensor(b, requires_grad=True)
        (x * y).sum().backward()
        assert np.allclose(x.grad, b)
        assert np.allclose(y.grad, a)

    @given(arrays((4, 3)))
    @settings(max_examples=30, deadline=None)
    def test_logsigmoid_is_negative_and_monotone(self, a):
        values = F.logsigmoid(Tensor(a)).data
        assert np.all(values <= 0)
        order = np.argsort(a, axis=None)
        flat = values.reshape(-1)
        assert np.all(np.diff(flat[order]) >= -1e-12)


class TestPoolingAndSynergyProperties:
    @given(arrays((3, 5, 4)))
    @settings(max_examples=30, deadline=None)
    def test_mean_pool_bounded_by_min_and_max(self, data):
        mask = np.ones((3, 5), dtype=bool)
        pooled = masked_mean_pool(Tensor(data), mask).data
        assert np.all(pooled <= data.max(axis=1) + 1e-12)
        assert np.all(pooled >= data.min(axis=1) - 1e-12)

    @given(arrays((2, 4, 3)))
    @settings(max_examples=30, deadline=None)
    def test_max_pool_equals_numpy_max(self, data):
        mask = np.ones((2, 4), dtype=bool)
        pooled = masked_max_pool(Tensor(data), mask).data
        assert np.allclose(pooled, data.max(axis=1))

    @given(arrays((2, 4, 3)), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_masked_positions_never_change_mean_pool(self, data, masked_column):
        mask = np.ones((2, 4), dtype=bool)
        mask[:, masked_column] = False
        zeroed = data.copy()
        zeroed[:, masked_column, :] = 0.0
        changed = zeroed.copy()
        changed[:, masked_column, :] = 99.0
        # Padded rows carry zero embeddings in the models; whatever value
        # sits there must not influence the masked mean.
        pooled_zero = masked_mean_pool(Tensor(zeroed), mask).data
        pooled_changed = masked_mean_pool(Tensor(changed), mask).data
        assert np.allclose(pooled_zero, pooled_changed)

    @given(arrays((1, 4, 3)))
    @settings(max_examples=25, deadline=None)
    def test_order2_synergy_matches_bruteforce(self, data):
        mask = np.ones((1, 4), dtype=bool)
        result = synergy_vectors(Tensor(data), mask, order=2)[0].data[0]
        items = data[0]
        per_item = [
            sum(items[j] * items[k] for k in range(4) if k != j)
            for j in range(4)
        ]
        assert np.allclose(result, np.mean(per_item, axis=0), atol=1e-9)

    @given(arrays((2, 3, 4)))
    @settings(max_examples=25, deadline=None)
    def test_synergy_order_list_length(self, data):
        mask = np.ones((2, 3), dtype=bool)
        for order in range(1, 4):
            assert len(synergy_vectors(Tensor(data), mask, order)) == max(order - 1, 0)


class TestBPRProperties:
    @given(arrays((4, 3)), arrays((4, 3)))
    @settings(max_examples=30, deadline=None)
    def test_loss_is_positive_and_antisymmetric_in_ordering(self, pos, neg):
        loss_correct = float(bpr_loss(Tensor(pos), Tensor(neg)).data)
        loss_swapped = float(bpr_loss(Tensor(neg), Tensor(pos)).data)
        assert loss_correct > 0
        # Whichever assignment ranks "positives" higher has the lower loss.
        if np.mean(pos - neg) > np.mean(neg - pos):
            assert loss_correct <= loss_swapped + 1e-9

    @given(arrays((3, 2)), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_increasing_margin_never_increases_loss(self, scores, margin):
        pos = Tensor(scores)
        neg = Tensor(scores - margin)
        tighter = Tensor(scores - margin / 2.0)
        assert float(bpr_loss(pos, neg).data) <= float(bpr_loss(pos, tighter).data) + 1e-12


class TestMetricProperties:
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=20, unique=True),
           st.lists(st.integers(0, 50), min_size=1, max_size=10, unique=True),
           st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_metrics_bounded(self, recommended, truth, k):
        recall = recall_at_k(recommended, truth, k)
        ndcg = ndcg_at_k(recommended, truth, k)
        assert 0.0 <= recall <= 1.0
        assert 0.0 <= ndcg <= 1.0

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=20, unique=True),
           st.lists(st.integers(0, 50), min_size=1, max_size=10, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_recall_monotone_in_k(self, recommended, truth):
        values = [recall_at_k(recommended, truth, k) for k in range(1, len(recommended) + 1)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=10, unique=True),
           st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_perfect_recommendation_scores_one(self, truth, k):
        assume(k <= len(truth))
        recall = recall_at_k(truth, truth, max(k, len(truth)))
        ndcg = ndcg_at_k(truth, truth, max(k, len(truth)))
        assert recall == pytest.approx(1.0)
        assert ndcg == pytest.approx(1.0)

    @given(hnp.arrays(np.float64, (4, 25), elements=floats), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_top_k_agrees_with_full_ranking(self, scores, k):
        top = top_k_items(scores, k)
        full = rank_items(scores)[:, :k]
        for row in range(scores.shape[0]):
            assert set(scores[row, top[row]]) == set(scores[row, full[row]])


class TestSplitAndWindowProperties:
    @staticmethod
    def _dataset(sequences):
        num_items = max(max(seq) for seq in sequences) + 1
        return InteractionDataset([list(seq) for seq in sequences], num_items)

    @given(st.lists(st.lists(st.integers(0, 40), min_size=10, max_size=60),
                    min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_cut_split_partitions_each_sequence(self, sequences):
        dataset = self._dataset(sequences)
        split = split_cut(dataset)
        for user, seq in enumerate(sequences):
            combined = split.train[user] + split.valid[user] + split.test[user]
            assert combined == list(seq)
            assert len(split.train[user]) >= 1

    @given(st.lists(st.lists(st.integers(0, 40), min_size=10, max_size=60),
                    min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_leave_n_out_sizes(self, sequences):
        dataset = self._dataset(sequences)
        split = leave_n_out(dataset, test_items=3, valid_items=3)
        for user, seq in enumerate(sequences):
            assert len(split.test[user]) <= 3
            assert len(split.valid[user]) <= 3
            assert len(split.train[user]) >= 1
            combined = split.train[user] + split.valid[user] + split.test[user]
            assert combined == list(seq)

    @given(st.lists(st.integers(0, 30), min_size=2, max_size=40),
           st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_windows_are_contiguous_subsequences(self, sequence, n_h, n_p):
        num_items = 31
        instances = build_training_instances([sequence], num_items, n_h=n_h, n_p=n_p)
        pad = pad_id_for(num_items)
        joined = "," + ",".join(map(str, sequence)) + ","
        for inputs, targets in zip(instances.inputs, instances.targets):
            window = [item for item in list(inputs) + list(targets) if item != pad]
            assert window, "window must contain at least one real item"
            fragment = "," + ",".join(map(str, window)) + ","
            assert fragment in joined
        # every window keeps at least one real input and one real target
        if len(instances):
            assert instances.input_mask().any(axis=1).all()
            assert instances.target_mask().any(axis=1).all()

    @given(st.lists(st.lists(st.integers(0, 20), min_size=2, max_size=30),
                    min_size=1, max_size=6),
           st.integers(1, 5), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_window_count_formula(self, sequences, n_h, n_p):
        num_items = 21
        instances = build_training_instances(sequences, num_items, n_h=n_h, n_p=n_p)
        expected = 0
        for seq in sequences:
            if len(seq) < 2:
                continue
            if len(seq) < n_h + n_p:
                expected += 1
            else:
                expected += len(seq) - n_h - n_p + 1
        assert len(instances) == expected
