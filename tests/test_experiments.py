"""Tests for the experiment harness: configs, reporting, overall runner, registry."""

import numpy as np
import pytest

from repro.data.benchmarks import BENCHMARK_NAMES
from repro.experiments import (
    PAPER_BEST_PARAMETERS,
    default_model_hyperparameters,
    default_training_config,
    format_table,
    get_experiment,
    list_experiments,
    paper_vs_measured_table,
    run_overall_experiment,
)
from repro.experiments import paper_results
from repro.experiments.configs import default_n_p
from repro.experiments.overall import clear_cache
from repro.models.registry import MODEL_REGISTRY, PAPER_METHODS


class TestReporting:
    def test_format_table_basic(self):
        rows = [{"a": 1, "b": 0.12345}, {"a": 2, "b": 3.0}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "0.1235" in text or "0.1234" in text
        assert text.count("\n") >= 4

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_missing_keys(self):
        rows = [{"a": 1}, {"a": 2, "b": 7}]
        text = format_table(rows, columns=["a", "b"])
        assert "7" in text

    def test_paper_vs_measured_adds_caveat(self):
        text = paper_vs_measured_table([{"x": 1}], title="t")
        assert "synthetic" in text


class TestConfigs:
    def test_paper_best_parameters_cover_all_datasets(self):
        for setting in ("80-20-CUT", "80-3-CUT", "3-LOS"):
            for method in ("HAMs_m", "HGN", "SASRec", "Caser"):
                assert set(PAPER_BEST_PARAMETERS[setting][method]) == set(BENCHMARK_NAMES)

    def test_80_3_shares_80_20_parameters(self):
        assert PAPER_BEST_PARAMETERS["80-3-CUT"] is PAPER_BEST_PARAMETERS["80-20-CUT"]

    def test_default_hyperparameters_for_every_registered_model(self):
        for method in MODEL_REGISTRY:
            params = default_model_hyperparameters(method, "cds", "80-20-CUT")
            assert isinstance(params, dict)

    def test_ham_structure_follows_paper(self):
        params = default_model_hyperparameters("HAMs_m", "children", "80-20-CUT")
        # paper Table A2: Children n_h=6, n_l=1, p=3
        assert params["n_h"] == 6 and params["n_l"] == 1 and params["synergy_order"] == 3

    def test_sasrec_heads_divide_dim(self):
        params = default_model_hyperparameters("SASRec", "ml-20m", "80-20-CUT")
        assert params["embedding_dim"] % params["num_heads"] == 0

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            default_model_hyperparameters("NoSuchModel")

    def test_gru4rec_defaults_available(self):
        params = default_model_hyperparameters("GRU4Rec")
        assert params["sequence_length"] > 0

    def test_default_n_p(self):
        assert default_n_p("cds", "80-20-CUT") == 3
        assert default_n_p("comics", "80-20-CUT") == 5

    def test_default_training_config(self):
        config = default_training_config(num_epochs=7, dataset="cds")
        assert config.num_epochs == 7
        assert config.learning_rate == pytest.approx(1e-3)

    def test_embedding_dim_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMBEDDING_DIM", "16")
        params = default_model_hyperparameters("HAMm", "cds")
        assert params["embedding_dim"] == 16


class TestPaperResults:
    def test_overall_performance_complete(self):
        for setting, metrics in paper_results.OVERALL_PERFORMANCE.items():
            assert set(metrics) == {"Recall@5", "Recall@10", "NDCG@5", "NDCG@10"}
            for metric, datasets in metrics.items():
                assert set(datasets) == set(paper_results.PAPER_DATASET_ORDER)
                for values in datasets.values():
                    assert set(values) == set(paper_results.PAPER_METHOD_ORDER)

    def test_headline_numbers(self):
        table3 = paper_results.OVERALL_PERFORMANCE["80-20-CUT"]["Recall@5"]
        assert table3["cds"]["HAMm"] == pytest.approx(0.0401)
        assert table3["comics"]["HAMs_m"] == pytest.approx(0.1385)
        table9 = paper_results.IMPROVEMENT_SUMMARY["80-3-CUT"]["Recall@5"]
        assert table9["Caser"] == pytest.approx(46.6)

    def test_hams_m_wins_children_in_all_settings(self):
        # Qualitative claim of the paper encoded in the transcription.
        for setting in paper_results.OVERALL_PERFORMANCE:
            row = paper_results.OVERALL_PERFORMANCE[setting]["Recall@5"]["children"]
            assert max(row, key=row.get) == "HAMs_m"

    def test_runtime_hamsm_fastest_everywhere(self):
        for dataset, row in paper_results.RUNTIME_SECONDS_PER_USER.items():
            assert min(row, key=row.get) == "HAMs_m"


class TestOverallRunner:
    @pytest.fixture(autouse=True)
    def _clear(self):
        clear_cache()
        yield
        clear_cache()

    def test_run_small_experiment(self):
        result = run_overall_experiment(
            "cds", "80-3-CUT", methods=("HAMm", "POP"), scale="tiny", epochs=2, seed=0,
        )
        assert set(result.runs) == {"HAMm", "POP"}
        assert 0.0 <= result.metric("HAMm", "Recall@10") <= 1.0
        assert result.runs["HAMm"].timing.seconds_per_user > 0
        row = result.metric_row("Recall@5")
        assert set(row) == {"HAMm", "POP"}
        assert result.best_method("Recall@5") in row
        assert len(result.per_user("HAMm", "Recall@5")) > 0

    def test_cache_reuses_runs(self):
        first = run_overall_experiment("cds", "80-3-CUT", methods=("HAMm",),
                                       scale="tiny", epochs=1, seed=0)
        second = run_overall_experiment("cds", "80-3-CUT", methods=("HAMm",),
                                        scale="tiny", epochs=1, seed=0)
        assert first is second
        different = run_overall_experiment("cds", "80-3-CUT", methods=("HAMm",),
                                           scale="tiny", epochs=1, seed=1)
        assert different is not first


class TestRegistry:
    def test_all_tables_and_figures_registered(self):
        expected = {f"table{i}" for i in range(2, 15)} | {"tablea1", "tablea2", "fig3", "fig4"}
        extensions = {"ext-synergy", "ext-baselines", "ext-settings", "ext-beyond"}
        registered = {spec_id.lower() for spec_id in
                      (entry["id"] for entry in list_experiments())}
        assert expected | extensions == registered

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("TABLE3").experiment_id == "table3"
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_table2_runner(self):
        output = get_experiment("table2").run(scale="tiny")
        assert len(output["rows"]) == len(BENCHMARK_NAMES)
        assert "Table 2" in output["text"]

    def test_tableA2_runner_is_static(self):
        output = get_experiment("tableA2").run()
        assert any(row["method"] == "HAMs_m" and row["dataset"] == "cds"
                   and row["n_h"] == 5 for row in output["rows"])

    def test_fig3_runner(self):
        output = get_experiment("fig3").run(datasets=("cds",), scale="tiny")
        assert output["summary_rows"][0]["dataset"] == "CDs"

    def test_table3_runner_single_dataset(self):
        clear_cache()
        output = get_experiment("table3").run(datasets=("cds",), scale="tiny",
                                              epochs=1, seed=0)
        rows = output["rows"]
        assert {row["metric"] for row in rows} == {"Recall@5", "Recall@10"}
        first = rows[0]
        for method in PAPER_METHODS:
            assert f"{method} (paper)" in first
            assert f"{method} (measured)" in first
        clear_cache()
