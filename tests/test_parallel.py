"""Tests of the multi-process execution substrate (:mod:`repro.parallel`).

Covers the contracts the substrate is built on:

* shared-memory round-trips — arrays published by the parent attach
  bit-identically in a subprocess (``SeenIndex`` and ``FrozenScorer``
  included);
* sharded vs serial bit-equality of ``score_all`` / ``masked_scores`` /
  ``top_k`` (the ``n_workers=2`` smoke of the fast tier);
* deterministic loader output for a fixed seed regardless of worker
  count, and the fused BPR forward matching the two-pass step;
* clean shutdown — no leaked ``/dev/shm`` segments, workers joined
  (guarded by the ``shm_guard`` fixture on every test in this module).
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.dataset import InteractionDataset
from repro.data.seen import SeenIndex
from repro.data.splits import split_setting
from repro.data.windows import build_training_instances
from repro.models import create_model
from repro.models.base import FrozenScorer
from repro.parallel import (
    ParallelBatchLoader,
    SharedArena,
    ShardedScoringEngine,
    default_start_method,
    shard_bounds,
)
from repro.parallel.shm import SHM_PREFIX
from repro.serving import ScoringEngine
from repro.training import Trainer, TrainingConfig

pytestmark = pytest.mark.fast

NUM_ITEMS = 30
REPO_ROOT = Path(__file__).resolve().parents[1]


def _shm_entries() -> set[str]:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith(SHM_PREFIX)}


@pytest.fixture(autouse=True)
def shm_guard():
    """Every test must leave /dev/shm exactly as it found it."""
    before = _shm_entries()
    yield
    gc.collect()
    leaked = _shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def tiny_split(num_users: int = 14, seed: int = 0):
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(12, 18)).tolist()
        for _ in range(num_users)
    ]
    dataset = InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)
    return split_setting(dataset, "80-3-CUT")


def trained_model(split, name: str = "HAMs_m", epochs: int = 2):
    model = create_model(name, split.num_users, NUM_ITEMS,
                         rng=np.random.default_rng(0),
                         embedding_dim=8, n_h=4, n_l=2)
    Trainer(model, TrainingConfig(num_epochs=epochs, batch_size=64, seed=0)).fit(
        split.train_plus_valid())
    return model


# ---------------------------------------------------------------------- #
# Shared-memory round-trips
# ---------------------------------------------------------------------- #
def _echo_arrays(layout, keys, queue):
    arena = SharedArena.attach(layout)
    try:
        queue.put({key: np.array(arena.array(key), copy=True) for key in keys})
    finally:
        arena.close()


def _score_in_subprocess(layout, options, queue):
    """Rebuild SeenIndex + FrozenScorer from shared views and use them."""
    arena = SharedArena.attach(layout)
    try:
        seen = SeenIndex(arena.array("indptr"), arena.array("items"),
                         options["num_items"])
        bias = arena.array("bias") if "bias" in arena.keys() else None
        frozen = FrozenScorer(num_items=options["num_items"],
                              candidate_embeddings=arena.array("table"),
                              item_bias=bias)
        queue.put({
            "per_user": [seen.user_items(u).tolist() for u in range(seen.num_users)],
            "contains": seen.contains(options["q_users"], options["q_items"]),
            "scores": frozen.scores_from_representation(arena.array("reps")),
        })
    finally:
        arena.close()


class TestSharedArena:
    def test_roundtrip_in_subprocess(self):
        rng = np.random.default_rng(0)
        arrays = {
            "f32": rng.standard_normal((7, 5)).astype(np.float32),
            "f64": rng.standard_normal((3, 4)),
            "i64": rng.integers(0, 100, size=(11,)),
            "empty": np.zeros(0, dtype=np.int64),
        }
        ctx = mp.get_context(default_start_method())
        queue = ctx.Queue()
        with SharedArena.publish(arrays) as arena:
            proc = ctx.Process(target=_echo_arrays,
                               args=(arena.layout, list(arrays), queue))
            proc.start()
            echoed = queue.get(timeout=30)
            proc.join(timeout=30)
        assert proc.exitcode == 0
        for key, value in arrays.items():
            assert echoed[key].dtype == value.dtype
            assert np.array_equal(echoed[key], value)

    def test_worker_views_are_read_only(self):
        with SharedArena.publish({"x": np.arange(4)}) as arena:
            attached = SharedArena.attach(arena.layout)
            with pytest.raises((ValueError, RuntimeError)):
                attached.array("x")[0] = 99
            attached.close()

    def test_closed_arena_rejects_access(self):
        arena = SharedArena.publish({"x": np.arange(4)})
        arena.close()
        with pytest.raises(RuntimeError):
            arena.array("x")
        arena.close()  # idempotent

    def test_seen_index_and_frozen_scorer_attach_parity(self):
        """The satellite contract: both structures survive shm bit-for-bit."""
        rng = np.random.default_rng(1)
        histories = [rng.integers(0, NUM_ITEMS, size=rng.integers(0, 20)).tolist()
                     for _ in range(9)]
        seen = SeenIndex.from_histories(histories, NUM_ITEMS)
        table = rng.standard_normal((NUM_ITEMS + 1, 6)).astype(np.float32)
        bias = rng.standard_normal(NUM_ITEMS + 1).astype(np.float32)
        reps = rng.standard_normal((5, 6)).astype(np.float32)
        frozen = FrozenScorer(NUM_ITEMS, table, bias)

        q_users = rng.integers(-1, 10, size=64)
        q_items = rng.integers(-1, NUM_ITEMS + 1, size=64)
        options = {"num_items": NUM_ITEMS, "q_users": q_users, "q_items": q_items}

        ctx = mp.get_context(default_start_method())
        queue = ctx.Queue()
        with SharedArena.publish({"indptr": seen.indptr, "items": seen.items,
                                  "table": table, "bias": bias,
                                  "reps": reps}) as arena:
            proc = ctx.Process(target=_score_in_subprocess,
                               args=(arena.layout, options, queue))
            proc.start()
            result = queue.get(timeout=30)
            proc.join(timeout=30)
        assert proc.exitcode == 0
        assert result["per_user"] == [seen.user_items(u).tolist()
                                      for u in range(seen.num_users)]
        assert np.array_equal(result["contains"], seen.contains(q_users, q_items))
        assert np.array_equal(result["scores"],
                              frozen.scores_from_representation(reps))


# ---------------------------------------------------------------------- #
# Sharded engine
# ---------------------------------------------------------------------- #
class TestShardedScoringEngine:
    def test_shard_bounds(self):
        assert shard_bounds(10, 3).tolist() == [0, 4, 7, 10]
        assert shard_bounds(2, 4).tolist() == [0, 1, 2, 2, 2]
        with pytest.raises(ValueError):
            shard_bounds(5, 0)

    def test_bit_identical_to_serial(self):
        """The fast-tier n_workers=2 smoke: sharding changes nothing."""
        split = tiny_split(seed=2)
        model = trained_model(split)
        histories = split.train_plus_valid()
        serial = ScoringEngine(model, histories)
        users = list(range(split.num_users))
        shuffled = np.random.default_rng(0).permutation(split.num_users).tolist()
        with ShardedScoringEngine(model, histories, n_workers=2,
                                  micro_batch_size=5) as sharded:
            assert sharded.is_parallel
            assert np.array_equal(sharded.score_all(users), serial.score_all(users))
            assert np.array_equal(sharded.masked_scores(users),
                                  serial.masked_scores(users))
            assert np.array_equal(sharded.top_k(users, 5), serial.top_k(users, 5))
            # Shuffled + repeated ids must scatter back to request order.
            request = shuffled + [1, 1, 0]
            assert np.array_equal(sharded.top_k(request, 4),
                                  serial.top_k(request, 4))
            assert np.array_equal(sharded.top_k(users, 5, exclude_seen=False),
                                  serial.top_k(users, 5, exclude_seen=False))
            assert sharded.score_all([]).shape == (0, NUM_ITEMS)

    def test_accepts_extra_histories_like_serial(self):
        """histories may cover more users than the model (serial contract)."""
        split = tiny_split(seed=13)
        model = trained_model(split)
        histories = split.train_plus_valid() + [[1, 2, 3], [4, 5]]
        serial = ScoringEngine(model, histories)
        users = list(range(split.num_users))
        with ShardedScoringEngine(model, histories, n_workers=2) as sharded:
            assert np.array_equal(sharded.top_k(users, 5), serial.top_k(users, 5))
            assert np.array_equal(sharded.masked_scores(users),
                                  serial.masked_scores(users))

    def test_recommend_batch_matches_serial(self):
        split = tiny_split(seed=14)
        model = trained_model(split)
        histories = split.train_plus_valid()
        serial = ScoringEngine(model, histories)
        users = [3, 0, 2]
        with ShardedScoringEngine(model, histories, n_workers=2) as sharded:
            for ours, theirs in zip(sharded.recommend_batch(users, 4),
                                    serial.recommend_batch(users, 4)):
                assert [(e.item, e.rank) for e in ours] == \
                    [(e.item, e.rank) for e in theirs]
                assert [e.score for e in ours] == [e.score for e in theirs]
            assert sharded.recommend(1, 3) == serial.recommend(1, 3)

    def test_observe_routes_to_owning_shard(self):
        """Shard-aware observe(): no snapshot rebuild, serial bit-parity."""
        split = tiny_split(seed=15)
        model = trained_model(split)
        histories = split.train_plus_valid()
        serial = ScoringEngine(model, histories, precompute=True)
        users = list(range(split.num_users))
        with ShardedScoringEngine(model, histories, n_workers=2,
                                  precompute=True) as sharded:
            arena = sharded._arena  # the one snapshot: never republished
            # Interactions land in both shards, repeatedly for user 1.
            last = split.num_users - 1
            for user, item in [(1, 5), (1, 7), (0, 2), (last, 9), (last, 9)]:
                serial.observe(user, item)
                sharded.observe(user, item)
                assert sharded.history(user) == serial.history(user)
            assert sharded._arena is arena
            assert np.array_equal(sharded.top_k(users, 5),
                                  serial.top_k(users, 5))
            assert np.array_equal(sharded.masked_scores(users),
                                  serial.masked_scores(users))
            with pytest.raises(ValueError):
                sharded.observe(split.num_users, 0)
            with pytest.raises(ValueError):
                sharded.observe(0, NUM_ITEMS)

    def test_observe_serial_fallback(self):
        split = tiny_split(seed=16)
        model = trained_model(split)
        histories = split.train_plus_valid()
        serial = ScoringEngine(model, histories)
        engine = ShardedScoringEngine(model, histories, n_workers=1)
        try:
            serial.observe(2, 4)
            engine.observe(2, 4)
            assert engine.history(2) == serial.history(2)
            assert np.array_equal(engine.top_k([2], 5), serial.top_k([2], 5))
        finally:
            engine.close()

    def test_count_based_fallback(self):
        from repro.models import Popularity

        split = tiny_split(seed=3)
        histories = split.train_plus_valid()
        pop = Popularity(split.num_users, NUM_ITEMS).fit_counts(histories)
        serial = ScoringEngine(pop, histories)
        users = list(range(split.num_users))
        with ShardedScoringEngine(pop, histories, n_workers=2) as sharded:
            assert np.array_equal(sharded.top_k(users, 5), serial.top_k(users, 5))

    def test_serial_fallback_below_two_workers(self):
        split = tiny_split(seed=4)
        model = trained_model(split)
        histories = split.train_plus_valid()
        engine = ShardedScoringEngine(model, histories, n_workers=1)
        try:
            assert not engine.is_parallel
            assert np.array_equal(
                engine.top_k([0, 1], 3),
                ScoringEngine(model, histories).top_k([0, 1], 3))
        finally:
            engine.close()

    def test_validation_and_shutdown(self):
        split = tiny_split(seed=5)
        model = trained_model(split)
        histories = split.train_plus_valid()
        engine = ShardedScoringEngine(model, histories, n_workers=2)
        with pytest.raises(ValueError):
            engine.top_k([0], 0)
        with pytest.raises(ValueError):
            engine.score_all([split.num_users + 7])
        workers = list(engine._workers)
        engine.close()
        assert all(not worker.is_alive() for worker in workers)
        with pytest.raises(RuntimeError):
            engine.score_all([0])
        engine.close()  # idempotent

    def test_evaluators_match_serial(self):
        from repro.evaluation.coverage import beyond_accuracy_report
        from repro.evaluation.evaluator import RankingEvaluator
        from repro.evaluation.sampled import SampledRankingEvaluator

        split = tiny_split(seed=6)
        model = trained_model(split)
        serial = RankingEvaluator(split, ks=(5, 10)).evaluate(model)
        parallel = RankingEvaluator(split, ks=(5, 10), n_workers=2).evaluate(model)
        assert serial.metrics == parallel.metrics
        for name in serial.per_user:
            assert np.array_equal(serial.per_user[name], parallel.per_user[name])

        sampled_serial = SampledRankingEvaluator(split, num_negatives=10,
                                                 seed=1).evaluate(model)
        sampled_parallel = SampledRankingEvaluator(split, num_negatives=10,
                                                   seed=1, n_workers=2).evaluate(model)
        assert sampled_serial.metrics == sampled_parallel.metrics

        assert beyond_accuracy_report(model, split, k=5) == \
            beyond_accuracy_report(model, split, k=5, n_workers=2)


# ---------------------------------------------------------------------- #
# Worker-pool data loader
# ---------------------------------------------------------------------- #
def _loader_stream(instances, seen, n_workers: int, epochs: int = 2):
    batches = []
    with ParallelBatchLoader(instances, NUM_ITEMS, seen, batch_size=16,
                             num_negatives=2, seed=7, n_workers=n_workers,
                             prefetch_batches=3) as loader:
        for epoch in range(epochs):
            for batch in loader.epoch(epoch):
                batches.append((batch.users, batch.inputs, batch.targets,
                                batch.negatives))
    return batches


class TestParallelBatchLoader:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(8)
        sequences = [rng.integers(0, NUM_ITEMS, size=rng.integers(6, 25)).tolist()
                     for _ in range(24)]
        instances = build_training_instances(sequences, num_items=NUM_ITEMS,
                                             n_h=4, n_p=3)
        return instances, SeenIndex.from_histories(sequences, NUM_ITEMS)

    def test_deterministic_for_any_worker_count(self, workload):
        """The satellite contract: the stream is identical for 0/1/2 workers."""
        instances, seen = workload
        serial = _loader_stream(instances, seen, n_workers=0)
        assert serial  # non-empty workload
        for n_workers in (1, 2):
            parallel = _loader_stream(instances, seen, n_workers=n_workers)
            assert len(parallel) == len(serial)
            for ours, theirs in zip(serial, parallel):
                for a, b in zip(ours, theirs):
                    assert np.array_equal(a, b)

    def test_negatives_avoid_seen_items(self, workload):
        instances, seen = workload
        for users, _, _, negatives in _loader_stream(instances, seen, 0, epochs=1):
            flat_users = np.repeat(users, negatives.shape[1])
            assert not seen.contains(flat_users, negatives.reshape(-1)).any()

    def test_epochs_differ(self, workload):
        instances, seen = workload
        stream = _loader_stream(instances, seen, 0, epochs=2)
        half = len(stream) // 2
        assert not np.array_equal(stream[0][3], stream[half][3])

    def test_trainer_with_loader_workers(self):
        split = tiny_split(seed=9)
        config = TrainingConfig(num_epochs=2, batch_size=32, seed=0,
                                keep_best=False, loader_workers=2)
        model = create_model("HAMm", split.num_users, NUM_ITEMS,
                             rng=np.random.default_rng(0),
                             embedding_dim=8, n_h=4, n_l=2)
        result = Trainer(model, config).fit(split.train_plus_valid())
        assert len(result.epoch_losses) == 2
        assert all(np.isfinite(loss) for loss in result.epoch_losses)

        # Same seed, same worker count -> bit-identical parameters.
        rerun = create_model("HAMm", split.num_users, NUM_ITEMS,
                             rng=np.random.default_rng(0),
                             embedding_dim=8, n_h=4, n_l=2)
        rerun_result = Trainer(rerun, config).fit(split.train_plus_valid())
        assert result.epoch_losses == rerun_result.epoch_losses
        for (name, ours), (_, theirs) in zip(model.named_parameters(),
                                             rerun.named_parameters()):
            assert np.array_equal(ours.data, theirs.data), name

    def test_validation(self, workload):
        instances, seen = workload
        with pytest.raises(ValueError):
            ParallelBatchLoader(instances, NUM_ITEMS, seen, batch_size=0)
        with pytest.raises(ValueError):
            ParallelBatchLoader(instances, NUM_ITEMS, seen, batch_size=4,
                                prefetch_batches=0)
        loader = ParallelBatchLoader(instances, NUM_ITEMS, seen, batch_size=4)
        loader.close()
        with pytest.raises(RuntimeError):
            next(loader.epoch(0))


# ---------------------------------------------------------------------- #
# Fused BPR forward
# ---------------------------------------------------------------------- #
class TestFusedScoring:
    def test_matches_two_pass_forward_and_backward(self):
        model = create_model("HAMs_m", 6, NUM_ITEMS,
                             rng=np.random.default_rng(0),
                             embedding_dim=8, n_h=4, n_l=2)
        rng = np.random.default_rng(1)
        users = rng.integers(0, 6, size=5)
        inputs = rng.integers(0, NUM_ITEMS, size=(5, 4))
        positives = rng.integers(0, NUM_ITEMS, size=(5, 3))
        negatives = rng.integers(0, NUM_ITEMS, size=(5, 3))

        fused_pos, fused_neg = model.score_item_pairs(users, inputs,
                                                      positives, negatives)
        two_pos = model.score_items(users, inputs, positives)
        two_neg = model.score_items(users, inputs, negatives)
        assert np.allclose(fused_pos.data, two_pos.data, rtol=0, atol=1e-12)
        assert np.allclose(fused_neg.data, two_neg.data, rtol=0, atol=1e-12)

        (fused_pos - fused_neg).sum().backward()
        fused_grads = {name: np.array(param.grad, copy=True)
                       for name, param in model.named_parameters()
                       if param.grad is not None}
        model.zero_grad()
        (two_pos - two_neg).sum().backward()
        for name, param in model.named_parameters():
            if param.grad is None:
                assert name not in fused_grads
                continue
            assert np.allclose(fused_grads[name], param.grad,
                               rtol=1e-10, atol=1e-12), name

    def test_trainer_fused_matches_two_pass_losses(self):
        split = tiny_split(seed=10)

        def run(fused: bool):
            model = create_model("HAMm", split.num_users, NUM_ITEMS,
                                 rng=np.random.default_rng(0),
                                 embedding_dim=8, n_h=4, n_l=2)
            config = TrainingConfig(num_epochs=2, batch_size=32, seed=0,
                                    keep_best=False, fused_scoring=fused)
            return Trainer(model, config).fit(split.train_plus_valid())

        fused, two_pass = run(True), run(False)
        assert np.allclose(fused.epoch_losses, two_pass.epoch_losses,
                           rtol=1e-6, atol=1e-9)


# ---------------------------------------------------------------------- #
# Checkpoint-to-engine serve path
# ---------------------------------------------------------------------- #
class TestCheckpointServing:
    def test_engine_from_checkpoint_matches_trained_model(self, tmp_path):
        from repro.serving import engine_from_checkpoint, model_from_checkpoint
        from repro.training.checkpoint import save_checkpoint

        split = tiny_split(seed=11)
        model = trained_model(split)
        histories = split.train_plus_valid()
        hyperparameters = dict(embedding_dim=8, n_h=4, n_l=2)
        path = save_checkpoint(model, tmp_path / "model.npz", metadata={
            "method": "HAMs_m",
            "model": {"num_users": split.num_users, "num_items": NUM_ITEMS},
            "hyperparameters": hyperparameters,
        })

        rebuilt, metadata = model_from_checkpoint(path)
        assert metadata["method"] == "HAMs_m"
        assert rebuilt.compute_dtype() == model.compute_dtype()

        reference = ScoringEngine(model, histories)
        users = list(range(split.num_users))
        engine = engine_from_checkpoint(path, histories)
        assert np.array_equal(engine.score_all(users), reference.score_all(users))

        with engine_from_checkpoint(path, histories, n_workers=2) as sharded:
            assert np.array_equal(sharded.top_k(users, 5),
                                  reference.top_k(users, 5))

    def test_missing_metadata_requires_overrides(self, tmp_path):
        from repro.serving import model_from_checkpoint
        from repro.training.checkpoint import save_checkpoint

        split = tiny_split(seed=12)
        model = trained_model(split)
        path = save_checkpoint(model, tmp_path / "bare.npz")
        with pytest.raises(ValueError):
            model_from_checkpoint(path)
        rebuilt, _ = model_from_checkpoint(
            path, method="HAMs_m", num_users=split.num_users,
            num_items=NUM_ITEMS,
            hyperparameters=dict(embedding_dim=8, n_h=4, n_l=2))
        users = np.arange(split.num_users, dtype=np.int64)
        inputs = np.full((split.num_users, model.input_length), model.pad_id,
                         dtype=np.int64)
        assert np.array_equal(rebuilt.score_all(users, inputs),
                              model.score_all(users, inputs))


# ---------------------------------------------------------------------- #
# Unified benchmark schema
# ---------------------------------------------------------------------- #
class TestBenchSchema:
    def test_envelope_and_history_append(self, tmp_path):
        from repro.bench_schema import (
            read_bench_history,
            read_bench_report,
            write_bench_report,
        )

        path = tmp_path / "BENCH_x.json"
        write_bench_report(path, "x", {"speedup": 3.0}, headline={"speedup": 3.0})
        write_bench_report(path, "x", {"speedup": 4.0}, headline={"speedup": 4.0})
        report = read_bench_report(path)
        assert report == {"speedup": 4.0}
        history = read_bench_history(path)
        assert [row["speedup"] for row in history] == [3.0, 4.0]
        assert all("generated_at" in row for row in history)

    def test_reads_legacy_flat_files(self, tmp_path):
        import json

        from repro.bench_schema import read_bench_history, read_bench_report

        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps({"speedup": 2.5}), encoding="utf-8")
        assert read_bench_report(path) == {"speedup": 2.5}
        assert read_bench_history(path) == []


# ---------------------------------------------------------------------- #
# Lifecycle hardening and request deadlines (fast tier)
# ---------------------------------------------------------------------- #
class TestLifecycleAndDeadlines:
    def test_request_timeout_is_constructor_configurable(self):
        from repro.parallel import DEFAULT_REQUEST_TIMEOUT_S

        assert DEFAULT_REQUEST_TIMEOUT_S == 120.0
        split = tiny_split(seed=21)
        model = trained_model(split, epochs=1)
        histories = split.train_plus_valid()
        with pytest.raises(ValueError):
            ShardedScoringEngine(model, histories, n_workers=2,
                                 request_timeout_s=0.0)
        with ShardedScoringEngine(model, histories, n_workers=2,
                                  request_timeout_s=5.0) as engine:
            assert engine.request_timeout_s == 5.0
            with pytest.raises(ValueError):
                engine.top_k([0], 3, timeout=-1.0)
            # None waits forever; a generous per-call timeout overrides.
            assert engine.top_k([0], 3, timeout=None).shape == (1, 3)
            assert engine.top_k([0], 3, timeout=30.0).shape == (1, 3)

    def test_stale_results_are_counted_in_stats(self):
        from repro.parallel import FaultPlan

        split = tiny_split(seed=22)
        model = trained_model(split, epochs=1)
        histories = split.train_plus_valid()
        serial = ScoringEngine(model, histories)
        users = list(range(split.num_users))
        # Every shard-0 reply is delayed past the first call's deadline;
        # the late answer then lands during the second call's collect,
        # where it must be dropped and counted — never merged.
        plan = FaultPlan.delay_shard(0, delay_s=0.6)
        with ShardedScoringEngine(model, histories, n_workers=2,
                                  fault_plan=plan) as engine:
            with pytest.raises(TimeoutError):
                engine.top_k(users, 3, timeout=0.15)
            assert engine.stats()["deadline_timeouts"] == 1
            time.sleep(0.8)  # let the orphaned reply reach the queue
            assert np.array_equal(engine.top_k(users, 3, timeout=30.0),
                                  serial.top_k(users, 3))
            stats = engine.stats()
            assert stats["stale_results_dropped"] >= 1
            assert stats["worker_deaths"] == 0  # slow, not dead

    def test_owner_arena_unlinks_on_garbage_collection(self):
        arena = SharedArena.publish({"x": np.arange(8, dtype=np.float64)})
        segment = f"/dev/shm/{arena.layout.segment_name}"
        if not os.path.exists(segment):
            pytest.skip("platform does not expose /dev/shm segments")
        del arena
        gc.collect()
        assert not os.path.exists(segment)

    def test_owner_death_unlinks_segment_at_interpreter_exit(self):
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import numpy as np
            from repro.parallel.shm import SharedArena
            arena = SharedArena.publish({"x": np.arange(16.0)})
            print(arena.layout.segment_name)
            # exits WITHOUT close(): the owner finalizer must unlink
        """)
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run([sys.executable, "-c", script], cwd=REPO_ROOT,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip()
        assert name.startswith(SHM_PREFIX)
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")
        # No resource_tracker complaints about leaked segments either.
        assert "leaked" not in proc.stderr, proc.stderr
