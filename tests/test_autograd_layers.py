"""Tests for layers, module abstraction, optimizers and initializers."""

import numpy as np
import pytest

from repro.autograd import (
    SGD,
    Adagrad,
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
    init,
)
from repro.autograd.numeric import gradient_check


RNG = np.random.default_rng(0)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(20, 8, rng=np.random.default_rng(1))
        out = emb(np.array([[1, 2], [3, 4], [5, 6]]))
        assert out.shape == (3, 2, 8)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 4, rng=np.random.default_rng(2))
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Embedding(0, 4, rng=np.random.default_rng(3))

    def test_padding_idx_row_is_zero(self):
        emb = Embedding(6, 4, rng=np.random.default_rng(4), padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0.0)
        emb.apply_padding_mask()
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_gradients_flow_to_looked_up_rows_only(self):
        emb = Embedding(6, 3, rng=np.random.default_rng(5))
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[2], 2.0)
        assert np.allclose(grad[4], 1.0)
        assert np.allclose(grad[0], 0.0)


class TestLinear:
    def test_output_shape_and_bias(self):
        layer = Linear(4, 3, rng=np.random.default_rng(6))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, rng=np.random.default_rng(7), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_batched_input(self):
        layer = Linear(4, 2, rng=np.random.default_rng(8))
        out = layer(Tensor(np.ones((2, 5, 4))))
        assert out.shape == (2, 5, 2)

    def test_gradcheck(self):
        layer = Linear(3, 2, rng=np.random.default_rng(9))
        x = Tensor(np.random.default_rng(10).normal(size=(4, 3)), requires_grad=True)
        gradient_check(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(11).normal(5.0, 3.0, size=(4, 8)))
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gradcheck(self):
        ln = LayerNorm(5)
        x = Tensor(np.random.default_rng(12).normal(size=(2, 5)), requires_grad=True)
        gradient_check(lambda: (ln(x) ** 2).sum(), [x, ln.gamma, ln.beta])


class TestDropoutLayer:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=np.random.default_rng(13))
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.array_equal(layer(x).data, x.data)

    def test_train_mode_zeroes_some(self):
        layer = Dropout(0.5, rng=np.random.default_rng(14))
        x = Tensor(np.ones((30, 30)))
        out = layer(x)
        assert (out.data == 0).sum() > 0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestContainersAndModule:
    def _small_model(self):
        rng = np.random.default_rng(15)

        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.embed = Embedding(10, 4, rng=rng)
                self.head = Linear(4, 2, rng=rng)
                self.blocks = ModuleList([Linear(2, 2, rng=rng) for _ in range(2)])

            def forward(self, idx):
                x = self.embed(idx).mean(axis=1)
                x = self.head(x)
                for block in self.blocks:
                    x = block(x)
                return x

        return Tiny()

    def test_named_parameters_covers_nested_modules(self):
        model = self._small_model()
        names = {name for name, _ in model.named_parameters()}
        assert "embed.weight" in names
        assert "head.weight" in names and "head.bias" in names
        assert "blocks.children_list.0.weight" in names

    def test_num_parameters(self):
        model = self._small_model()
        expected = 10 * 4 + 4 * 2 + 2 + 2 * (2 * 2 + 2)
        assert model.num_parameters() == expected

    def test_state_dict_roundtrip(self):
        model = self._small_model()
        state = model.state_dict()
        original = model.embed.weight.data.copy()
        model.embed.weight.data += 1.0
        model.load_state_dict(state)
        assert np.allclose(model.embed.weight.data, original)

    def test_load_state_dict_shape_mismatch(self):
        model = self._small_model()
        state = model.state_dict()
        state["embed.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_missing_key(self):
        model = self._small_model()
        state = model.state_dict()
        del state["head.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = self._small_model()
        model.eval()
        assert not model.head.training
        model.train()
        assert model.blocks[1].training

    def test_zero_grad(self):
        model = self._small_model()
        out = model(np.array([[1, 2, 3]]))
        out.sum().backward()
        assert model.embed.weight.grad is not None
        model.zero_grad()
        assert model.embed.weight.grad is None

    def test_sequential(self):
        rng = np.random.default_rng(16)
        seq = Sequential(Linear(3, 4, rng=rng), Linear(4, 2, rng=rng))
        out = seq(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(seq) == 2
        assert len(list(iter(seq))) == 2


class TestOptimizers:
    def _quadratic_problem(self):
        # minimize ||x - target||^2
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        return param, target

    def _loss(self, param, target):
        diff = param - Tensor(target)
        return (diff * diff).sum()

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.1}),
        (Adagrad, {"lr": 0.5}),
    ])
    def test_converges_on_quadratic(self, optimizer_cls, kwargs):
        param, target = self._quadratic_problem()
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(300):
            optimizer.zero_grad()
            loss = self._loss(param, target)
            loss.backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        param_plain, target = self._quadratic_problem()
        param_decay = Parameter(np.zeros(3))
        opt_plain = Adam([param_plain], lr=0.05)
        opt_decay = Adam([param_decay], lr=0.05, weight_decay=1.0)
        for _ in range(500):
            for param, opt in ((param_plain, opt_plain), (param_decay, opt_decay)):
                opt.zero_grad()
                self._loss(param, target).backward()
                opt.step()
        assert np.linalg.norm(param_decay.data) < np.linalg.norm(param_plain.data)

    def test_step_skips_parameters_without_grad(self):
        a = Parameter(np.ones(2))
        b = Parameter(np.ones(2))
        opt = Adam([a, b], lr=0.1)
        (a * 2).sum().backward()
        before = b.data.copy()
        opt.step()
        assert np.allclose(b.data, before)
        assert not np.allclose(a.data, np.ones(2))

    def test_invalid_hyperparameters(self):
        param = Parameter(np.ones(2))
        with pytest.raises(ValueError):
            Adam([param], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([param], lr=0.1, betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, weight_decay=-0.1)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestInit:
    def test_normal_statistics(self):
        param = init.normal((2000,), np.random.default_rng(17), std=0.02)
        assert abs(param.data.std() - 0.02) < 0.005

    def test_uniform_bounds(self):
        param = init.uniform((1000,), np.random.default_rng(18), low=-0.1, high=0.1)
        assert param.data.min() >= -0.1 and param.data.max() < 0.1

    def test_xavier_uniform_bound(self):
        param = init.xavier_uniform((50, 100), np.random.default_rng(19))
        bound = np.sqrt(6.0 / 150)
        assert np.abs(param.data).max() <= bound + 1e-12

    def test_xavier_normal_std(self):
        param = init.xavier_normal((200, 200), np.random.default_rng(20))
        assert abs(param.data.std() - np.sqrt(2.0 / 400)) < 0.01

    def test_zeros_ones_constant(self):
        assert np.all(init.zeros((3, 3)).data == 0)
        assert np.all(init.ones((2,)).data == 1)
        assert np.all(init.constant((2, 2), 7.0).data == 7.0)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((), np.random.default_rng(21))
