"""Chaos suite: fault-injected failure paths of the serving stack.

Drives :mod:`repro.parallel.supervisor` and
:mod:`repro.parallel.faults` through the scenarios ``docs/robustness.md``
promises, all deterministic and single-core safe:

* SIGKILL mid-request (injected and external) → respawn against the
  already-published arena, re-dispatch, bit-identical answers;
* restart-budget exhaustion → degraded in-process serial fallback, still
  bit-identical, reported via ``health()``;
* post-respawn circuit breaker → fast ``ShardCircuitOpenError`` for
  requests whose deadline lands inside the backoff window;
* request deadlines → ``TimeoutError`` on a stalled shard without
  poisoning later requests;
* observe semantics under crashes — acknowledged observes replay on the
  fresh incarnation, an in-flight observe aborts (at-most-once);
* gateway admission control — load shedding with a retry hint, queued
  deadline expiry, and deadline propagation into a sharded engine.

Select with ``pytest -m chaos`` or ``make chaos``.
"""

from __future__ import annotations

import gc
import os
import signal
import time

import numpy as np
import pytest

from repro.models import create_model
from repro.parallel import (
    FaultInjector,
    FaultPlan,
    RestartPolicy,
    ShardCircuitOpenError,
    ShardedScoringEngine,
    ShardFault,
    ShardSupervisor,
    shard_bounds,
)
from repro.parallel.shm import SHM_PREFIX
from repro.serving import GatewayOverloadedError, ScoringEngine, ServingGateway

pytestmark = pytest.mark.chaos

NUM_USERS = 12
NUM_ITEMS = 40


def _shm_entries() -> set[str]:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith(SHM_PREFIX)}


@pytest.fixture(autouse=True)
def shm_guard():
    """Every chaos scenario must leave /dev/shm exactly as it found it."""
    before = _shm_entries()
    yield
    gc.collect()
    leaked = _shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _workload(seed: int = 0):
    """Small untrained model + histories (parity needs no training)."""
    rng = np.random.default_rng(seed)
    model = create_model("HAMs_m", NUM_USERS, NUM_ITEMS,
                         rng=np.random.default_rng(1),
                         embedding_dim=8, n_h=4, n_l=2)
    model.eval()
    histories = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(8, 14)).tolist()
        for _ in range(NUM_USERS)
    ]
    return model, histories


def _copies(histories):
    return [list(h) for h in histories]


def _sharded(model, histories, **kwargs):
    kwargs.setdefault("request_timeout_s", 60.0)
    return ShardedScoringEngine(model, _copies(histories), n_workers=2,
                                exclude_seen=True, **kwargs)


def _shard_users(n_workers: int = 2):
    """User ids of shard 0 and shard 1."""
    bounds = shard_bounds(NUM_USERS, n_workers)
    return np.arange(bounds[0], bounds[1]), np.arange(bounds[1], NUM_USERS)


def _kill_worker(engine, shard: int) -> None:
    """SIGKILL a live shard worker from outside and wait for the corpse."""
    worker = engine._workers[shard]
    os.kill(worker.pid, signal.SIGKILL)
    worker.join(timeout=10.0)
    assert not worker.is_alive()


ALL_USERS = np.arange(NUM_USERS)


# ---------------------------------------------------------------------- #
# Policy / supervisor / fault-plan units (no multiprocessing)
# ---------------------------------------------------------------------- #
def test_restart_policy_validation_and_backoff():
    with pytest.raises(ValueError):
        RestartPolicy(max_restarts=-1)
    with pytest.raises(ValueError):
        RestartPolicy(backoff_base_s=-0.1)
    with pytest.raises(ValueError):
        RestartPolicy(backoff_factor=0.5)

    policy = RestartPolicy(max_restarts=3, backoff_base_s=0.1,
                           backoff_factor=2.0, backoff_max_s=0.3)
    assert policy.backoff_s(0) == 0.0  # first respawn is free
    assert policy.backoff_s(1) == pytest.approx(0.1)
    assert policy.backoff_s(2) == pytest.approx(0.2)
    assert policy.backoff_s(3) == pytest.approx(0.3)  # capped
    assert policy.backoff_s(9) == pytest.approx(0.3)


def test_supervisor_respawn_then_degrade_accounting():
    supervisor = ShardSupervisor(2, RestartPolicy(max_restarts=2))
    health = supervisor.health_of(0)
    assert health.alive and not health.degraded

    for expected_restarts in (1, 2):
        supervisor.record_death(0, exitcode=-9)
        assert not supervisor.health_of(0).alive
        assert supervisor.should_respawn(0)
        supervisor.record_respawn(0)
        assert supervisor.health_of(0).restarts == expected_restarts
        assert supervisor.health_of(0).incarnation == expected_restarts
        assert supervisor.health_of(0).alive

    supervisor.record_death(0, exitcode=-9)
    assert not supervisor.should_respawn(0)  # budget spent
    supervisor.record_degraded(0)
    assert supervisor.degraded_shards == [0]
    assert supervisor.health_of(0).alive  # degraded still serves
    assert supervisor.total_deaths == 3 and supervisor.total_restarts == 2

    supervisor.record_aborted(0, 2)
    snapshot = supervisor.snapshot()
    assert snapshot[0]["degraded"] and snapshot[0]["aborted_requests"] == 2
    assert snapshot[0]["last_exitcode"] == -9
    assert snapshot[1] == {"shard": 1, "alive": True, "degraded": False,
                           "restarts": 0, "deaths": 0, "incarnation": 0,
                           "breaker_open_s": 0.0, "last_exitcode": None,
                           "aborted_requests": 0}


def test_supervisor_breaker_gates_by_deadline():
    supervisor = ShardSupervisor(1, RestartPolicy(backoff_base_s=0.05))
    supervisor.record_death(0)
    supervisor.record_respawn(0)  # first respawn: breaker stays closed
    supervisor.wait_for_breaker(0, deadline=time.monotonic())  # no-op

    supervisor.record_death(0)
    supervisor.record_respawn(0)  # second respawn: breaker opens 0.05 s
    with pytest.raises(ShardCircuitOpenError) as info:
        supervisor.wait_for_breaker(0, deadline=time.monotonic() + 0.001)
    assert info.value.shard == 0
    assert 0.0 < info.value.retry_after_s <= 0.05

    start = time.monotonic()
    supervisor.wait_for_breaker(0, deadline=None)  # waits out the window
    assert supervisor.health_of(0).breaker_open_for() == 0.0
    assert time.monotonic() - start <= 1.0


def test_fault_plan_validation_and_injector():
    with pytest.raises(ValueError):
        FaultPlan(faults=(ShardFault(shard=0), ShardFault(shard=0)))

    plan = FaultPlan.kill_worker(shard=1, at_request=3)
    assert plan.for_shard(1).kill_at_request == 3
    assert plan.for_shard(0) is None
    assert FaultPlan.delay_shard(0, delay_s=0.1).for_shard(0).delay_response_s == 0.1
    assert FaultPlan.stall_worker(0, at_request=2).for_shard(0).stall_at_request == 2

    # Injector is inert for shards the plan does not name.
    assert not FaultInjector(plan, shard=0).active
    injector = FaultInjector(plan, shard=1)
    assert injector.active
    injector.before_reply()  # no delay configured: returns immediately

    # Terminal faults apply only to incarnation 0 unless every_incarnation.
    respawned = FaultInjector(plan, shard=1, incarnation=1)
    for _ in range(5):
        respawned.on_request()  # would SIGKILL us if it applied

    delayed = FaultInjector(FaultPlan.delay_shard(0, delay_s=0.05), shard=0)
    start = time.monotonic()
    delayed.before_reply()
    assert time.monotonic() - start >= 0.05


# ---------------------------------------------------------------------- #
# Crash recovery of the sharded engine
# ---------------------------------------------------------------------- #
def test_injected_kill_midstream_respawns_bit_identical():
    model, histories = _workload()
    serial = ScoringEngine(model, _copies(histories), exclude_seen=True)
    reference = serial.top_k(ALL_USERS, 5)

    plan = FaultPlan.kill_worker(shard=0, at_request=1)
    with _sharded(model, histories, fault_plan=plan) as engine:
        # The very first request finds the worker dead mid-request: the
        # supervisor respawns it and re-dispatches the sub-request.
        ranked = engine.top_k(ALL_USERS, 5)
        assert np.array_equal(ranked, reference)

        health = engine.health()
        assert health["shards"][0]["restarts"] == 1
        assert health["shards"][0]["deaths"] == 1
        assert health["degraded_shards"] == []
        stats = engine.stats()
        assert stats["worker_deaths"] == 1 and stats["redispatched"] >= 1

        # Steady state afterwards: no further deaths, still identical.
        assert np.array_equal(engine.top_k(ALL_USERS, 5), reference)
        assert engine.stats()["worker_deaths"] == 1


def test_external_sigkill_between_requests():
    model, histories = _workload()
    serial = ScoringEngine(model, _copies(histories), exclude_seen=True)
    reference = serial.top_k(ALL_USERS, 5)

    with _sharded(model, histories) as engine:
        assert np.array_equal(engine.top_k(ALL_USERS, 5), reference)
        _kill_worker(engine, shard=1)
        # The next dispatch notices the corpse before enqueueing.
        assert np.array_equal(engine.top_k(ALL_USERS, 5), reference)
        assert engine.health()["shards"][1]["restarts"] == 1
        assert engine.stats()["redispatched"] == 0  # died idle


def test_budget_exhaustion_degrades_to_serial_fallback():
    model, histories = _workload()
    serial = ScoringEngine(model, _copies(histories), exclude_seen=True)
    policy = RestartPolicy(max_restarts=1, backoff_base_s=0.01,
                           backoff_max_s=0.02)
    plan = FaultPlan.kill_worker(shard=0, at_request=1, every_incarnation=True)
    with _sharded(model, histories, fault_plan=plan,
                  restart_policy=policy) as engine:
        ranked = engine.top_k(ALL_USERS, 5)
        assert np.array_equal(ranked, serial.top_k(ALL_USERS, 5))

        health = engine.health()
        assert health["degraded_shards"] == [0]
        assert health["shards"][0]["degraded"]
        assert health["shards"][0]["restarts"] == 1  # budget was 1
        assert engine.stats()["degraded_shards"] == 1

        # The degraded shard keeps serving observes in-process.
        engine.observe(0, 7)
        serial.observe(0, 7)
        assert np.array_equal(engine.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))


def test_circuit_breaker_fails_fast_inside_backoff_window():
    model, histories = _workload()
    serial = ScoringEngine(model, _copies(histories), exclude_seen=True)
    reference = serial.top_k(ALL_USERS, 5)
    policy = RestartPolicy(max_restarts=3, backoff_base_s=0.5,
                           backoff_max_s=0.5)

    with _sharded(model, histories, restart_policy=policy) as engine:
        engine.top_k(ALL_USERS, 5)
        _kill_worker(engine, shard=0)
        engine.top_k(ALL_USERS, 5)  # respawn #1: breaker stays closed
        _kill_worker(engine, shard=0)
        # Respawn #2 opens the breaker for 0.5 s; a request that cannot
        # wait that long fails fast with the retry hint.
        with pytest.raises(ShardCircuitOpenError) as info:
            engine.top_k(ALL_USERS, 5, timeout=0.05)
        assert 0.0 < info.value.retry_after_s <= 0.5
        # A patient request waits out the window and serves identically.
        assert np.array_equal(engine.top_k(ALL_USERS, 5, timeout=30.0),
                              reference)
        assert engine.health()["shards"][0]["restarts"] == 2


def test_deadline_expiry_does_not_poison_later_requests():
    model, histories = _workload()
    serial = ScoringEngine(model, _copies(histories), exclude_seen=True)
    shard0_users, shard1_users = _shard_users()
    reference = serial.top_k(shard1_users, 5)

    plan = FaultPlan.stall_worker(shard=0, at_request=1)
    with _sharded(model, histories, fault_plan=plan) as engine:
        with pytest.raises(TimeoutError):
            engine.top_k(ALL_USERS, 5, timeout=0.4)
        assert engine.stats()["deadline_timeouts"] == 1
        # The stalled shard never answers, but other shards keep serving
        # and the engine stays open.
        assert np.array_equal(engine.top_k(shard1_users, 5, timeout=30.0),
                              reference)


# ---------------------------------------------------------------------- #
# Observe semantics under crashes
# ---------------------------------------------------------------------- #
def test_acknowledged_observes_replay_on_respawn():
    model, histories = _workload()
    serial = ScoringEngine(model, _copies(histories), exclude_seen=True)
    shard0_users, _ = _shard_users()
    user = int(shard0_users[0])

    with _sharded(model, histories) as engine:
        for item in (3, 11, 3):
            engine.observe(user, item)
            serial.observe(user, item)
        assert np.array_equal(engine.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))
        _kill_worker(engine, shard=0)
        # The fresh incarnation replays the acknowledged observes before
        # serving anything — otherwise user 0's row would be stale.
        assert np.array_equal(engine.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))
        assert engine.stats()["observed_interactions"] == 3


def test_inflight_observe_aborts_at_most_once():
    model, histories = _workload()
    serial = ScoringEngine(model, _copies(histories), exclude_seen=True)
    shard0_users, _ = _shard_users()
    user = int(shard0_users[0])

    # Request 1 is a warm top_k; request 2 — the observe — kills the
    # worker after dequeue but before execution.
    plan = FaultPlan.kill_worker(shard=0, at_request=2)
    with _sharded(model, histories, fault_plan=plan) as engine:
        engine.top_k(ALL_USERS, 5)
        with pytest.raises(RuntimeError, match="observe in flight"):
            engine.observe(user, 9)
        # The interaction was NOT recorded (at-most-once), and the shard
        # is already respawned and serving.
        assert engine.stats()["observed_interactions"] == 0
        assert engine.health()["shards"][0]["aborted_requests"] == 1
        assert np.array_equal(engine.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))
        # Retrying the observe on the fresh incarnation succeeds.
        engine.observe(user, 9)
        serial.observe(user, 9)
        assert np.array_equal(engine.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))


# ---------------------------------------------------------------------- #
# Gateway admission control
# ---------------------------------------------------------------------- #
class _SlowEngine:
    """Serial engine whose scoring sleeps — backs up the gateway queue."""

    def __init__(self, inner: ScoringEngine, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def masked_scores(self, users, **kwargs):
        time.sleep(self._delay_s)
        return self._inner.masked_scores(users)

    def score_all(self, users, **kwargs):
        time.sleep(self._delay_s)
        return self._inner.score_all(users)


def test_gateway_sheds_load_at_high_watermark():
    model, histories = _workload()
    engine = _SlowEngine(ScoringEngine(model, _copies(histories),
                                       exclude_seen=True), delay_s=0.25)
    with ServingGateway(engine, max_batch=1, max_wait_ms=1.0, cache_size=0,
                        max_queue=2) as gateway:
        futures, shed = [], []
        for user in range(8):
            try:
                futures.append(gateway.submit(user % NUM_USERS, 3))
            except GatewayOverloadedError as error:
                shed.append(error)
        assert shed, "burst of 8 never tripped the max_queue=2 watermark"
        assert all(error.retry_after_s > 0 for error in shed)
        for future in futures:
            assert len(future.result()) > 0  # admitted requests complete
        stats = gateway.stats()
        assert stats.shed == len(shed) and stats.shed >= 1
        assert gateway.health()["max_queue"] == 2


def test_gateway_shed_retry_hint_is_usable_before_first_batch():
    """Cold-start shedding must not hint "retry in ~0 seconds".

    Before any batch completes the service-time EWMA is unseeded; with
    ``max_wait_ms=0`` the hint used to collapse to the 1 ms floor, and a
    well-behaved client retrying on it would hammer a gateway that is
    already saturated.  The hint is now floored at the cold-start
    constant until a real measurement exists.
    """
    from repro.serving.gateway import _COLD_START_RETRY_S

    model, histories = _workload()
    engine = _SlowEngine(ScoringEngine(model, _copies(histories),
                                       exclude_seen=True), delay_s=0.25)
    with ServingGateway(engine, max_batch=1, max_wait_ms=0.0, cache_size=0,
                        max_queue=1) as gateway:
        shed = []
        for user in range(6):  # saturate before the first batch returns
            try:
                gateway.submit(user % NUM_USERS, 3)
            except GatewayOverloadedError as error:
                shed.append(error)
        assert shed, "burst of 6 never tripped the max_queue=1 watermark"
        assert all(error.retry_after_s >= _COLD_START_RETRY_S
                   for error in shed)


def test_gateway_expires_queued_requests_at_their_deadline():
    model, histories = _workload()
    engine = _SlowEngine(ScoringEngine(model, _copies(histories),
                                       exclude_seen=True), delay_s=0.3)
    with ServingGateway(engine, max_batch=1, max_wait_ms=1.0,
                        cache_size=0) as gateway:
        blocker = gateway.submit(0, 3)  # occupies the flusher ~0.3 s
        doomed = gateway.submit(1, 3, timeout=0.05)  # expires while queued
        with pytest.raises(TimeoutError, match="deadline expired"):
            doomed.result()
        assert len(blocker.result()) > 0
        # The expiry poisoned nothing: a later request serves fine.
        assert len(gateway.submit(2, 3).result()) > 0
        assert gateway.stats().expired == 1


def test_gateway_propagates_deadline_into_sharded_engine():
    model, histories = _workload()
    shard0_users, shard1_users = _shard_users()
    plan = FaultPlan.stall_worker(shard=0, at_request=1)
    engine = _sharded(model, histories, fault_plan=plan)
    try:
        assert engine.supports_deadlines
        with ServingGateway(engine, max_batch=4, max_wait_ms=1.0,
                            cache_size=0, request_timeout_s=0.5) as gateway:
            doomed = gateway.submit(int(shard0_users[0]), 3)
            with pytest.raises(TimeoutError):
                doomed.result()
            # Shard 1 is untouched by the stall: its users still serve.
            assert len(gateway.submit(int(shard1_users[0]), 3).result()) > 0
            assert gateway.stats().expired >= 1
            assert gateway.health()["engine"]["mode"] == "sharded"
    finally:
        engine.close()
