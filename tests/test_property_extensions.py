"""Property-based tests (hypothesis) for the extension modules.

Invariants checked:

* ranking losses are non-negative where mathematically guaranteed, and
  every loss decreases when the positive score is raised;
* list metrics are bounded in [0, 1] and monotone in k where applicable;
* the Gini coefficient is scale-invariant and bounded;
* pooling over a single real position returns that position's embedding;
* early stopping never stops before ``patience`` evaluations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.evaluation.coverage import gini_coefficient
from repro.evaluation.metrics import mrr_at_k, ndcg_at_k, precision_at_k, recall_at_k
from repro.training.early_stopping import EarlyStopping
from repro.training.losses import LOSS_FUNCTIONS

finite_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


@st.composite
def score_pairs(draw):
    """Positive scores (B, T) and negative scores (B, T, N)."""
    batch = draw(st.integers(1, 4))
    targets = draw(st.integers(1, 3))
    negatives = draw(st.integers(1, 4))
    positive = draw(st.lists(finite_floats, min_size=batch * targets,
                             max_size=batch * targets))
    negative = draw(st.lists(finite_floats, min_size=batch * targets * negatives,
                             max_size=batch * targets * negatives))
    return (np.asarray(positive).reshape(batch, targets),
            np.asarray(negative).reshape(batch, targets, negatives))


class TestLossProperties:
    @settings(max_examples=40, deadline=None)
    @given(score_pairs(), st.sampled_from(sorted(LOSS_FUNCTIONS)))
    def test_losses_finite_and_nonnegative_where_guaranteed(self, pair, name):
        positives, negatives = pair
        loss = float(LOSS_FUNCTIONS[name](Tensor(positives), Tensor(negatives)).data)
        assert np.isfinite(loss)
        if name in ("bpr", "top1", "top1_max", "sampled_softmax", "hinge"):
            # These are sums/means of non-negative per-pair terms.
            assert loss >= -1e-9

    @settings(max_examples=40, deadline=None)
    @given(score_pairs(), st.sampled_from(sorted(LOSS_FUNCTIONS)))
    def test_raising_positive_scores_never_increases_loss(self, pair, name):
        positives, negatives = pair
        loss_fn = LOSS_FUNCTIONS[name]
        before = float(loss_fn(Tensor(positives), Tensor(negatives)).data)
        after = float(loss_fn(Tensor(positives + 2.0), Tensor(negatives)).data)
        assert after <= before + 1e-9


class TestMetricProperties:
    ranked_lists = st.lists(st.integers(0, 30), min_size=1, max_size=15, unique=True)
    truths = st.lists(st.integers(0, 30), min_size=1, max_size=10, unique=True)
    ks = st.integers(1, 15)

    @settings(max_examples=60, deadline=None)
    @given(ranked_lists, truths, ks)
    def test_metrics_bounded(self, recommended, truth, k):
        for metric in (recall_at_k, ndcg_at_k, precision_at_k, mrr_at_k):
            value = metric(recommended, truth, k)
            assert 0.0 <= value <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(ranked_lists, truths, ks)
    def test_recall_and_mrr_monotone_in_k(self, recommended, truth, k):
        assert recall_at_k(recommended, truth, k + 1) >= recall_at_k(recommended, truth, k)
        assert mrr_at_k(recommended, truth, k + 1) >= mrr_at_k(recommended, truth, k)

    @settings(max_examples=60, deadline=None)
    @given(truths, ks)
    def test_perfect_ranking_scores_one(self, truth, k):
        effective = min(k, len(truth))
        assert recall_at_k(truth, truth, len(truth)) == 1.0
        assert ndcg_at_k(truth, truth, k) == 1.0 if effective else True
        assert mrr_at_k(truth, truth, k) == 1.0


class TestGiniProperties:
    counts = st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                      min_size=2, max_size=50)

    @settings(max_examples=60, deadline=None)
    @given(counts)
    def test_bounded(self, values):
        gini = gini_coefficient(np.asarray(values))
        assert -1e-9 <= gini <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(counts, st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
    def test_scale_invariant(self, values, factor):
        array = np.asarray(values)
        assert abs(gini_coefficient(array) - gini_coefficient(array * factor)) < 1e-9


class TestEarlyStoppingProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=1, max_size=30),
           st.integers(1, 5))
    def test_never_stops_before_patience_evaluations(self, scores, patience):
        stopper = EarlyStopping(patience=patience)
        for index, score in enumerate(scores, start=1):
            stopped = stopper.update(score)
            if stopped:
                assert index > patience
                break

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=2, max_size=30))
    def test_strictly_increasing_scores_never_stop(self, scores):
        increasing = np.cumsum(np.abs(scores) + 1e-3)
        stopper = EarlyStopping(patience=1)
        assert not any(stopper.update(float(score)) for score in increasing)
