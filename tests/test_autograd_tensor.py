"""Unit tests for the core Tensor autodiff engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.numeric import gradient_check


def make(shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestBasicOps:
    def test_add_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        (x + y).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])
        assert np.allclose(y.grad, [1.0, 1.0])

    def test_mul_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        (x * y).sum().backward()
        assert np.allclose(x.grad, [3.0, 4.0])
        assert np.allclose(y.grad, [1.0, 2.0])

    def test_sub_and_div(self):
        x = Tensor([4.0, 9.0], requires_grad=True)
        y = Tensor([2.0, 3.0], requires_grad=True)
        ((x - y) / y).sum().backward()
        assert np.allclose(x.grad, [0.5, 1.0 / 3.0])
        # d/dy [(x-y)/y] = -x / y^2
        assert np.allclose(y.grad, [-1.0, -1.0])

    def test_pow(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x ** 3).sum().backward()
        assert np.allclose(x.grad, [12.0, 27.0])

    def test_neg(self):
        x = Tensor([1.0, -2.0], requires_grad=True)
        (-x).sum().backward()
        assert np.allclose(x.grad, [-1.0, -1.0])

    def test_scalar_broadcasting(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        (x * 2.0 + 1.0).sum().backward()
        assert np.allclose(x.grad, np.full((2, 2), 2.0))

    def test_broadcast_row_vector(self):
        x = make((3, 4), seed=1)
        b = make((4,), seed=2)
        gradient_check(lambda: (Tensor(x.data, requires_grad=False) + b).sum()
                       if False else (x + b).sum(), [x, b])

    def test_grad_accumulates_when_reused(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x * 3.0
        y.sum().backward()
        assert np.allclose(x.grad, [2 * 2.0 + 3.0])


class TestUnaryOps:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "sigmoid", "tanh", "relu", "abs"])
    def test_gradcheck_unary(self, op):
        rng = np.random.default_rng(3)
        data = rng.uniform(0.5, 2.0, size=(3, 3))
        x = Tensor(data, requires_grad=True)
        gradient_check(lambda: getattr(x, op)().sum(), [x])

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self):
        x = make((2, 3), seed=4)
        gradient_check(lambda: x.sum(axis=0).sum(), [x])
        x.zero_grad()
        gradient_check(lambda: x.sum(axis=1, keepdims=True).sum(), [x])

    def test_mean_value_and_grad(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        m = x.mean()
        assert np.isclose(m.item(), 2.5)
        m.backward()
        assert np.allclose(x.grad, np.full((2, 2), 0.25))

    def test_mean_axis(self):
        x = make((4, 5), seed=5)
        gradient_check(lambda: x.mean(axis=1).sum(), [x])

    def test_max_axis_routes_gradient_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0, 1, 0], [1, 0, 0]])

    def test_max_ties_split_gradient(self):
        x = Tensor([[2.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])

    def test_min(self):
        x = Tensor([[3.0, 1.0, 2.0]], requires_grad=True)
        value = x.min(axis=1)
        assert np.isclose(value.data[0], 1.0)
        value.sum().backward()
        assert np.allclose(x.grad, [[0, 1, 0]])


class TestMatmulAndShapes:
    def test_matmul_2d_gradcheck(self):
        a = make((3, 4), seed=6)
        b = make((4, 2), seed=7)
        gradient_check(lambda: a.matmul(b).sum(), [a, b])

    def test_matmul_batched_gradcheck(self):
        a = make((2, 3, 4), seed=8)
        b = make((2, 4, 5), seed=9)
        gradient_check(lambda: a.matmul(b).sum(), [a, b])

    def test_matmul_broadcast_weight(self):
        a = make((2, 3, 4), seed=10)
        w = make((4, 5), seed=11)
        gradient_check(lambda: a.matmul(w).sum(), [a, w])

    def test_transpose_roundtrip(self):
        x = make((2, 3), seed=12)
        gradient_check(lambda: x.T.matmul(x).sum(), [x])

    def test_reshape(self):
        x = make((2, 6), seed=13)
        gradient_check(lambda: x.reshape(3, 4).sum(axis=0).sum(), [x])

    def test_expand_and_squeeze(self):
        x = make((3, 4), seed=14)
        y = x.expand_dims(1)
        assert y.shape == (3, 1, 4)
        assert y.squeeze(1).shape == (3, 4)
        gradient_check(lambda: x.expand_dims(0).squeeze(0).sum(), [x])

    def test_getitem(self):
        x = make((5, 3), seed=15)
        gradient_check(lambda: x[1:4].sum(), [x])

    def test_take_rows_scatter_adds(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = weight.take_rows(np.array([[0, 1], [1, 1]]))
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # row 0 used once, row 1 used three times, rows 2-3 unused
        assert np.allclose(weight.grad[:, 0], [1.0, 3.0, 0.0, 0.0])

    def test_take_rows_gradcheck(self):
        weight = make((6, 4), seed=16)
        idx = np.array([0, 2, 2, 5])
        gradient_check(lambda: (weight.take_rows(idx) ** 2).sum(), [weight])

    def test_concatenate(self):
        a = make((2, 3), seed=17)
        b = make((2, 2), seed=18)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        gradient_check(lambda: Tensor.concatenate([a, b], axis=1).sum(), [a, b])

    def test_stack(self):
        a = make((2, 3), seed=19)
        b = make((2, 3), seed=20)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)
        gradient_check(lambda: (Tensor.stack([a, b], axis=1) ** 2).sum(), [a, b])


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_diamond_graph_gradient(self):
        # z = (x*y) + (x+y); dz/dx = y + 1, dz/dy = x + 1
        x = Tensor([3.0], requires_grad=True)
        y = Tensor([5.0], requires_grad=True)
        ((x * y) + (x + y)).sum().backward()
        assert np.allclose(x.grad, [6.0])
        assert np.allclose(y.grad, [4.0])

    def test_deep_chain(self):
        x = Tensor([1.5], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.01
        y.sum().backward()
        assert np.allclose(x.grad, [1.01 ** 50], rtol=1e-10)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_non_differentiable_comparisons(self):
        x = Tensor([1.0, -1.0], requires_grad=True)
        mask = x > 0
        assert isinstance(mask, np.ndarray)
        assert mask.tolist() == [True, False]

    def test_factories(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4
        assert Tensor.randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)

    def test_item_and_len_and_repr(self):
        x = Tensor([[1.0, 2.0]])
        assert len(x) == 1
        assert "shape=(1, 2)" in repr(x)
        assert Tensor([3.0]).item() == 3.0
