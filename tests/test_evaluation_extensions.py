"""Tests for the evaluation extensions: extra list metrics, beyond-accuracy
statistics, bootstrap/Wilcoxon uncertainty and the sampled-negative
protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import InteractionDataset
from repro.data.splits import split_setting
from repro.evaluation import (
    RankingEvaluator,
    SampledRankingEvaluator,
    average_recommendation_popularity,
    beyond_accuracy_report,
    bootstrap_confidence_interval,
    bootstrap_improvement_test,
    catalogue_coverage,
    gini_coefficient,
    mrr_at_k,
    novelty,
    precision_at_k,
    wilcoxon_improvement_test,
)
from repro.models import Popularity, create_model

NUM_ITEMS = 30


def tiny_split(num_users: int = 15, seed: int = 0):
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(12, 20)).tolist()
        for _ in range(num_users)
    ]
    dataset = InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)
    return split_setting(dataset, "80-20-CUT")


class TestListMetrics:
    def test_precision_counts_hits_over_k(self):
        assert precision_at_k([1, 2, 3, 4], [2, 4, 9], k=4) == pytest.approx(0.5)

    def test_precision_empty_truth(self):
        assert precision_at_k([1, 2], [], k=2) == 0.0

    def test_mrr_first_hit_position(self):
        assert mrr_at_k([7, 3, 5], [5], k=3) == pytest.approx(1.0 / 3.0)
        assert mrr_at_k([5, 3, 7], [5], k=3) == pytest.approx(1.0)

    def test_mrr_no_hit(self):
        assert mrr_at_k([1, 2, 3], [9], k=3) == 0.0

    def test_mrr_respects_cutoff(self):
        assert mrr_at_k([1, 2, 3, 9], [9], k=3) == 0.0


class TestBeyondAccuracy:
    def test_coverage_counts_unique_items(self):
        recommendations = np.array([[0, 1], [1, 2]])
        assert catalogue_coverage(recommendations, num_items=10) == pytest.approx(0.3)

    def test_gini_uniform_is_zero(self):
        assert gini_coefficient(np.ones(10)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_is_high(self):
        exposure = np.zeros(100)
        exposure[0] = 1000.0
        assert gini_coefficient(exposure) > 0.95

    def test_gini_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_average_popularity(self):
        frequencies = np.array([10.0, 2.0, 0.0])
        recommendations = np.array([[0, 1]])
        assert average_recommendation_popularity(recommendations, frequencies) == pytest.approx(6.0)

    def test_novelty_prefers_rare_items(self):
        frequencies = np.array([100.0, 1.0])
        popular = novelty(np.array([[0]]), frequencies)
        rare = novelty(np.array([[1]]), frequencies)
        assert rare > popular

    def test_popularity_model_report_is_maximally_concentrated(self):
        split = tiny_split()
        model = Popularity(split.num_users, NUM_ITEMS).fit_counts(split.train_plus_valid())
        report = beyond_accuracy_report(model, split, k=5)
        assert 0.0 < report.coverage <= 1.0
        assert report.num_users == len(split.users_with_test_items())
        # POP recommends from a single global ranking (modulo the per-user
        # exclusion of seen items), so exposure is highly concentrated.
        assert report.gini > 0.5
        assert set(report.as_row()) == {"coverage", "gini", "avg_popularity", "novelty"}

    def test_personalized_model_covers_more_than_popularity(self):
        split = tiny_split()
        pop = Popularity(split.num_users, NUM_ITEMS).fit_counts(split.train_plus_valid())
        ham = create_model("HAMm", split.num_users, NUM_ITEMS,
                           rng=np.random.default_rng(0), embedding_dim=8, n_h=4, n_l=2)
        pop_report = beyond_accuracy_report(pop, split, k=5)
        ham_report = beyond_accuracy_report(ham, split, k=5)
        # An untrained personalized model recommends near-randomly, which
        # spreads exposure across far more of the catalogue than POP.
        assert ham_report.coverage >= pop_report.coverage
        assert ham_report.gini <= pop_report.gini


class TestConfidence:
    def test_bootstrap_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(0, 1, size=200)
        interval = bootstrap_confidence_interval(scores, rng=np.random.default_rng(1))
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.contains(scores.mean())
        assert 0 < interval.width < 0.2

    def test_bootstrap_interval_narrows_with_more_users(self):
        rng = np.random.default_rng(0)
        small = bootstrap_confidence_interval(rng.uniform(0, 1, size=50),
                                              rng=np.random.default_rng(1))
        large = bootstrap_confidence_interval(rng.uniform(0, 1, size=5000),
                                              rng=np.random.default_rng(1))
        assert large.width < small.width

    def test_bootstrap_improvement_detects_clear_gap(self):
        rng = np.random.default_rng(2)
        baseline = rng.uniform(0, 1, size=300)
        better = baseline + 0.2
        interval = bootstrap_improvement_test(better, baseline, rng=np.random.default_rng(3))
        assert interval.lower > 0.0

    def test_bootstrap_improvement_no_gap_includes_zero(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, size=300)
        b = np.array(a)
        rng.shuffle(b)
        interval = bootstrap_improvement_test(a, b, rng=np.random.default_rng(5))
        assert interval.contains(0.0)

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.array([1.0]))
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.arange(10.0), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.arange(10.0), num_resamples=10)

    def test_wilcoxon_detects_consistent_improvement(self):
        rng = np.random.default_rng(6)
        baseline = rng.uniform(0, 1, size=100)
        better = baseline + rng.uniform(0.01, 0.1, size=100)
        p_value, significant = wilcoxon_improvement_test(better, baseline)
        assert significant and p_value < 0.05

    def test_wilcoxon_identical_scores_not_significant(self):
        scores = np.linspace(0, 1, 50)
        p_value, significant = wilcoxon_improvement_test(scores, scores.copy())
        assert not significant and p_value == 1.0

    def test_wilcoxon_shape_mismatch(self):
        with pytest.raises(ValueError):
            wilcoxon_improvement_test(np.arange(5.0), np.arange(6.0))


class TestSampledEvaluator:
    def test_perfect_model_gets_perfect_hit_rate(self):
        split = tiny_split()

        class Oracle(Popularity):
            """Scores each user's first test item highest."""

            def __init__(self, split):
                super().__init__(split.num_users, NUM_ITEMS)
                self._fitted = True
                self._split = split

            def score_all(self, users, inputs):
                scores = np.zeros((len(users), self.num_items))
                for row, user in enumerate(np.asarray(users)):
                    test_items = self._split.test[int(user)]
                    if test_items:
                        scores[row, test_items[0]] = 100.0
                return scores

        evaluator = SampledRankingEvaluator(split, ks=(5,), num_negatives=20,
                                            max_test_items_per_user=1, seed=0)
        result = evaluator.evaluate(Oracle(split))
        assert result.metrics["HitRate@5"] == pytest.approx(1.0)
        assert result.metrics["MRR"] == pytest.approx(1.0)

    def test_sampled_protocol_is_more_optimistic_than_full_ranking(self):
        split = tiny_split()
        model = Popularity(split.num_users, NUM_ITEMS).fit_counts(split.train_plus_valid())
        full = RankingEvaluator(split, ks=(10,)).evaluate(model)
        sampled = SampledRankingEvaluator(split, ks=(10,), num_negatives=20,
                                          seed=0).evaluate(model)
        # Ranking against 20 negatives is a strictly easier task than
        # ranking against the whole catalogue.
        assert sampled.metrics["NDCG@10"] >= full.metrics["NDCG@10"]

    def test_instance_cap(self):
        split = tiny_split()
        capped = SampledRankingEvaluator(split, max_test_items_per_user=1)
        uncapped = SampledRankingEvaluator(split)
        assert len(capped._instances()) <= len(uncapped._instances())
        assert len(capped._instances()) == len(split.users_with_test_items())

    def test_validation(self):
        split = tiny_split()
        with pytest.raises(ValueError):
            SampledRankingEvaluator(split, ks=())
        with pytest.raises(ValueError):
            SampledRankingEvaluator(split, num_negatives=0)
        with pytest.raises(ValueError):
            SampledRankingEvaluator(split, max_test_items_per_user=0)

    def test_deterministic_given_seed(self):
        split = tiny_split()
        model = Popularity(split.num_users, NUM_ITEMS).fit_counts(split.train_plus_valid())
        first = SampledRankingEvaluator(split, seed=3).evaluate(model)
        second = SampledRankingEvaluator(split, seed=3).evaluate(model)
        assert first.metrics == second.metrics
