"""Tests for the on-disk dataset loaders.

The loaders parse the original public-dataset file formats (MovieLens
``.dat``/``.csv``, Amazon ratings CSV, Goodreads interactions CSV, a
generic text format) and push the rows through the paper's preprocessing
protocol.  Each test writes a small synthetic raw file and checks the
parsed dataset.
"""

from __future__ import annotations

import pytest

from repro.data.loaders import (
    load_amazon_ratings,
    load_dataset_file,
    load_generic,
    load_goodreads_interactions,
    load_movielens,
)
from repro.data.preprocess import PreprocessConfig

#: Permissive protocol so the tiny handwritten files survive filtering.
LENIENT = PreprocessConfig(min_interactions_per_user=2, min_interactions_per_item=1,
                           positive_rating_threshold=4.0)


def write(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestMovieLens:
    def test_dat_format(self, tmp_path):
        path = write(tmp_path / "ratings.dat", [
            "1::10::5::100",
            "1::11::4::200",
            "1::12::2::300",     # below the 4-star threshold -> dropped
            "2::10::5::100",
            "2::12::5::150",
        ])
        dataset = load_movielens(path, name="ml-unit", config=LENIENT)
        assert dataset.name == "ml-unit"
        assert dataset.num_users == 2
        # user 1 keeps items 10, 11; user 2 keeps 10, 12.
        assert dataset.num_interactions == 4

    def test_dat_orders_by_timestamp(self, tmp_path):
        path = write(tmp_path / "ratings.dat", [
            "1::20::5::300",
            "1::10::5::100",
            "1::30::5::200",
        ])
        dataset = load_movielens(path, config=LENIENT)
        sequence = dataset.sequence(0)
        # first-seen remapping: 20 -> 0, 10 -> 1, 30 -> 2; chronological
        # order by timestamp is 10, 30, 20.
        assert sequence == [1, 2, 0]

    def test_csv_format_with_header(self, tmp_path):
        path = write(tmp_path / "ratings.csv", [
            "userId,movieId,rating,timestamp",
            "1,10,5.0,100",
            "1,11,4.5,200",
            "2,10,4.0,50",
            "2,11,5.0,60",
        ])
        dataset = load_movielens(path, config=LENIENT)
        assert dataset.num_users == 2
        assert dataset.num_interactions == 4

    def test_malformed_lines_skipped(self, tmp_path):
        path = write(tmp_path / "ratings.dat", [
            "1::10::5::100",
            "garbage line",
            "1::11::5::200",
        ])
        dataset = load_movielens(path, config=LENIENT)
        assert dataset.num_interactions == 2


class TestAmazon:
    def test_ratings_csv(self, tmp_path):
        path = write(tmp_path / "amazon_cds.csv", [
            "user,item,rating,timestamp",      # header silently skipped
            "A,X,5.0,1",
            "A,Y,4.0,2",
            "B,X,5.0,1",
            "B,Z,3.0,2",                        # below threshold -> dropped
            "B,Y,5.0,3",
        ])
        dataset = load_amazon_ratings(path, config=LENIENT)
        assert dataset.num_users == 2
        assert dataset.num_interactions == 4


class TestGoodreads:
    def test_header_resolved_by_name(self, tmp_path):
        path = write(tmp_path / "goodreads_children.csv", [
            "rating,user_id,book_id",
            "5,u1,b1",
            "4,u1,b2",
            "5,u2,b1",
            "4,u2,b2",
        ])
        dataset = load_goodreads_interactions(path, config=LENIENT)
        assert dataset.num_users == 2
        assert dataset.num_items == 2

    def test_implicit_config_keeps_low_ratings(self, tmp_path):
        path = write(tmp_path / "goodreads.csv", [
            "user_id,book_id,rating",
            "u1,b1,1",
            "u1,b2,2",
            "u2,b1,1",
            "u2,b2,2",
        ])
        implicit = PreprocessConfig(min_interactions_per_user=2,
                                    min_interactions_per_item=1, implicit=True)
        dataset = load_goodreads_interactions(path, config=implicit)
        assert dataset.num_interactions == 4

    def test_empty_file(self, tmp_path):
        path = write(tmp_path / "goodreads.csv", ["user_id,book_id,rating"])
        dataset = load_goodreads_interactions(path, config=LENIENT)
        assert dataset.num_users == 0


class TestGeneric:
    def test_whitespace_and_comments(self, tmp_path):
        path = write(tmp_path / "interactions.txt", [
            "# user item rating timestamp",
            "u1 i1 5 10",
            "u1 i2 5 20",
            "u2 i1 5 5",
            "u2 i2 5 6",
            "",
        ])
        dataset = load_generic(path, config=LENIENT)
        assert dataset.num_users == 2
        assert dataset.num_interactions == 4

    def test_missing_rating_defaults_positive(self, tmp_path):
        path = write(tmp_path / "pairs.txt", [
            "u1 i1",
            "u1 i2",
        ])
        dataset = load_generic(path, config=LENIENT)
        assert dataset.num_interactions == 2

    def test_comma_separated(self, tmp_path):
        path = write(tmp_path / "pairs.txt", [
            "u1,i1,5,1",
            "u1,i2,5,2",
        ])
        dataset = load_generic(path, config=LENIENT)
        assert dataset.sequence(0) == [0, 1]


class TestDispatch:
    def test_dispatch_by_filename(self, tmp_path):
        movielens = write(tmp_path / "ml-1m-ratings.dat", ["1::10::5::1", "1::11::5::2"])
        goodreads = write(tmp_path / "goodreads_comics.csv",
                          ["user_id,book_id,rating", "u1,b1,5", "u1,b2,5"])
        amazon = write(tmp_path / "amazon_books.csv", ["A,X,5,1", "A,Y,5,2"])
        generic = write(tmp_path / "anything.txt", ["u1 i1 5 1", "u1 i2 5 2"])

        for path in (movielens, goodreads, amazon, generic):
            dataset = load_dataset_file(path, config=LENIENT)
            assert dataset.num_interactions == 2
            assert dataset.name == path.stem

    def test_name_override(self, tmp_path):
        path = write(tmp_path / "anything.txt", ["u1 i1 5 1", "u1 i2 5 2"])
        assert load_dataset_file(path, name="custom", config=LENIENT).name == "custom"


class TestPaperProtocolDefaults:
    def test_default_protocol_filters_sparse_users(self, tmp_path):
        # With the paper's defaults (>=10 per user) a 3-interaction user is
        # dropped entirely.
        lines = [f"u1 i{j} 5 {j}" for j in range(12)] + ["u2 i0 5 1", "u2 i1 5 2", "u2 i2 5 3"]
        path = write(tmp_path / "pairs.txt", lines)
        dataset = load_generic(path)        # default PreprocessConfig
        assert dataset.num_users in (0, 1)  # u2 never survives
        if dataset.num_users == 1:
            assert len(dataset.sequence(0)) >= 10
