"""Tests for the experimental-setting splits and sliding-window instances."""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    InteractionDataset,
    build_training_instances,
    leave_n_out,
    split_cut,
    split_setting,
)
from repro.data.windows import pad_id_for


def dataset_with_lengths(lengths, num_items=50, seed=0):
    rng = np.random.default_rng(seed)
    sequences = [list(rng.integers(0, num_items, size=length)) for length in lengths]
    return InteractionDataset(sequences, num_items, name="toy")


class TestSplitCut:
    def test_80_20_cut_proportions(self):
        ds = dataset_with_lengths([20, 30, 10])
        split = split_cut(ds)
        assert split.setting == "80-20-CUT"
        for user, length in enumerate([20, 30, 10]):
            assert len(split.train[user]) == pytest.approx(0.7 * length, abs=1)
            assert len(split.valid[user]) == pytest.approx(0.1 * length, abs=1)
            total = len(split.train[user]) + len(split.valid[user]) + len(split.test[user])
            assert total == length

    def test_80_3_cut_limits_test_items(self):
        ds = dataset_with_lengths([40, 15])
        split = split_cut(ds, test_items=3)
        assert split.setting == "80-3-CUT"
        assert all(len(test) <= 3 for test in split.test)

    def test_cut_preserves_order(self):
        ds = InteractionDataset([list(range(20))], num_items=20)
        split = split_cut(ds)
        recombined = split.train[0] + split.valid[0] + split.test[0]
        assert recombined == list(range(20))

    def test_80_20_and_80_3_share_train_and_valid(self):
        ds = dataset_with_lengths([25, 37, 44], seed=3)
        split_full = split_cut(ds)
        split_three = split_cut(ds, test_items=3)
        assert split_full.train == split_three.train
        assert split_full.valid == split_three.valid

    def test_every_user_keeps_at_least_one_training_item(self):
        ds = dataset_with_lengths([10, 10])
        split = split_cut(ds)
        assert all(len(train) >= 1 for train in split.train)

    def test_invalid_fractions(self):
        ds = dataset_with_lengths([10])
        with pytest.raises(ValueError):
            split_cut(ds, train_fraction=0.0)
        with pytest.raises(ValueError):
            split_cut(ds, train_fraction=0.9, valid_fraction=0.2)
        with pytest.raises(ValueError):
            split_cut(ds, test_items=0)


class TestLeaveNOut:
    def test_last_three_items_are_test(self):
        ds = InteractionDataset([list(range(12))], num_items=12)
        split = leave_n_out(ds)
        assert split.test[0] == [9, 10, 11]
        assert split.valid[0] == [6, 7, 8]
        assert split.train[0] == list(range(6))

    def test_short_user_keeps_training_item(self):
        ds = InteractionDataset([[0, 1, 2, 3]], num_items=4)
        split = leave_n_out(ds)
        assert len(split.train[0]) >= 1
        assert split.test[0] == [1, 2, 3]

    def test_setting_label(self):
        ds = dataset_with_lengths([15])
        assert leave_n_out(ds).setting == "3-LOS"

    def test_invalid_args(self):
        ds = dataset_with_lengths([15])
        with pytest.raises(ValueError):
            leave_n_out(ds, test_items=0)


class TestSplitSetting:
    @pytest.mark.parametrize("setting", ["80-20-CUT", "80-3-CUT", "3-LOS"])
    def test_dispatch(self, setting):
        ds = dataset_with_lengths([30, 20])
        split = split_setting(ds, setting)
        assert split.setting == setting
        assert split.num_users == 2

    def test_unknown_setting(self):
        with pytest.raises(ValueError):
            split_setting(dataset_with_lengths([10]), "50-50")

    def test_train_plus_valid(self):
        ds = dataset_with_lengths([30])
        split = split_setting(ds, "80-20-CUT")
        combined = split.train_plus_valid()
        assert combined[0] == split.train[0] + split.valid[0]
        assert split.train_plus_valid_dataset().num_interactions == len(combined[0])
        assert split.train_dataset().num_interactions == len(split.train[0])

    def test_users_with_test_items(self):
        ds = InteractionDataset([[0, 1], list(range(20))], num_items=20)
        split = split_setting(ds, "80-20-CUT")
        evaluable = split.users_with_test_items()
        assert 1 in evaluable


class TestSlidingWindows:
    def test_window_contents(self):
        instances = build_training_instances([[1, 2, 3, 4, 5, 6]], num_items=10, n_h=3, n_p=2)
        # windows: [1,2,3]->[4,5], [2,3,4]->[5,6]
        assert len(instances) == 2
        assert instances.inputs.tolist() == [[1, 2, 3], [2, 3, 4]]
        assert instances.targets.tolist() == [[4, 5], [5, 6]]
        assert instances.users.tolist() == [0, 0]

    def test_short_sequence_left_padded(self):
        instances = build_training_instances([[7, 8, 9]], num_items=10, n_h=4, n_p=2)
        pad = pad_id_for(10)
        assert len(instances) == 1
        assert instances.inputs.tolist() == [[pad, pad, pad, 7]]
        assert instances.targets.tolist() == [[8, 9]]
        assert instances.input_mask().sum() == 1
        assert instances.target_mask().all()

    def test_single_item_user_skipped(self):
        instances = build_training_instances([[5]], num_items=10, n_h=3, n_p=2)
        assert len(instances) == 0

    def test_counts_across_users(self):
        sequences = [list(range(10)), list(range(8))]
        instances = build_training_instances(sequences, num_items=20, n_h=4, n_p=2)
        # user 0: 10-6+1 = 5 windows, user 1: 8-6+1 = 3 windows
        assert len(instances) == 8
        assert (instances.users == 0).sum() == 5
        assert instances.n_h == 4 and instances.n_p == 2

    def test_target_padding_for_short_targets(self):
        instances = build_training_instances([[1, 2]], num_items=10, n_h=3, n_p=3)
        pad = pad_id_for(10)
        assert instances.targets.tolist() == [[2, pad, pad]]

    def test_shuffled_preserves_rows(self):
        instances = build_training_instances([list(range(12))], num_items=20, n_h=3, n_p=2)
        shuffled = instances.shuffled(np.random.default_rng(0))
        original = {tuple(row) for row in instances.inputs.tolist()}
        permuted = {tuple(row) for row in shuffled.inputs.tolist()}
        assert original == permuted

    def test_invalid_window_sizes(self):
        with pytest.raises(ValueError):
            build_training_instances([[1, 2, 3]], num_items=5, n_h=0, n_p=1)

    def test_empty_input(self):
        instances = build_training_instances([], num_items=5, n_h=2, n_p=1)
        assert len(instances) == 0


class TestBatchIterator:
    def test_batches_cover_all_instances(self):
        instances = build_training_instances([list(range(30))], num_items=40, n_h=4, n_p=2)
        iterator = BatchIterator(instances, batch_size=7, rng=np.random.default_rng(1))
        seen = 0
        for batch in iterator:
            assert len(batch) <= 7
            seen += len(batch)
        assert seen == len(instances)
        assert len(iterator) == (len(instances) + 6) // 7

    def test_unshuffled_order(self):
        instances = build_training_instances([list(range(10))], num_items=20, n_h=3, n_p=1)
        iterator = BatchIterator(instances, batch_size=100, shuffle=False)
        batch = next(iter(iterator))
        assert batch.inputs.tolist() == instances.inputs.tolist()
        assert batch.input_mask().all()
        assert batch.target_mask().all()

    def test_invalid_batch_size(self):
        instances = build_training_instances([[1, 2, 3]], num_items=5, n_h=2, n_p=1)
        with pytest.raises(ValueError):
            BatchIterator(instances, batch_size=0)
