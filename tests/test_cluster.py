"""Network chaos suite: the cluster tier under injected socket faults.

Drives :mod:`repro.cluster` through the scenarios ``docs/cluster.md``
promises, all deterministic and single-core safe:

* protocol framing — bit-exact array round-trips, garbled-frame and
  short-read detection before any large allocation;
* node serving — ``EngineNode`` parity with the serial engine over TCP
  and Unix sockets, graceful drain (verb and SIGTERM), health/stats;
* snapshot hand-off — ``from_peer`` bootstrap carrying live ``observe``
  state, zero-copy same-host ``from_arena`` attach;
* routing — ``ClusterRouter`` failover across replicas under SIGKILL,
  dropped connections, garbled replies, partitions and stalls; retry
  budgets that respect the caller's deadline; stale-reply dropping;
  observe replication with epoch-fenced replay after a node rejoin;
* the gateway front — ``ServingGateway.over_cluster`` batching over
  the wire unchanged;
* seed stability — the shared ``fault_rng`` stream family and the
  user→range hash pinned to golden values.

Select with ``pytest -m chaos_net`` or ``make chaos-net``.  Every test
runs under the hard SIGALRM timeout installed by ``conftest.py``.
"""

from __future__ import annotations

import gc
import os
import socket
import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    ConnectionClosed,
    EngineNode,
    NetFaultPlan,
    ProtocolError,
    encode_frame,
    engine_from_snapshot_payload,
    recv_frame,
    request_reply,
    send_frame,
    serialize_engine_snapshot,
    spawn_node,
    user_range,
)
from repro.cluster.faults import _NET_STREAM, GARBLED_REPLY
from repro.cluster.router import _ranges_of
from repro.models import create_model
from repro.parallel.faults import fault_rng
from repro.parallel.shm import SHM_PREFIX, SharedArena
from repro.serving import ScoringEngine, ServingGateway

pytestmark = pytest.mark.chaos_net

NUM_USERS = 12
NUM_ITEMS = 40
ALL_USERS = np.arange(NUM_USERS, dtype=np.int64)


def _shm_entries() -> set[str]:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith(SHM_PREFIX)}


@pytest.fixture(autouse=True)
def shm_guard():
    """Every scenario must leave /dev/shm exactly as it found it."""
    before = _shm_entries()
    yield
    gc.collect()
    leaked = _shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _workload(seed: int = 0):
    """Small untrained model + histories (parity needs no training)."""
    rng = np.random.default_rng(seed)
    model = create_model("HAMs_m", NUM_USERS, NUM_ITEMS,
                         rng=np.random.default_rng(1),
                         embedding_dim=8, n_h=4, n_l=2)
    model.eval()
    histories = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(8, 14)).tolist()
        for _ in range(NUM_USERS)
    ]
    return model, histories


def _serial_engine(model, histories) -> ScoringEngine:
    return ScoringEngine(model, histories, exclude_seen=True, precompute=True)


def _in_process_nodes(model, histories, n_nodes=2, tmp_path=None,
                      fault_plans=None, **node_kwargs):
    """``n_nodes`` thread-served EngineNodes over one workload."""
    nodes = []
    for index in range(n_nodes):
        engine = _serial_engine(model, histories)
        bind = (f"unix:{tmp_path}/node{index}.sock"
                if tmp_path is not None else "127.0.0.1:0")
        plan = fault_plans[index] if fault_plans else None
        nodes.append(EngineNode(engine, bind=bind, own_engine=True,
                                fault_plan=plan, node_index=index,
                                **node_kwargs))
    return nodes


# ---------------------------------------------------------------------- #
# Protocol framing
# ---------------------------------------------------------------------- #
def test_frame_roundtrip_is_bit_exact():
    left, right = socket.socketpair()
    try:
        arrays = {
            "scores": np.random.default_rng(0).normal(size=(3, 7)),
            "users": np.arange(5, dtype=np.int64),
            "flags": np.array([1, 0, 1], dtype=np.uint8),
        }
        send_frame(left, "top_k", {"k": 3, "rid": 9}, arrays)
        frame = recv_frame(right)
    finally:
        left.close()
        right.close()
    assert frame.kind == "top_k"
    assert frame.meta == {"k": 3, "rid": 9}
    for name, value in arrays.items():
        got = frame.array(name)
        assert got.dtype == value.dtype and got.shape == value.shape
        assert np.array_equal(got, value)
        assert got.flags.owndata or got.base is None  # safe to keep


def test_recv_frame_rejects_garbage_before_allocating():
    # Wrong magic (the canonical garbled reply).
    left, right = socket.socketpair()
    try:
        left.sendall(GARBLED_REPLY)
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()
    # An absurd length prefix must not be trusted.
    left, right = socket.socketpair()
    try:
        left.sendall((1 << 31).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()
    # Peer death mid-frame is a connection error, not a parse error.
    left, right = socket.socketpair()
    try:
        left.sendall(encode_frame("ping", {})[:7])
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)
    finally:
        right.close()


def test_snapshot_payload_rebuilds_bit_identical_engine():
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    meta, arrays = serialize_engine_snapshot(model, histories)
    # Survive an actual framing round-trip, as from_peer does.
    left, right = socket.socketpair()
    try:
        send_frame(left, "ok", meta, arrays)
        frame = recv_frame(right)
    finally:
        left.close()
        right.close()
    rebuilt = engine_from_snapshot_payload(frame.meta, frame.arrays)
    assert np.array_equal(rebuilt.top_k(ALL_USERS, 5),
                          serial.top_k(ALL_USERS, 5))
    assert np.array_equal(rebuilt.masked_scores(ALL_USERS),
                          serial.masked_scores(ALL_USERS))


# ---------------------------------------------------------------------- #
# Seed stability (golden values)
# ---------------------------------------------------------------------- #
def test_fault_rng_schedule_is_stable_across_runs():
    """The shared fault stream family is pinned to golden draws.

    Both the shard-worker injector (``(seed, shard, incarnation)``) and
    the network injector (``(seed, _NET_STREAM, node, connection)``)
    derive their schedules from ``fault_rng``; these literals lock the
    schedule across runs, platforms and refactors.
    """
    golden = {
        (7, 0, 0): [0.625095466604667, 0.8972138009695755,
                    0.7756856902451935],
        (7, 0, 1): [0.8331748283767769, 0.4843365712551232,
                    0.7256603335850057],
        (7, 1, 0): [0.7701409510034741, 0.1119272443176843,
                    0.18909773329712753],
        (11, 3, 2): [0.5809013835840022, 0.21937447207599847,
                     0.5066789119596135],
        (7, _NET_STREAM, 0, 0): [0.8478337519102058, 0.6145184497935583,
                                 0.8724792852325858],
    }
    for key, expected in golden.items():
        draws = fault_rng(*key).uniform(size=3)
        np.testing.assert_allclose(draws, expected, rtol=0, atol=0)
    # Distinct coordinates yield distinct streams (no accidental reuse).
    assert not np.array_equal(fault_rng(7, 0, 0).uniform(size=3),
                              fault_rng(7, 0, 1).uniform(size=3))


def test_user_range_hash_is_stable_and_vectorized():
    golden = {0: 0, 1: 5, 2: 6, 3: 4, 1000: 1, 123456789: 1}
    for user, expected in golden.items():
        assert user_range(user, 7) == expected
    users = np.array(sorted(golden), dtype=np.int64)
    assert np.array_equal(_ranges_of(users, 7),
                          [golden[int(user)] for user in users])
    spread = {user_range(user, 4) for user in range(NUM_USERS)}
    assert len(spread) > 1, "contiguous ids collapsed onto one range"


# ---------------------------------------------------------------------- #
# EngineNode serving
# ---------------------------------------------------------------------- #
def test_engine_node_parity_over_tcp_and_unix(tmp_path):
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    expected = serial.top_k(ALL_USERS, 5)
    for bind in ("127.0.0.1:0", f"unix:{tmp_path}/node.sock"):
        engine = _serial_engine(model, histories)
        with EngineNode(engine, bind=bind, own_engine=True) as node:
            hello = request_reply(node.address, "hello")
            assert hello.meta["num_users"] == NUM_USERS
            assert hello.meta["epoch"] == node.epoch
            ranked = request_reply(node.address, "top_k", {"k": 5},
                                   {"users": ALL_USERS}).array("ranked")
            scores = request_reply(node.address, "score_all", {},
                                   {"users": ALL_USERS}).array("scores")
            health = request_reply(node.address, "health").meta["health"]
        assert np.array_equal(ranked, expected)
        assert np.array_equal(scores, serial.score_all(ALL_USERS))
        assert health["healthy"] is True


def test_engine_node_drain_verb_refuses_new_work():
    model, histories = _workload()
    with EngineNode(_serial_engine(model, histories),
                    own_engine=True) as node:
        reply = request_reply(node.address, "drain")
        assert reply.meta["draining"] is True
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not node._closed:
            time.sleep(0.02)
        assert node._closed, "drain verb never completed"
        with pytest.raises((ConnectionError, OSError)):
            request_reply(node.address, "ping", timeout_s=1.0)


def test_from_peer_snapshot_carries_observes():
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    donor = _serial_engine(model, histories)
    with EngineNode(donor, own_engine=True) as node:
        for user, item in [(0, 3), (5, 17), (0, 21)]:
            request_reply(node.address, "observe",
                          {"user": user, "item": item})
            serial.observe(user, item)
        with EngineNode.from_peer(node.address) as clone:
            ranked = request_reply(clone.address, "top_k", {"k": 5},
                                   {"users": ALL_USERS}).array("ranked")
    assert np.array_equal(ranked, serial.top_k(ALL_USERS, 5))


def test_from_arena_serves_zero_copy_snapshot():
    from repro.data.seen import SeenIndex
    from repro.data.windows import pad_histories, pad_id_for

    model, histories = _workload()
    serial = _serial_engine(model, histories)
    inputs = pad_histories(histories, model.input_length,
                           pad_id_for(NUM_ITEMS),
                           users=np.arange(NUM_USERS, dtype=np.int64))
    seen = SeenIndex.from_histories(histories, NUM_ITEMS)
    frozen = model.freeze(copy=True)
    arrays = {"inputs": inputs, "seen_indptr": seen.indptr,
              "seen_items": seen.items,
              "candidates": frozen.candidate_embeddings}
    if frozen.item_bias is not None:
        arrays["item_bias"] = frozen.item_bias
    arena = SharedArena.publish(arrays, writable_keys={"inputs"})
    try:
        with EngineNode.from_arena(model, arena.layout) as node:
            ranked = request_reply(node.address, "top_k", {"k": 5},
                                   {"users": ALL_USERS}).array("ranked")
        assert np.array_equal(ranked, serial.top_k(ALL_USERS, 5))
    finally:
        arena.close()


# ---------------------------------------------------------------------- #
# ClusterRouter: parity, observes, failover under injected faults
# ---------------------------------------------------------------------- #
def test_router_parity_and_observe_replication(tmp_path):
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _in_process_nodes(model, histories, tmp_path=tmp_path)
    try:
        with ClusterRouter([node.address for node in nodes],
                           heartbeat_interval_s=0.0) as router:
            assert (router.num_users, router.num_items) == (NUM_USERS,
                                                            NUM_ITEMS)
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            assert np.array_equal(router.masked_scores(ALL_USERS),
                                  serial.masked_scores(ALL_USERS))
            assert router.recommend_batch(ALL_USERS, k=3) == \
                serial.recommend_batch(ALL_USERS, k=3)

            # Observes replicate synchronously to every live replica.
            for user, item in [(2, 9), (2, 11), (7, 30)]:
                router.observe(user, item)
                serial.observe(user, item)
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            health = router.health()
            assert health["healthy"] is True
            assert health["observe_log_len"] == 3
            assert router.stats()["observes"] == 3
        # Replication means *either* node alone answers identically.
        for node in nodes:
            assert np.array_equal(
                node.engine.top_k(ALL_USERS, 5), serial.top_k(ALL_USERS, 5))
    finally:
        for node in nodes:
            node.close()


def test_router_fails_over_on_dropped_connection():
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    # Node 0 drops its first connection at the first request frame (the
    # TCP-reset shape of a crash); reconnects serve normally.
    nodes = _in_process_nodes(
        model, histories,
        fault_plans=[NetFaultPlan.drop_connection(node=0), None])
    try:
        with ClusterRouter([node.address for node in nodes],
                           heartbeat_interval_s=0.0,
                           backoff_base_s=0.01) as router:
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            stats = router.stats()
            assert stats["failovers"] >= 1
        assert nodes[0].stats()["faults_fired"]["drop"] == 1
    finally:
        for node in nodes:
            node.close()


def test_router_fails_over_on_garbled_reply():
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _in_process_nodes(
        model, histories,
        fault_plans=[NetFaultPlan.garble_reply(node=0), None])
    try:
        with ClusterRouter([node.address for node in nodes],
                           heartbeat_interval_s=0.0,
                           backoff_base_s=0.01) as router:
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            assert router.stats()["failovers"] >= 1
        assert nodes[0].stats()["faults_fired"]["garble"] == 1
    finally:
        for node in nodes:
            node.close()


def test_router_fails_over_on_partitioned_primary():
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _in_process_nodes(
        model, histories,
        fault_plans=[NetFaultPlan.partition(node=0), None])
    try:
        with ClusterRouter([node.address for node in nodes],
                           heartbeat_interval_s=0.0, connect_timeout_s=1.0,
                           backoff_base_s=0.01) as router:
            # Every range is served by node 1; answers stay identical.
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            router.observe(0, 13)
            serial.observe(0, 13)
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            health = router.health()
        assert health["healthy"] is True  # replicas cover every range
        assert not health["nodes"][0]["up"]
        assert nodes[0].stats()["connections_refused"] >= 1
    finally:
        for node in nodes:
            node.close()


def test_router_deadline_expires_on_stalled_cluster():
    """A wedged node cannot out-wait the caller: TimeoutError on budget.

    Replication 1 and a permanently stalled node leave no replica to
    fail over to — the deadline machinery must surface the timeout in
    bounded time instead of hanging on the silent connection.
    """
    model, histories = _workload()
    nodes = _in_process_nodes(
        model, histories, n_nodes=1,
        fault_plans=[NetFaultPlan.stall_node(node=0, at_request=2,
                                             every_connection=True)])
    try:
        with ClusterRouter([nodes[0].address], replication=1,
                           heartbeat_interval_s=0.0, io_timeout_s=0.2,
                           backoff_base_s=0.01) as router:
            start = time.monotonic()
            with pytest.raises(TimeoutError):
                router.top_k(ALL_USERS, 5, timeout=0.5)
            elapsed = time.monotonic() - start
            assert elapsed < 5.0, f"deadline overshot: {elapsed:.1f}s"
            assert router.stats()["deadline_timeouts"] == 1
    finally:
        for node in nodes:
            node.close()


def test_router_drops_stale_reply_after_timeout():
    """A late reply lands on the *next* call and is dropped by rid.

    The first request times out while the node sleeps on its reply; the
    connection is kept, so the delayed frame eventually arrives in
    front of the second request's reply and must be discarded, not
    delivered as the wrong answer.
    """
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _in_process_nodes(
        model, histories, n_nodes=1,
        fault_plans=[NetFaultPlan.delay_node(node=0, delay_s=0.4)])
    try:
        with ClusterRouter([nodes[0].address], replication=1,
                           heartbeat_interval_s=0.0,
                           backoff_base_s=0.01) as router:
            with pytest.raises(TimeoutError):
                router.top_k(ALL_USERS[:4], 5, timeout=0.15)
            ranked = router.top_k(ALL_USERS[:4], 5, timeout=30.0)
            assert np.array_equal(ranked, serial.top_k(ALL_USERS[:4], 5))
            assert router.stats()["stale_replies_dropped"] >= 1
    finally:
        for node in nodes:
            node.close()


def test_router_retry_never_exceeds_caller_deadline():
    model, histories = _workload()
    nodes = _in_process_nodes(model, histories)
    addresses = [node.address for node in nodes]
    router = ClusterRouter(addresses, heartbeat_interval_s=0.0,
                           backoff_base_s=0.01)
    try:
        for node in nodes:  # the whole cluster goes away
            node.close()
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            router.top_k(ALL_USERS, 5, timeout=0.4)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, f"retries overshot the deadline: {elapsed:.1f}s"
    finally:
        router.close()
        for node in nodes:
            node.close()


# ---------------------------------------------------------------------- #
# Real process death: SIGKILL failover, SIGTERM drain, epoch rejoin
# ---------------------------------------------------------------------- #
def test_sigkill_failover_and_epoch_fenced_rejoin(tmp_path):
    """The acceptance scenario: kill the primary, lose nothing.

    With a replica up and budget left, zero requests fail and every
    answer — including users whose history changed mid-outage — stays
    bit-identical.  A fresh process rejoining at the dead node's address
    is detected by its epoch and replayed the observe log from zero.
    """
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    binds = [f"unix:{tmp_path}/node{i}.sock" for i in range(2)]
    handles = [spawn_node(model, histories, bind=binds[i], node_index=i)
               for i in range(2)]
    router = ClusterRouter([handle.address for handle in handles],
                           heartbeat_interval_s=0.2, connect_timeout_s=2.0,
                           backoff_base_s=0.01)
    try:
        assert np.array_equal(router.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))

        handles[0].kill()  # SIGKILL: no drain, no goodbye
        assert not handles[0].alive()
        # Zero failed requests: the very next sweep must succeed.
        ranked = router.top_k(ALL_USERS, 5, timeout=30.0)
        assert np.array_equal(ranked, serial.top_k(ALL_USERS, 5))
        assert router.stats()["failovers"] >= 1

        # Observes during the outage land on the surviving replica.
        for user, item in [(1, 7), (4, 22)]:
            router.observe(user, item)
            serial.observe(user, item)
        assert np.array_equal(router.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))

        # Rejoin: a fresh process at the same address, booted from the
        # BASE snapshot (the rejoin contract) — the router must notice
        # the epoch change and replay the missed observes.
        handles[0] = spawn_node(model, histories, bind=binds[0],
                                node_index=0)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            stats = router.stats()
            if stats["rejoins_detected"] >= 1 and \
                    stats["observes_replayed"] >= 2:
                break
            time.sleep(0.05)
        stats = router.stats()
        assert stats["rejoins_detected"] >= 1, stats
        assert stats["observes_replayed"] >= 2, stats
        assert np.array_equal(router.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))
        # And the rejoined node answers for itself, observes included.
        ranked = request_reply(handles[0].address, "top_k", {"k": 5},
                               {"users": ALL_USERS}).array("ranked")
        assert np.array_equal(ranked, serial.top_k(ALL_USERS, 5))
    finally:
        router.close()
        for handle in handles:
            handle.close()


def test_sigterm_drains_node_process_cleanly(tmp_path):
    model, histories = _workload()
    handle = spawn_node(model, histories,
                        bind=f"unix:{tmp_path}/node.sock")
    try:
        reply = request_reply(handle.address, "ping")
        assert reply.meta["draining"] is False
        handle.terminate()  # SIGTERM → graceful drain → exit
        handle.join(timeout_s=30.0)
        assert not handle.alive()
        assert handle.process.exitcode == 0, (
            f"drain exited with {handle.process.exitcode}")
    finally:
        handle.close()


# ---------------------------------------------------------------------- #
# Gateway front
# ---------------------------------------------------------------------- #
def test_gateway_over_cluster_batches_unchanged(tmp_path):
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    expected = serial.top_k(ALL_USERS, 4)
    nodes = _in_process_nodes(model, histories, tmp_path=tmp_path)
    try:
        with ServingGateway.over_cluster(
                [node.address for node in nodes],
                heartbeat_interval_s=0.0, max_batch=8, max_wait_ms=5.0,
                cache_size=0) as gateway:
            futures = [gateway.submit(int(user), 4) for user in ALL_USERS]
            rows = [future.result(timeout=60.0) for future in futures]
            stats = gateway.stats()
        assert np.array_equal(np.stack(rows), expected)
        assert stats.batches >= 1
    finally:
        for node in nodes:
            node.close()
