"""Tests of the two-stage ANN retrieval tier (:mod:`repro.retrieval`).

Pins the contracts the candidate-generation stage is built on:

* ``mode="exact"`` (and the default) stays bit-identical to the
  pre-ANN ``top_k`` — the approximate path is strictly opt-in;
* ANN candidate sets are deterministic for a fixed seed, across shard
  worker counts and across a ``SharedArena`` publish/attach round-trip;
* candidate sets are prefix-nested in ``n_probe``, so measured recall@k
  is monotone non-decreasing in the probe dial;
* the PQ reconstruction error bounds the ADC score error
  (Cauchy–Schwarz: ``|q.x - q.x_hat| <= |q| * |x - x_hat|``);
* the serialized layout (header bytes, dtypes, shapes, arena
  alignment) is golden-pinned so the transport format cannot drift;
* tiny catalogues fall back to the LSH index, and quota-starved rows
  fall back to exact scoring.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.cluster.protocol import (engine_from_snapshot_payload,
                                    serialize_engine_snapshot)
from repro.data.dataset import InteractionDataset
from repro.data.splits import split_setting
from repro.evaluation.ranking import top_k_items
from repro.models import create_model
from repro.parallel import SharedArena, default_start_method
from repro.parallel.shm import SHM_PREFIX
from repro.parallel.sharded import make_scoring_engine
from repro.retrieval import (ANN_KIND_LSH, ANN_KIND_PQ, ANN_MAGIC, ANN_PREFIX,
                             ANNIndex, HEADER_STRUCT, RetrievalConfig)
from repro.retrieval.bench import synthetic_catalogue
from repro.serving import ScoringEngine
from repro.training import Trainer, TrainingConfig

pytestmark = pytest.mark.fast

NUM_ITEMS = 30


def _shm_entries() -> set[str]:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith(SHM_PREFIX)}


@pytest.fixture(autouse=True)
def shm_guard():
    """Every test must leave /dev/shm exactly as it found it."""
    before = _shm_entries()
    yield
    gc.collect()
    leaked = _shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def tiny_split(num_users: int = 14, seed: int = 0):
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(12, 18)).tolist()
        for _ in range(num_users)
    ]
    dataset = InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)
    return split_setting(dataset, "80-3-CUT")


def trained_model(split, name: str = "HAMs_m", epochs: int = 2):
    model = create_model(name, split.num_users, NUM_ITEMS,
                         rng=np.random.default_rng(0),
                         embedding_dim=8, n_h=4, n_l=2)
    Trainer(model, TrainingConfig(num_epochs=epochs, batch_size=64, seed=0)).fit(
        split.train_plus_valid())
    return model


def pq_fixture(num_items: int = 4096, dim: int = 16, seed: int = 7):
    """A PQ index over a clustered catalogue, plus the table and queries."""
    rng = np.random.default_rng(seed)
    table = synthetic_catalogue(rng, num_items, dim, n_clusters=40)
    config = RetrievalConfig(n_buckets=32, pq_subspaces=4, pq_centroids=16,
                             kmeans_iters=2, train_sample=1024, seed=0)
    queries = (table[rng.integers(0, num_items, size=16)]
               + 0.3 * rng.standard_normal((16, dim))).astype(np.float32)
    return ANNIndex.build(table, config), table, queries


# ---------------------------------------------------------------------- #
# Exact mode stays the pre-ANN engine
# ---------------------------------------------------------------------- #
def test_exact_mode_bit_identical_to_reference():
    split = tiny_split()
    model = trained_model(split)
    histories = split.train_plus_valid()
    engine = ScoringEngine(model, histories)
    users = np.arange(split.num_users, dtype=np.int64)

    # Independent reference: full scores, seen masked to -inf, stable
    # argpartition ranking — the pre-ANN top_k semantics.
    scores = np.array(engine.score_all(users), dtype=np.float64, copy=True)
    for row, user in enumerate(users):
        scores[row, np.asarray(sorted(set(histories[user])))] = -np.inf
    reference = top_k_items(scores, 5)

    default = engine.top_k(users, 5)
    exact = engine.top_k(users, 5, mode="exact")
    np.testing.assert_array_equal(default, reference)
    np.testing.assert_array_equal(exact, reference)

    # top_k_scored agrees with top_k and returns the true scores.
    ranked, ranked_scores = engine.top_k_scored(users, 5)
    np.testing.assert_array_equal(ranked, reference)
    rows = np.arange(users.size)[:, None]
    np.testing.assert_array_equal(ranked_scores, scores[rows, reference])
    engine.close()


def test_mode_validation_and_missing_index():
    split = tiny_split()
    engine = ScoringEngine(trained_model(split), split.train_plus_valid())
    users = np.array([0, 1], dtype=np.int64)
    with pytest.raises(ValueError):
        engine.top_k(users, 5, mode="fuzzy")
    with pytest.raises(RuntimeError):
        engine.top_k(users, 5, mode="ann")
    engine.close()


# ---------------------------------------------------------------------- #
# ANN mode on the engine (LSH fallback at this catalogue size)
# ---------------------------------------------------------------------- #
def test_ann_mode_on_engine_is_deterministic_and_valid():
    split = tiny_split()
    model = trained_model(split)
    histories = split.train_plus_valid()
    engine = ScoringEngine(model, histories)
    index = engine.build_ann_index()
    assert index.kind == "lsh"  # 30 items is far below min_pq_items
    users = np.arange(split.num_users, dtype=np.int64)

    first = engine.top_k(users, 5, mode="ann")
    second = engine.top_k(users, 5, mode="ann")
    np.testing.assert_array_equal(first, second)
    assert first.dtype == np.int64 and first.shape == (users.size, 5)
    assert ((first >= 0) & (first < NUM_ITEMS)).all()
    for row, user in enumerate(users):
        assert not set(first[row].tolist()) & set(histories[user]), (
            "ANN mode returned a seen item")

    # Probing every bucket makes the candidate set the whole catalogue
    # (or triggers the exact fallback) — either way: exact answers.
    everything = engine.top_k(users, 5, mode="ann", n_probe=index.n_buckets)
    np.testing.assert_array_equal(everything, engine.top_k(users, 5))
    engine.close()


def test_quota_starved_rows_fall_back_to_exact():
    split = tiny_split()
    engine = ScoringEngine(trained_model(split), split.train_plus_valid())
    engine.build_ann_index()
    users = np.arange(split.num_users, dtype=np.int64)
    # k = catalogue size with seen items excluded: no probe extension
    # can reach `width` unseen candidates, so every row must take the
    # exact-scoring fallback — and therefore match exact mode even in
    # the -inf (seen) tail.
    ann = engine.top_k(users, NUM_ITEMS, mode="ann")
    exact = engine.top_k(users, NUM_ITEMS)
    np.testing.assert_array_equal(ann, exact)
    engine.close()


# ---------------------------------------------------------------------- #
# Nesting and recall monotonicity (PQ path, clustered catalogue)
# ---------------------------------------------------------------------- #
def test_pq_candidate_sets_nest_and_recall_is_monotone():
    index, table, queries = pq_fixture()
    assert index.kind == "pq"
    k = 10
    exact = np.argsort(-(queries @ table.T), axis=1, kind="stable")[:, :k]

    recalls = []
    for n_probe in (1, 2, 4, 8, 16, 32):
        hits = 0
        for row in range(queries.shape[0]):
            candidates = index.candidates(queries[row], k, n_probe=n_probe)
            # Prefix nesting: the set at n_probe contains the set at
            # every smaller dial value.
            if n_probe > 1:
                smaller = index.candidates(queries[row], k,
                                           n_probe=n_probe // 2)
                assert set(smaller.tolist()) <= set(candidates.tolist())
            scores = table[candidates] @ queries[row]
            width = min(k, candidates.size)
            top = np.argpartition(-scores, width - 1)[:width] \
                if candidates.size > width else np.arange(candidates.size)
            ranked = candidates[top[np.argsort(-scores[top], kind="stable")]]
            hits += len(set(ranked.tolist()) & set(exact[row].tolist()))
        recalls.append(hits / (queries.shape[0] * k))

    assert recalls == sorted(recalls), (
        f"recall@{k} not monotone in n_probe: {recalls}")
    assert recalls[-1] >= 0.9

    # With the per-bucket quota lifted past the largest bucket, probing
    # every bucket makes each candidate set the whole catalogue — and
    # the exact re-rank recovers the exact top-k in full.
    largest = int(np.diff(index._arrays["bucket_indptr"]).max())
    multiplier = -(-largest // k)  # ceil: quota >= largest bucket
    for row in range(queries.shape[0]):
        candidates = index.candidates(queries[row], k, n_probe=32,
                                      candidate_multiplier=multiplier)
        scores = table[candidates] @ queries[row]
        top = np.argpartition(-scores, k - 1)[:k]
        ranked = candidates[top[np.argsort(-scores[top], kind="stable")]]
        assert set(ranked.tolist()) == set(exact[row].tolist())


def test_candidates_deterministic_for_fixed_seed():
    index_a, _, queries = pq_fixture()
    index_b, _, _ = pq_fixture()
    for row in range(queries.shape[0]):
        np.testing.assert_array_equal(
            index_a.candidates(queries[row], 10),
            index_b.candidates(queries[row], 10))


# ---------------------------------------------------------------------- #
# PQ reconstruction bounds the score error
# ---------------------------------------------------------------------- #
def test_reconstruction_error_bounds_score_error():
    index, table, queries = pq_fixture()
    items = np.arange(0, table.shape[0], 97, dtype=np.int64)
    approx = index.reconstruct(items)
    assert approx.shape == (items.size, table.shape[1])
    reconstruction_error = np.linalg.norm(
        table[items] - approx, axis=1).astype(np.float64)

    for row in range(queries.shape[0]):
        query = queries[row].astype(np.float64)
        exact_scores = table[items].astype(np.float64) @ query
        approx_scores = approx.astype(np.float64) @ query
        bound = np.linalg.norm(query) * reconstruction_error
        assert (np.abs(exact_scores - approx_scores) <= bound + 1e-6).all()

    # Residual quantization must actually compress: reconstructions land
    # much closer than the embedding scale.
    assert reconstruction_error.mean() < 0.5 * np.linalg.norm(
        table[items].astype(np.float64), axis=1).mean()


# ---------------------------------------------------------------------- #
# Determinism across worker counts and the arena round-trip
# ---------------------------------------------------------------------- #
def test_ann_answers_identical_across_worker_counts():
    split = tiny_split()
    model = trained_model(split)
    histories = split.train_plus_valid()
    users = np.arange(split.num_users, dtype=np.int64)
    config = RetrievalConfig(seed=0)

    results = []
    for n_workers in (1, 2, 3):
        engine = make_scoring_engine(model, histories, n_workers=n_workers,
                                     ann_config=config)
        try:
            results.append(engine.top_k(users, 5, mode="ann"))
        finally:
            engine.close()
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[0], results[2])


def _candidates_in_subprocess(layout, queries, queue):
    arena = SharedArena.attach(layout)
    try:
        arrays = {key: arena.array(key) for key in arena.keys()
                  if key.startswith(ANN_PREFIX)}
        index = ANNIndex.from_arrays(arrays)
        queue.put([index.candidates(query, 10).tolist() for query in queries])
    finally:
        arena.close()


def test_arena_publish_attach_round_trip_is_bit_identical():
    index, _, queries = pq_fixture()
    parent = [index.candidates(query, 10).tolist() for query in queries]

    arena = SharedArena.publish(index.to_arrays())
    try:
        # In-process attach: a second read-only mapping of the segment.
        attached = SharedArena.attach(arena.layout)
        try:
            arrays = {key: attached.array(key) for key in attached.keys()}
            rebuilt = ANNIndex.from_arrays(arrays)
            assert rebuilt.kind == index.kind
            assert [rebuilt.candidates(q, 10).tolist() for q in queries] == parent
        finally:
            attached.close()

        # Cross-process attach: the path the shard workers take.
        ctx = mp.get_context(default_start_method())
        queue = ctx.Queue()
        worker = ctx.Process(target=_candidates_in_subprocess,
                             args=(arena.layout, queries, queue))
        worker.start()
        child = queue.get(timeout=60)
        worker.join(timeout=60)
        assert child == parent
    finally:
        arena.close()


# ---------------------------------------------------------------------- #
# Golden serialized layout
# ---------------------------------------------------------------------- #
def test_golden_pq_layout():
    index, _, _ = pq_fixture()
    assert index.header_bytes().hex() == (
        "414e4e58010100000010000010000000200000000400000010000000"
        "0800000000000000")
    arrays = index.to_arrays()
    assert ANNIndex.array_keys(arrays) == [
        "ann_bucket_indptr", "ann_bucket_items", "ann_centroids",
        "ann_codebooks", "ann_codes", "ann_dials", "ann_header",
    ]
    expected = {
        "ann_header": (np.uint8, (HEADER_STRUCT.size,)),
        "ann_centroids": (np.float32, (32, 16)),
        "ann_bucket_indptr": (np.int64, (33,)),
        "ann_bucket_items": (np.int64, (4096,)),
        "ann_codebooks": (np.float32, (4, 16, 4)),
        "ann_codes": (np.uint8, (4096, 4)),
        "ann_dials": (np.int64, (2,)),
    }
    for key, (dtype, shape) in expected.items():
        assert arrays[key].dtype == dtype, key
        assert arrays[key].shape == shape, key
    assert arrays["ann_header"][:4].tobytes() == ANN_MAGIC
    assert int(arrays["ann_header"][5]) == ANN_KIND_PQ
    np.testing.assert_array_equal(arrays["ann_dials"], [8, 8])

    # Arena packing keeps every index array cache-line aligned.
    arena = SharedArena.publish(arrays)
    try:
        for key, spec in arena.layout.specs.items():
            assert spec.offset % 64 == 0, key
    finally:
        arena.close()


def test_golden_lsh_layout_and_fallback():
    rng = np.random.default_rng(7)
    table = rng.standard_normal((NUM_ITEMS, 8)).astype(np.float32)
    index = ANNIndex.build(table, RetrievalConfig(lsh_bits=4))
    assert index.kind == "lsh"  # below min_pq_items
    assert index.header_bytes().hex() == (
        "414e4e58010200001e0000000800000010000000080000000001000004000000"
        "00000000")
    arrays = index.to_arrays()
    assert ANNIndex.array_keys(arrays) == [
        "ann_bucket_indptr", "ann_bucket_items", "ann_dials", "ann_header",
        "ann_hyperplanes",
    ]
    assert arrays["ann_hyperplanes"].dtype == np.float32
    assert arrays["ann_hyperplanes"].shape == (4, 8)
    assert arrays["ann_bucket_indptr"].shape == (17,)
    assert int(arrays["ann_header"][5]) == ANN_KIND_LSH

    rebuilt = ANNIndex.from_arrays(arrays)
    assert rebuilt.kind == "lsh"
    query = table[3]
    np.testing.assert_array_equal(rebuilt.candidates(query, 5),
                                  index.candidates(query, 5))


def test_from_arrays_rejects_corrupt_headers():
    index, _, _ = pq_fixture()
    arrays = index.to_arrays()
    bad_magic = dict(arrays)
    bad_magic["ann_header"] = arrays["ann_header"].copy()
    bad_magic["ann_header"][0] = 0
    with pytest.raises(ValueError):
        ANNIndex.from_arrays(bad_magic)
    truncated = dict(arrays)
    truncated["ann_header"] = arrays["ann_header"][:10].copy()
    with pytest.raises(ValueError):
        ANNIndex.from_arrays(truncated)


# ---------------------------------------------------------------------- #
# Gateway ANN mode
# ---------------------------------------------------------------------- #
def test_gateway_ann_mode_matches_engine():
    from repro.serving import ServingGateway

    split = tiny_split()
    engine = ScoringEngine(trained_model(split), split.train_plus_valid())
    engine.build_ann_index()
    users = np.arange(split.num_users, dtype=np.int64)
    expected = engine.top_k(users, 5, mode="ann")

    with ServingGateway(engine, retrieval_mode="ann") as front:
        futures = [front.submit(int(user), 5) for user in users]
        batches = [future.recommendations() for future in futures]
    for row in range(users.size):
        assert [entry.item for entry in batches[row]] == expected[row].tolist()
    engine.close()


def test_gateway_rejects_bad_retrieval_mode():
    from repro.serving import ServingGateway

    split = tiny_split()
    engine = ScoringEngine(trained_model(split), split.train_plus_valid())
    with pytest.raises(ValueError):
        ServingGateway(engine, retrieval_mode="fuzzy")
    engine.close()


# ---------------------------------------------------------------------- #
# Cluster snapshot frames carry the index
# ---------------------------------------------------------------------- #
def test_snapshot_round_trip_ships_the_index():
    split = tiny_split()
    model = trained_model(split)
    histories = split.train_plus_valid()
    users = np.arange(split.num_users, dtype=np.int64)

    origin = ScoringEngine(model, histories)
    origin.attach_ann_index(ANNIndex.build(np.ascontiguousarray(
        origin._scorer().candidate_embeddings[:NUM_ITEMS])))

    meta, arrays = serialize_engine_snapshot(model, histories,
                                             ann_config=RetrievalConfig())
    assert meta["has_ann"] is True
    rebuilt = engine_from_snapshot_payload(meta, arrays)
    assert rebuilt.ann_index is not None
    np.testing.assert_array_equal(rebuilt.top_k(users, 5, mode="ann"),
                                  origin.top_k(users, 5, mode="ann"))
    np.testing.assert_array_equal(rebuilt.top_k(users, 5),
                                  origin.top_k(users, 5))
    rebuilt.close()
    origin.close()
