"""Tests for the BPR loss, negative sampling, trainer and grid search."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import InteractionDataset, split_setting
from repro.evaluation import RankingEvaluator
from repro.models import HAM, Popularity, create_model
from repro.training import (
    GridSearch,
    NegativeSampler,
    Trainer,
    TrainingConfig,
    bpr_loss,
    parameter_grid,
)


class TestBPRLoss:
    def test_zero_when_positive_much_larger(self):
        pos = Tensor(np.full((4, 2), 50.0))
        neg = Tensor(np.zeros((4, 2)))
        assert float(bpr_loss(pos, neg).data) == pytest.approx(0.0, abs=1e-6)

    def test_log_two_when_equal(self):
        pos = Tensor(np.zeros((3, 2)))
        neg = Tensor(np.zeros((3, 2)))
        assert float(bpr_loss(pos, neg).data) == pytest.approx(np.log(2.0))

    def test_mask_excludes_padded_targets(self):
        pos = Tensor(np.array([[10.0, -10.0]]))
        neg = Tensor(np.zeros((1, 2)))
        mask = np.array([[True, False]])
        # Only the first (well separated) pair counts.
        assert float(bpr_loss(pos, neg, mask).data) == pytest.approx(0.0, abs=1e-4)

    def test_gradient_direction(self):
        pos = Tensor(np.zeros((2, 1)), requires_grad=True)
        neg = Tensor(np.zeros((2, 1)), requires_grad=True)
        bpr_loss(pos, neg).backward()
        # Loss decreases when positive scores increase and negative decrease.
        assert np.all(pos.grad < 0)
        assert np.all(neg.grad > 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bpr_loss(Tensor(np.zeros((2, 2))), Tensor(np.zeros((2, 3))))
        with pytest.raises(ValueError):
            bpr_loss(Tensor(np.zeros((2, 2))), Tensor(np.zeros((2, 2))),
                     np.ones((3, 2), dtype=bool))


class TestNegativeSampler:
    def test_avoids_seen_items(self):
        sequences = [[0, 1, 2], [3, 4]]
        sampler = NegativeSampler(num_items=6, user_sequences=sequences,
                                  rng=np.random.default_rng(0))
        users = np.array([0, 0, 1])
        negatives = sampler.sample(users, (3, 4))
        assert negatives.shape == (3, 4)
        for row, user in enumerate(users):
            seen = set(sequences[user])
            assert not seen.intersection(negatives[row].tolist())

    def test_range(self):
        sampler = NegativeSampler(num_items=5, user_sequences=[[0]],
                                  rng=np.random.default_rng(1))
        negatives = sampler.sample(np.array([0] * 10), (10, 3))
        assert negatives.min() >= 0 and negatives.max() < 5

    def test_unknown_user_allowed(self):
        sampler = NegativeSampler(num_items=5, user_sequences=[[0]],
                                  rng=np.random.default_rng(2))
        assert sampler.seen_items(10) == set()
        negatives = sampler.sample(np.array([10]), (1, 2))
        assert negatives.shape == (1, 2)

    def test_saturated_user_falls_back(self):
        # User interacted with every item; after max_resample the sampler
        # must still return something rather than loop forever.
        sampler = NegativeSampler(num_items=3, user_sequences=[[0, 1, 2]],
                                  rng=np.random.default_rng(3), max_resample=5)
        negatives = sampler.sample(np.array([0]), (1, 2))
        assert negatives.shape == (1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            NegativeSampler(0, [[0]])
        with pytest.raises(ValueError):
            NegativeSampler(5, [[0]], max_resample=0)
        sampler = NegativeSampler(5, [[0]])
        with pytest.raises(ValueError):
            sampler.sample(np.array([0, 1]), (3, 2))


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.learning_rate == pytest.approx(1e-3)
        assert config.weight_decay == pytest.approx(1e-3)

    def test_with_overrides(self):
        config = TrainingConfig().with_overrides(num_epochs=5, batch_size=32)
        assert config.num_epochs == 5 and config.batch_size == 32

    @pytest.mark.parametrize("field,value", [
        ("num_epochs", 0), ("batch_size", 0), ("learning_rate", 0.0),
        ("weight_decay", -1.0), ("n_p", 0), ("eval_every", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            TrainingConfig(**{field: value})


def toy_training_data(num_users=30, num_items=20, length=15, seed=0):
    """Sequences with a strong first-order pattern: item (i+1) follows item i."""
    rng = np.random.default_rng(seed)
    sequences = []
    for _ in range(num_users):
        start = int(rng.integers(0, num_items))
        seq = [(start + offset) % num_items for offset in range(length)]
        sequences.append(seq)
    return sequences


class TestTrainer:
    def test_loss_decreases(self):
        sequences = toy_training_data()
        model = HAM(num_users=30, num_items=20, embedding_dim=16, n_h=3, n_l=1,
                    rng=np.random.default_rng(0))
        config = TrainingConfig(num_epochs=15, batch_size=64, seed=0)
        result = Trainer(model, config).fit(sequences)
        assert len(result.epoch_losses) == 15
        assert result.epoch_losses[-1] < result.epoch_losses[0]
        assert result.train_seconds > 0

    def test_validation_tracking_and_best_restore(self):
        sequences = toy_training_data(seed=1)
        model = HAM(num_users=30, num_items=20, embedding_dim=8, n_h=3, n_l=1,
                    rng=np.random.default_rng(1))
        calls = []

        def validation_fn(m):
            calls.append(1)
            return float(len(calls))  # strictly increasing -> last epoch is best

        config = TrainingConfig(num_epochs=6, eval_every=2, batch_size=64, seed=1)
        result = Trainer(model, config, validation_fn=validation_fn).fit(sequences)
        assert [epoch for epoch, _ in result.validation_history] == [2, 4, 6]
        assert result.best_epoch == 6
        assert result.best_validation == pytest.approx(3.0)

    def test_best_state_is_restored(self):
        sequences = toy_training_data(seed=2)
        model = HAM(num_users=30, num_items=20, embedding_dim=8, n_h=3, n_l=1,
                    rng=np.random.default_rng(2))
        snapshots = []

        def validation_fn(m):
            # Best score at the first validation; later epochs score worse.
            snapshots.append(m.user_embeddings.weight.data.copy())
            return 1.0 if len(snapshots) == 1 else 0.0

        config = TrainingConfig(num_epochs=4, eval_every=2, batch_size=64, seed=2)
        Trainer(model, config, validation_fn=validation_fn).fit(sequences)
        assert np.allclose(model.user_embeddings.weight.data, snapshots[0])

    def test_popularity_short_circuit(self):
        sequences = toy_training_data(seed=3)
        model = Popularity(num_users=30, num_items=20)
        result = Trainer(model, TrainingConfig(num_epochs=5)).fit(sequences)
        assert result.epoch_losses == []
        scores = model.score_all(np.array([0]), np.zeros((1, 5), dtype=np.int64))
        assert scores.shape == (1, 20)

    def test_empty_training_data_raises(self):
        model = HAM(num_users=5, num_items=10, embedding_dim=4,
                    rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            Trainer(model, TrainingConfig(num_epochs=1)).fit([[3]])

    def test_determinism_with_same_seed(self):
        sequences = toy_training_data(seed=4)
        def train_once():
            model = HAM(num_users=30, num_items=20, embedding_dim=8, n_h=3, n_l=1,
                        rng=np.random.default_rng(7))
            Trainer(model, TrainingConfig(num_epochs=3, batch_size=64, seed=7)).fit(sequences)
            return model.user_embeddings.weight.data.copy()
        assert np.allclose(train_once(), train_once())


class TestGridSearch:
    def test_parameter_grid_expansion(self):
        combos = list(parameter_grid({"a": [1, 2], "b": ["x", "y", "z"]}))
        assert len(combos) == 6
        assert {"a": 1, "b": "x"} in combos
        assert list(parameter_grid({})) == [{}]

    def test_finds_best(self):
        def objective(params):
            return -(params["x"] - 3) ** 2 - (params["y"] - 1) ** 2
        search = GridSearch({"x": [1, 2, 3, 4], "y": [0, 1, 2]}, objective)
        assert len(search) == 12
        result = search.run()
        assert result.best_params == {"x": 3, "y": 1}
        assert result.best_score == pytest.approx(0.0)
        assert len(result.trials) == 12

    def test_top_and_rows(self):
        result = GridSearch({"x": [1, 2, 3]}, lambda p: float(p["x"])).run()
        top = result.top(2)
        assert top[0][0] == {"x": 3}
        rows = result.as_rows()
        assert rows[0]["score"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSearch({}, lambda p: 0.0)
        with pytest.raises(ValueError):
            GridSearch({"x": []}, lambda p: 0.0)


class TestEndToEndLearning:
    """Integration: a trained HAM must beat popularity on structured data."""

    def test_ham_learns_sequential_pattern(self):
        num_items = 30
        sequences = toy_training_data(num_users=40, num_items=num_items, length=20, seed=5)
        dataset = InteractionDataset(sequences, num_items, name="pattern")
        split = split_setting(dataset, "80-3-CUT")

        evaluator = RankingEvaluator(split, ks=(5, 10), mode="test")

        ham = create_model("HAMm", num_users=dataset.num_users, num_items=num_items,
                           rng=np.random.default_rng(11), embedding_dim=16, n_h=3, n_l=1)
        config = TrainingConfig(num_epochs=25, batch_size=128, seed=11, n_p=2)
        Trainer(ham, config).fit(split.train_plus_valid())
        ham_result = evaluator.evaluate(ham)

        pop = Popularity(num_users=dataset.num_users, num_items=num_items)
        pop.fit_counts(split.train_plus_valid())
        pop_result = evaluator.evaluate(pop)

        # The data follow a deterministic successor pattern, so a sequential
        # model must clearly beat popularity.
        assert ham_result["Recall@5"] > pop_result["Recall@5"]
        assert ham_result["Recall@5"] > 0.3
