"""Tests of the one-shot benchmark regression pass (:mod:`repro.bench_all`).

``repro-ham bench-all`` must discover *every* persisted artifact and
route each through the guard that mirrors its pytest thresholds — a new
benchmark family that ships an artifact without registering a guard
shows up as ``unknown`` rather than silently passing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench_all import (GUARDS, discover_artifacts, run_all_guards,
                             run_guard)
from repro.bench_schema import write_bench_report

pytestmark = pytest.mark.fast

RESULTS_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "results"


def test_discovers_every_persisted_artifact():
    on_disk = sorted(RESULTS_DIR.glob("BENCH_*.json"))
    assert on_disk, "no benchmark artifacts checked in"
    assert discover_artifacts(RESULTS_DIR) == on_disk


def test_every_persisted_artifact_has_a_registered_guard():
    families = {path.stem[len("BENCH_"):]
                for path in discover_artifacts(RESULTS_DIR)}
    unguarded = families - set(GUARDS)
    assert not unguarded, (
        f"artifacts without a bench-all guard: {sorted(unguarded)}")


def test_checked_in_artifacts_pass_their_guards():
    results = run_all_guards(RESULTS_DIR)
    assert results
    failures = [result.line() for result in results
                if result.status != "pass"]
    assert not failures, "\n".join(failures)


def test_guard_fails_on_a_regressed_artifact(tmp_path):
    write_bench_report(tmp_path / "BENCH_serving.json", "serving",
                       {"speedup": 1.2}, headline={"speedup": 1.2})
    result = run_guard(tmp_path / "BENCH_serving.json")
    assert result.status == "fail"
    assert "regressed" in result.message


def test_guard_reports_unknown_families_and_unreadable_artifacts(tmp_path):
    write_bench_report(tmp_path / "BENCH_mystery.json", "mystery", {})
    unknown = run_guard(tmp_path / "BENCH_mystery.json")
    assert unknown.status == "unknown"

    (tmp_path / "BENCH_training.json").write_text(
        json.dumps({"schema_version": 1, "report": {}}), encoding="utf-8")
    broken = run_guard(tmp_path / "BENCH_training.json")
    assert broken.status == "fail"
    assert "unreadable" in broken.message


def test_single_core_artifacts_skip_speed_thresholds(tmp_path):
    write_bench_report(tmp_path / "BENCH_parallel.json", "parallel",
                       {"topk_bit_identical": True, "cpu_count": 1,
                        "eval_sweep_speedup": 0.5})
    result = run_guard(tmp_path / "BENCH_parallel.json")
    assert result.status == "pass"
    assert result.skipped and "eval_sweep_speedup" in result.skipped[0]


def test_empty_results_directory_yields_no_results(tmp_path):
    assert run_all_guards(tmp_path) == []
