"""Tests for the analysis modules (Tables 9-14, Figures 3-4) and the CLI."""

import numpy as np
import pytest

from repro.analysis import (
    gate_weight_distribution,
    improvement_summary,
    item_frequency_distribution,
    run_ablation_study,
    run_parameter_study,
    run_sasrec_sensitivity,
    runtime_comparison,
)
from repro.analysis.ablation import ABLATION_VARIANTS
from repro.analysis.attention_weights import FREQUENCY_BUCKETS
from repro.cli import build_parser, main
from repro.experiments.overall import clear_cache, run_overall_experiment


@pytest.fixture(scope="module")
def tiny_overall_results():
    """One shared tiny overall run reused by several analysis tests."""
    clear_cache()
    methods = ("Caser", "SASRec", "HGN", "HAMm", "HAMs_m")
    results = {
        "cds": run_overall_experiment("cds", "80-20-CUT", methods=methods,
                                      scale="tiny", epochs=2, seed=0),
    }
    yield results
    clear_cache()


class TestImprovementSummary:
    def test_structure(self, tiny_overall_results):
        summary = improvement_summary(tiny_overall_results,
                                      competitors=("Caser", "HGN", "HAMm"))
        assert set(summary) == {"Recall@5", "Recall@10", "NDCG@5", "NDCG@10"}
        for cells in summary.values():
            assert [cell.competitor for cell in cells] == ["Caser", "HGN", "HAMm"]
            for cell in cells:
                assert "cds" in cell.per_dataset
                assert isinstance(cell.as_cell(), str)

    def test_exclusions_validated(self, tiny_overall_results):
        with pytest.raises(ValueError):
            improvement_summary(tiny_overall_results, exclude_datasets=("cds",))


class TestRuntimeComparison:
    def test_rows_and_speedups(self, tiny_overall_results):
        rows = runtime_comparison(tiny_overall_results,
                                  methods=("Caser", "SASRec", "HGN", "HAMs_m"))
        assert len(rows) == 1
        row = rows[0]
        assert set(row.seconds_per_user) == {"Caser", "SASRec", "HGN", "HAMs_m"}
        assert all(value > 0 for value in row.seconds_per_user.values())
        assert row.speedup_over("Caser") > 0
        assert "speedup" in row.as_row()

    def test_reference_must_be_included(self, tiny_overall_results):
        with pytest.raises(ValueError):
            runtime_comparison(tiny_overall_results, methods=("Caser",), reference="HAMs_m")

    def test_ham_is_faster_than_deep_baselines(self, tiny_overall_results):
        # Qualitative claim of Table 14: pooling-based HAM scores faster than
        # the convolutional and attention baselines.  The authoritative check
        # lives in benchmarks/test_table14_runtime.py; at tiny scale and on a
        # possibly loaded CI machine this unit test only guards against gross
        # regressions (HAM becoming dramatically slower than the deep models).
        row = runtime_comparison(tiny_overall_results)[0]
        assert row.speedup_over("Caser") > 0.3
        assert row.speedup_over("SASRec") > 0.5


class TestAblation:
    def test_three_variants_evaluated(self):
        rows = run_ablation_study("cds", scale="tiny", epochs=2, seed=0)
        assert [row.variant for row in rows] == list(ABLATION_VARIANTS)
        for row in rows:
            assert 0.0 <= row.recall_at_5 <= 1.0
            as_row = row.as_row()
            assert as_row["dataset"] == "cds"
            assert "Recall@10" in as_row


class TestParameterStudy:
    def test_sweep_rows(self):
        sweep = {"n_l": [0, 2], "synergy_order": [1, 2]}
        rows = run_parameter_study("cds", sweep=sweep, scale="tiny", epochs=1, seed=0)
        assert len(rows) == 4
        parameters = {(row.parameter, row.value) for row in rows}
        assert ("n_l", 0) in parameters and ("synergy_order", 2) in parameters
        assert all(0.0 <= row.recall_at_10 <= 1.0 for row in rows)

    def test_n_h_sweep_respects_constraints(self):
        rows = run_parameter_study("cds", sweep={"n_h": [2]}, scale="tiny",
                                   epochs=1, seed=0)
        config = rows[0].config
        assert config["n_l"] <= 2
        assert config["synergy_order"] <= 2

    def test_n_p_is_training_parameter(self):
        rows = run_parameter_study("cds", sweep={"n_p": [2]}, scale="tiny",
                                   epochs=1, seed=0)
        assert rows[0].parameter == "n_p"
        assert "n_p" not in rows[0].config

    def test_sasrec_sensitivity(self):
        rows = run_sasrec_sensitivity(sweep={"num_heads": [1, 2]}, scale="tiny",
                                      epochs=1, seed=0)
        assert len(rows) == 2
        for row in rows:
            assert row.config["embedding_dim"] % row.value == 0


class TestFrequencyAnalysis:
    def test_distribution_sums_to_hundred(self):
        distributions = item_frequency_distribution(("cds", "ml-1m"), scale="tiny")
        assert len(distributions) == 2
        for distribution in distributions:
            assert distribution.item_percentages.sum() == pytest.approx(100.0)
            assert 0.0 <= distribution.infrequent_mass() <= 100.0
            assert len(distribution.as_rows()) == len(distribution.bin_centres)

    def test_sparse_dataset_has_more_infrequent_items(self):
        cds, ml1m = item_frequency_distribution(("cds", "ml-1m"), scale="small")
        # CDs (sparsest) should have at least as much mass in the infrequent
        # half as the dense ML-1M analogue — the Fig. 3 shape.
        assert cds.infrequent_mass() >= ml1m.infrequent_mass() - 5.0


class TestGateWeightAnalysis:
    def test_distribution_structure(self):
        distribution = gate_weight_distribution("cds", scale="tiny", epochs=2, seed=0)
        assert set(distribution.histograms) == set(FREQUENCY_BUCKETS)
        for histogram in distribution.histograms.values():
            assert histogram.sum() == pytest.approx(100.0, abs=1e-6) or histogram.sum() == 0.0
        rows = distribution.as_rows()
        assert len(rows) == len(FREQUENCY_BUCKETS)

    def test_infrequent_items_concentrate_near_half(self):
        # The paper's Fig. 4 observation: gates of infrequent items barely
        # move from their 0.5 initialization.
        distribution = gate_weight_distribution("cds", scale="tiny", epochs=2, seed=0)
        concentration = distribution.concentration_near_half("top 20% least frequent")
        assert concentration > 0.5


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["run", "table2"]).experiment == "table2"
        args = parser.parse_args(["train", "--dataset", "cds", "--method", "HAMm"])
        assert args.method == "HAMm"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output and "fig4" in output

    def test_stats_command(self, capsys):
        assert main(["stats", "--scale", "tiny"]) == 0
        assert "CDs" in capsys.readouterr().out

    def test_run_command_table2(self, capsys):
        assert main(["run", "table2", "--scale", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_train_command(self, capsys):
        assert main(["train", "--dataset", "cds", "--method", "HAMm",
                     "--setting", "80-3-CUT", "--scale", "tiny", "--epochs", "1"]) == 0
        output = capsys.readouterr().out
        assert "Recall@10" in output
