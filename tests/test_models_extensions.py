"""Tests for the extension baselines: NARM, STAMP, NextItRec and Fossil.

These models come from the paper's literature review (Section 2).  Every
test exercises a behaviour specific to the model's design (attention
masking, causality of the convolutions, personalization of the Markov
weights) on top of the shared interface contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Adam
from repro.models import NARM, STAMP, Fossil, NextItRec, create_model
from repro.training.bpr import bpr_loss

NUM_USERS = 10
NUM_ITEMS = 25
PAD = NUM_ITEMS
LENGTH = 6


def make_batch(seed: int = 0, pad_rows: bool = True):
    rng = np.random.default_rng(seed)
    users = np.arange(4, dtype=np.int64)
    inputs = rng.integers(0, NUM_ITEMS, size=(4, LENGTH)).astype(np.int64)
    if pad_rows:
        inputs[1, :3] = PAD
        inputs[2, :5] = PAD
    return users, inputs


def build(name: str, seed: int = 0, **kwargs):
    rng = np.random.default_rng(seed)
    defaults = {"embedding_dim": 8}
    if name != "Fossil":
        defaults["sequence_length"] = LENGTH
    else:
        defaults["markov_order"] = LENGTH
    defaults.update(kwargs)
    return create_model(name, NUM_USERS, NUM_ITEMS, rng=rng, **defaults)


class TestSharedContract:
    @pytest.mark.parametrize("name", ["NARM", "STAMP", "NextItRec", "Fossil"])
    def test_score_all_shape_and_finite(self, name):
        model = build(name)
        users, inputs = make_batch()
        scores = model.score_all(users, inputs)
        assert scores.shape == (4, NUM_ITEMS)
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize("name", ["NARM", "STAMP", "NextItRec", "Fossil"])
    def test_score_items_matches_score_all(self, name):
        model = build(name)
        model.eval()
        users, inputs = make_batch()
        items = np.array([[0, 5], [1, 6], [2, 7], [3, 8]])
        some = model.score_items(users, inputs, items).data
        full = model.score_all(users, inputs)
        for row in range(4):
            for column in range(2):
                assert some[row, column] == pytest.approx(full[row, items[row, column]])

    @pytest.mark.parametrize("name", ["NARM", "STAMP", "NextItRec", "Fossil"])
    def test_bpr_step_reduces_loss(self, name):
        model = build(name)
        users, inputs = make_batch(pad_rows=False)
        positives = np.array([[1], [2], [3], [4]])
        negatives = np.array([[11], [12], [13], [14]])
        optimizer = Adam(model.parameters(), lr=0.05)
        first_loss = None
        for _ in range(8):
            loss = bpr_loss(model.score_items(users, inputs, positives),
                            model.score_items(users, inputs, negatives))
            if first_loss is None:
                first_loss = float(loss.data)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            model.after_step()
        assert float(loss.data) < first_loss

    @pytest.mark.parametrize("name", ["NARM", "STAMP", "NextItRec", "Fossil"])
    def test_padding_row_stays_zero_after_step(self, name):
        model = build(name)
        users, inputs = make_batch()
        positives = np.array([[1], [2], [3], [4]])
        negatives = np.array([[11], [12], [13], [14]])
        optimizer = Adam(model.parameters(), lr=0.05)
        loss = bpr_loss(model.score_items(users, inputs, positives),
                        model.score_items(users, inputs, negatives))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        model.after_step()
        table = model.candidate_item_embeddings().data
        assert np.allclose(table[PAD], 0.0)

    @pytest.mark.parametrize("name", ["NARM", "STAMP", "NextItRec", "Fossil"])
    def test_deterministic_construction(self, name):
        first = build(name, seed=3)
        second = build(name, seed=3)
        users, inputs = make_batch()
        first.eval()
        second.eval()
        assert np.allclose(first.score_all(users, inputs), second.score_all(users, inputs))

    @pytest.mark.parametrize("name", ["NARM", "STAMP", "NextItRec", "Fossil"])
    def test_invalid_dimensions_rejected(self, name):
        with pytest.raises(ValueError):
            build(name, embedding_dim=0)


class TestNARM:
    def test_attention_weights_sum_to_one_over_real_positions(self):
        model = build("NARM")
        users, inputs = make_batch()
        weights = model.attention_weights(users, inputs)
        assert weights.shape == (4, LENGTH)
        for row in range(4):
            real = ~np.isnan(weights[row])
            assert np.nansum(weights[row]) == pytest.approx(1.0, abs=1e-6)
            assert real.sum() == (inputs[row] != PAD).sum()

    def test_padded_positions_do_not_change_representation(self):
        # Two inputs that differ only in the item id stored in a padded
        # slot must produce the same scores (NARM masks padded positions).
        model = build("NARM")
        model.eval()
        users = np.array([0])
        inputs_a = np.array([[PAD, PAD, 1, 2, 3, 4]])
        inputs_b = inputs_a.copy()
        scores_a = model.score_all(users, inputs_a)
        scores_b = model.score_all(users, inputs_b)
        assert np.allclose(scores_a, scores_b)

    def test_hidden_dim_override(self):
        model = NARM(NUM_USERS, NUM_ITEMS, embedding_dim=8, hidden_dim=12,
                     sequence_length=LENGTH, rng=np.random.default_rng(0))
        users, inputs = make_batch()
        assert model.score_all(users, inputs).shape == (4, NUM_ITEMS)


class TestSTAMP:
    def test_attention_weights_finite_and_masked(self):
        model = build("STAMP")
        users, inputs = make_batch()
        weights = model.attention_weights(users, inputs)
        real = ~np.isnan(weights)
        assert np.all(np.isfinite(weights[real]))
        assert np.isnan(weights[1, 0]) and np.isnan(weights[2, 0])
        # The mask exactly mirrors the padded positions.
        assert np.array_equal(real, inputs != PAD)

    def test_last_item_matters(self):
        # STAMP conditions on the most recent item explicitly; changing it
        # must change the scores.
        model = build("STAMP")
        model.eval()
        users = np.array([0])
        inputs_a = np.array([[1, 2, 3, 4, 5, 6]])
        inputs_b = np.array([[1, 2, 3, 4, 5, 7]])
        assert not np.allclose(model.score_all(users, inputs_a),
                               model.score_all(users, inputs_b))


class TestNextItRec:
    def test_causality(self):
        # The representation is read at the last position; it may depend
        # on every input position but the *receptive field* must be causal:
        # changing only the earliest item when the stack's receptive field
        # is shorter than the sequence leaves the output unchanged.
        rng = np.random.default_rng(1)
        model = NextItRec(NUM_USERS, NUM_ITEMS, embedding_dim=8,
                          sequence_length=8, dilations=(1,), rng=rng)
        model.eval()
        users = np.array([0])
        base = np.array([[1, 2, 3, 4, 5, 6, 7, 8]])
        changed = base.copy()
        changed[0, 0] = 9
        # receptive field of a single block with dilation 1 is 1+1+2 = 4
        # positions, so position 0 cannot reach the last position.
        assert np.allclose(model.score_all(users, base), model.score_all(users, changed))

    def test_recent_item_changes_output(self):
        model = build("NextItRec")
        model.eval()
        users = np.array([0])
        base = np.array([[1, 2, 3, 4, 5, 6]])
        changed = base.copy()
        changed[0, -1] = 9
        assert not np.allclose(model.score_all(users, base), model.score_all(users, changed))

    def test_requires_at_least_one_block(self):
        with pytest.raises(ValueError):
            NextItRec(NUM_USERS, NUM_ITEMS, embedding_dim=8, sequence_length=6,
                      dilations=(), rng=np.random.default_rng(0))


class TestFossil:
    def test_markov_weights_are_personalized(self):
        model = build("Fossil")
        weights = model.markov_weights(np.array([0, 1]))
        assert weights.shape == (2, LENGTH)
        assert not np.allclose(weights.data[0], weights.data[1])

    def test_user_changes_scores(self):
        model = build("Fossil")
        model.eval()
        inputs = np.array([[1, 2, 3, 4, 5, 6]])
        scores_user0 = model.score_all(np.array([0]), inputs)
        scores_user1 = model.score_all(np.array([1]), inputs)
        assert not np.allclose(scores_user0, scores_user1)

    def test_similarity_alpha_validation(self):
        with pytest.raises(ValueError):
            Fossil(NUM_USERS, NUM_ITEMS, embedding_dim=8, markov_order=3,
                   similarity_alpha=1.5, rng=np.random.default_rng(0))

    def test_item_bias_used_in_scores(self):
        model = build("Fossil")
        model.eval()
        users, inputs = make_batch()
        before = model.score_all(users, inputs)
        model.item_biases.data[3] += 10.0
        after = model.score_all(users, inputs)
        assert after[0, 3] - before[0, 3] == pytest.approx(10.0)
        assert after[0, 4] == pytest.approx(before[0, 4])
