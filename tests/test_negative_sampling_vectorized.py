"""Vectorized negative sampler: correctness and distributional parity.

Properties pinned down here:

* the vectorized sampler never emits a seen item whenever the user has
  at least one unseen item (the ``max_resample`` escape hatch only
  matters for pathological all-seen users);
* its marginal distribution over the unseen items matches the legacy
  per-element rejection sampler's (chi-squared test under a fixed seed);
* the shared :class:`~repro.data.seen.SeenIndex` answers batched
  membership exactly like per-user Python sets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.seen import SeenIndex
from repro.training import NegativeSampler

pytestmark = pytest.mark.fast


class TestSeenIndex:
    def test_matches_python_sets(self):
        rng = np.random.default_rng(0)
        histories = [rng.integers(0, 30, size=rng.integers(0, 25)).tolist()
                     for _ in range(20)]
        index = SeenIndex.from_histories(histories, 30)
        sets = [set(h) for h in histories]
        users = rng.integers(0, 20, size=500)
        items = rng.integers(0, 30, size=500)
        expected = np.array([items[i] in sets[users[i]] for i in range(500)])
        assert np.array_equal(index.contains(users, items), expected)

    def test_user_items_sorted_unique(self):
        index = SeenIndex.from_histories([[3, 1, 3, 2], [], [5]], 10)
        assert index.user_items(0).tolist() == [1, 2, 3]
        assert index.user_items(1).tolist() == []
        assert index.user_items(2).tolist() == [5]
        assert index.counts().tolist() == [3, 0, 1]
        assert index.total == 4

    def test_out_of_range_users_seen_nothing(self):
        index = SeenIndex.from_histories([[1, 2]], 10)
        assert not index.contains(np.array([5, -1]), np.array([1, 2])).any()

    def test_out_of_range_items_never_collide_with_next_user(self):
        # item id == num_items would alias user+1's item 0 in the key
        # encoding; the item guard must report it unseen instead.
        index = SeenIndex.from_histories([[5], [0]], 10)
        assert not index.contains(np.array([0, 0]), np.array([10, -1])).any()
        assert index.contains(np.array([1]), np.array([0])).all()

    def test_empty_index(self):
        index = SeenIndex.from_histories([], 10)
        assert index.total == 0
        assert not index.contains(np.array([0]), np.array([3])).any()

    def test_user_set(self):
        index = SeenIndex.from_histories([[4, 4, 9]], 10)
        assert index.user_set(0) == {4, 9}
        assert index.user_set(3) == set()


class TestVectorizedSampler:
    def test_never_emits_seen_items(self):
        rng = np.random.default_rng(1)
        num_items = 50
        # Dense histories (40 of 50 items seen) force many collisions;
        # the resample budget is sized so the accept-anyway escape hatch
        # (P ~ 0.8^queue) cannot fire.
        sequences = [rng.permutation(num_items)[:40].tolist() for _ in range(30)]
        sampler = NegativeSampler(num_items, sequences, max_resample=200,
                                  rng=np.random.default_rng(2), vectorized=True)
        users = np.arange(30)
        negatives = sampler.sample(users, (30, 8))
        assert negatives.shape == (30, 8)
        for row, user in enumerate(users):
            assert not set(negatives[row].tolist()) & set(sequences[user]), row

    def test_out_of_range_user_samples_freely(self):
        sampler = NegativeSampler(5, [[0]], rng=np.random.default_rng(3),
                                  vectorized=True)
        negatives = sampler.sample(np.array([7]), (1, 4))
        assert negatives.shape == (1, 4)
        assert negatives.min() >= 0 and negatives.max() < 5

    def test_all_seen_user_accepts_after_max_resample(self):
        sampler = NegativeSampler(4, [[0, 1, 2, 3]], rng=np.random.default_rng(4),
                                  vectorized=True, max_resample=3)
        negatives = sampler.sample(np.array([0]), (1, 6))
        assert negatives.shape == (1, 6)
        assert negatives.min() >= 0 and negatives.max() < 4

    def test_shape_validation(self):
        sampler = NegativeSampler(5, [[0]], vectorized=True)
        with pytest.raises(ValueError):
            sampler.sample(np.array([0]), (2, 3))

    def test_seen_items_api_matches_legacy(self):
        sequences = [[1, 4, 4], [2]]
        fast = NegativeSampler(6, sequences, vectorized=True)
        assert fast.seen_items(0) == {1, 4}
        assert fast.seen_items(1) == {2}
        assert fast.seen_items(99) == set()

    def test_deterministic_under_fixed_seed(self):
        sequences = [[0, 1], [2, 3]]

        def draw():
            sampler = NegativeSampler(20, sequences,
                                      rng=np.random.default_rng(5), vectorized=True)
            return sampler.sample(np.array([0, 1]), (2, 5))

        assert np.array_equal(draw(), draw())


class TestMarginalDistributionParity:
    def test_chi_squared_vs_legacy(self):
        """Both samplers draw uniformly over each user's unseen items."""
        num_items = 20
        sequences = [[0, 1, 2, 3, 4, 5, 6, 7]]  # 12 unseen items
        unseen = [item for item in range(num_items) if item not in set(sequences[0])]
        draws = 12_000
        users = np.zeros(draws // 4, dtype=np.int64)

        def marginal(vectorized, seed):
            sampler = NegativeSampler(num_items, sequences,
                                      rng=np.random.default_rng(seed),
                                      vectorized=vectorized)
            samples = sampler.sample(users, (len(users), 4)).reshape(-1)
            counts = np.bincount(samples, minlength=num_items)
            assert counts[sequences[0]].sum() == 0  # nothing seen emitted
            return counts[unseen]

        observed_fast = marginal(True, seed=6)
        observed_legacy = marginal(False, seed=7)

        expected = np.full(len(unseen), draws / len(unseen))
        # Chi-squared goodness of fit against the uniform-over-unseen
        # marginal, df = 11; 24.7 is the 99th percentile, so a correct
        # sampler fails with p < 0.01 (seeds are fixed -> deterministic).
        for observed in (observed_fast, observed_legacy):
            statistic = float(((observed - expected) ** 2 / expected).sum())
            assert statistic < 24.7, statistic

        # And the two samplers match each other (two-sample chi-squared).
        combined = observed_fast + observed_legacy
        expected_pair = combined / 2.0
        statistic = float(
            ((observed_fast - expected_pair) ** 2 / expected_pair).sum()
            + ((observed_legacy - expected_pair) ** 2 / expected_pair).sum()
        )
        assert statistic < 24.7, statistic
