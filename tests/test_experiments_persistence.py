"""Tests for the results store, the extension experiment registry entries
and the new CLI options."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    EXPERIMENTS,
    EXTENSION_EXPERIMENT_IDS,
    ResultsStore,
    get_experiment,
    list_experiments,
)


class TestResultsStore:
    def output(self):
        return {"rows": [{"method": "HAMs_m", "Recall@10": 0.12}], "text": "a table"}

    def test_save_and_load_roundtrip(self, tmp_path):
        store = ResultsStore(tmp_path)
        saved = store.save("table3", self.output(), metadata={"seed": 4, "scale": "tiny"})
        assert saved.path.exists()
        assert saved.path.with_suffix(".txt").read_text() == "a table"

        loaded = store.load(saved.path)
        assert loaded.experiment_id == "table3"
        assert loaded.rows == self.output()["rows"]
        assert loaded.metadata["seed"] == 4
        assert loaded.text == "a table"
        assert loaded.created_at

    def test_json_is_valid_and_sorted(self, tmp_path):
        store = ResultsStore(tmp_path)
        saved = store.save("fig3", self.output())
        payload = json.loads(saved.path.read_text())
        assert payload["experiment_id"] == "fig3"
        assert isinstance(payload["rows"], list)

    def test_list_and_latest(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.list() == []
        assert store.latest("table3") is None
        first = store.save("table3", self.output(), metadata={"seed": 0})
        second = store.save("table3", self.output(), metadata={"seed": 1})
        assert len(store.list("table3")) == 2
        assert len(store.list()) == 2
        latest = store.latest("table3")
        assert latest.path in (first.path, second.path)
        assert latest.path == store.list("table3")[-1]

    def test_repeated_saves_never_overwrite(self, tmp_path):
        store = ResultsStore(tmp_path)
        paths = {store.save("table3", self.output()).path for _ in range(3)}
        assert len(paths) == 3

    def test_invalid_output_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultsStore(tmp_path).save("table3", {"rows": []})

    def test_load_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ResultsStore(tmp_path).load(tmp_path / "nope.json")


class TestExtensionRegistry:
    def test_extension_experiments_registered(self):
        for experiment_id in EXTENSION_EXPERIMENT_IDS:
            assert experiment_id in EXPERIMENTS
            spec = get_experiment(experiment_id)
            assert spec.title

    def test_listed_alongside_paper_experiments(self):
        ids = {entry["id"] for entry in list_experiments()}
        assert "table3" in ids and "ext-synergy" in ids

    def test_ext_baselines_runs_on_tiny_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_EPOCHS", "1")
        spec = get_experiment("ext-baselines")
        output = spec.run(dataset="cds", scale="tiny", epochs=1, seed=0,
                          methods=("HAMs_m", "MarkovChain", "POP"))
        assert {row["method"] for row in output["rows"]} == {"HAMs_m", "MarkovChain", "POP"}
        assert "Extension" in output["text"]
        for row in output["rows"]:
            assert 0.0 <= row["Recall@10"] <= 1.0

    def test_ext_beyond_runs_on_tiny_scale(self):
        spec = get_experiment("ext-beyond")
        output = spec.run(dataset="cds", scale="tiny", epochs=1, seed=0,
                          methods=("HAMs_m", "POP"))
        assert len(output["rows"]) == 2
        for row in output["rows"]:
            assert 0.0 < row["coverage"] <= 1.0
            assert 0.0 <= row["gini"] <= 1.0


class TestCLI:
    def test_parser_accepts_new_flags(self):
        parser = build_parser()
        args = parser.parse_args(["run", "ext-synergy", "--scale", "tiny",
                                  "--save-dir", "/tmp/results"])
        assert args.save_dir == "/tmp/results"
        args = parser.parse_args(["train", "--method", "NARM", "--checkpoint", "out.npz"])
        assert args.checkpoint == "out.npz"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output and "ext-synergy" in output

    def test_run_with_save_dir(self, tmp_path, capsys):
        exit_code = main(["run", "tableA2", "--save-dir", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "saved to" in captured
        assert ResultsStore(tmp_path).latest("tableA2") is not None

    def test_train_with_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        exit_code = main(["train", "--dataset", "cds", "--method", "HAMm",
                          "--setting", "80-20-CUT", "--scale", "tiny",
                          "--epochs", "1", "--checkpoint", str(checkpoint)])
        assert exit_code == 0
        assert checkpoint.exists()
        from repro.training.checkpoint import read_metadata

        metadata = read_metadata(checkpoint)
        assert metadata["method"] == "HAMm"
        assert "Recall@10" in metadata["metrics"]
