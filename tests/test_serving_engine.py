"""Tests for the batched scoring engine, the canonical padding helper and
the batched HAM score explanations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import InteractionDataset
from repro.data.splits import split_setting
from repro.data.windows import pad_histories, pad_id_for
from repro.models import HAM, HAMSynergy, Popularity, create_model
from repro.serving import Recommender, ScoringEngine, explain_ham_score, explain_ham_scores
from repro.serving.bench import _uncached_recommend, run_serving_benchmark
from repro.training import Trainer, TrainingConfig

pytestmark = pytest.mark.fast

NUM_ITEMS = 30


def tiny_split(num_users: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    sequences = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(12, 18)).tolist()
        for _ in range(num_users)
    ]
    dataset = InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)
    return split_setting(dataset, "80-3-CUT")


def trained_model(split, name: str = "HAMs_m", **kwargs):
    defaults = dict(embedding_dim=8, n_h=4, n_l=2) if name.startswith("HAM") else {}
    defaults.update(kwargs)
    model = create_model(name, split.num_users, NUM_ITEMS,
                         rng=np.random.default_rng(0), **defaults)
    Trainer(model, TrainingConfig(num_epochs=2, batch_size=64, seed=0)).fit(
        split.train_plus_valid())
    return model


class TestPadHistories:
    def test_left_pads_short_histories(self):
        out = pad_histories([[1, 2], [], [3]], length=4, pad_id=9)
        assert out.tolist() == [[9, 9, 1, 2], [9, 9, 9, 9], [9, 9, 9, 3]]
        assert out.dtype == np.int64

    def test_truncates_to_most_recent(self):
        out = pad_histories([[1, 2, 3, 4, 5]], length=3, pad_id=9)
        assert out.tolist() == [[3, 4, 5]]

    def test_user_selection(self):
        histories = [[1], [2, 2], [3]]
        out = pad_histories(histories, length=2, pad_id=9, users=[2, 0])
        assert out.tolist() == [[9, 3], [9, 1]]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            pad_histories([[1]], length=0, pad_id=9)

    def test_matches_pad_id_for(self):
        assert pad_id_for(NUM_ITEMS) == NUM_ITEMS


class TestScoringEngineParity:
    @pytest.mark.parametrize("name,kwargs", [
        ("HAMs_m", {}),
        ("HAMm", {}),
        ("Fossil", {"embedding_dim": 8}),   # exercises the item-bias path
    ])
    def test_score_all_matches_model_bit_for_bit(self, name, kwargs):
        split = tiny_split()
        model = trained_model(split, name, **kwargs)
        histories = split.train_plus_valid()
        engine = ScoringEngine(model, histories)
        users = list(range(split.num_users))
        inputs = pad_histories(histories, model.input_length,
                               pad_id_for(NUM_ITEMS), users=users)
        expected = model.score_all(np.asarray(users, dtype=np.int64), inputs)
        assert np.array_equal(engine.score_all(users), expected)

    def test_rankings_match_seed_recommender_path(self):
        """Acceptance: engine rankings == the seed repo's uncached path."""
        split = tiny_split(seed=1)
        model = trained_model(split)
        histories = split.train_plus_valid()
        engine = ScoringEngine(model, histories, exclude_seen=True)
        users = np.asarray(list(range(split.num_users)), dtype=np.int64)
        assert np.array_equal(
            engine.top_k(users, 5), _uncached_recommend(model, histories, users, 5)
        )

    def test_facade_recommend_batch_matches_engine(self):
        split = tiny_split(seed=2)
        model = trained_model(split)
        histories = split.train_plus_valid()
        engine = ScoringEngine(model, histories)
        facade = Recommender(model, histories)
        for engine_row, facade_row in zip(engine.recommend_batch([0, 1, 2], 4),
                                          facade.recommend_batch([0, 1, 2], 4)):
            assert [e.item for e in engine_row] == [f.item for f in facade_row]
            assert [e.score for e in engine_row] == [f.score for f in facade_row]

    def test_micro_batching_is_invisible(self):
        split = tiny_split(seed=3)
        model = trained_model(split)
        histories = split.train_plus_valid()
        whole = ScoringEngine(model, histories)
        chunked = ScoringEngine(model, histories, micro_batch_size=3)
        users = list(range(split.num_users))
        assert np.array_equal(whole.score_all(users), chunked.score_all(users))

    def test_count_based_fallback_matches_model(self):
        split = tiny_split(seed=4)
        histories = split.train_plus_valid()
        pop = Popularity(split.num_users, NUM_ITEMS).fit_counts(histories)
        engine = ScoringEngine(pop, histories, micro_batch_size=4)
        assert not engine.supports_cached_representations
        users = list(range(split.num_users))
        inputs = pad_histories(histories, pop.input_length,
                               pad_id_for(NUM_ITEMS), users=users)
        expected = pop.score_all(np.asarray(users, dtype=np.int64), inputs)
        assert np.array_equal(engine.score_all(users), expected)
        # Masking must not corrupt the model's internal count array.
        engine.masked_scores(users)
        assert np.array_equal(engine.score_all(users), expected)


class TestScoringEngineBehaviour:
    def test_seen_items_never_recommended(self):
        split = tiny_split(seed=5)
        model = trained_model(split)
        histories = split.train_plus_valid()
        engine = ScoringEngine(model, histories)
        for user, row in enumerate(engine.top_k(list(range(split.num_users)), 5)):
            assert not set(row.tolist()) & set(histories[user])

    def test_observe_matches_rebuilt_engine(self):
        split = tiny_split(seed=6)
        model = trained_model(split)
        histories = [list(h) for h in split.train_plus_valid()]
        engine = ScoringEngine(model, histories, precompute=True)
        engine.observe(0, 7)
        engine.observe(0, 11)
        engine.observe(3, 2)

        updated = [list(h) for h in histories]
        updated[0] += [7, 11]
        updated[3] += [2]
        rebuilt = ScoringEngine(model, updated)
        users = [0, 1, 3]
        assert np.array_equal(engine.score_all(users), rebuilt.score_all(users))
        assert np.array_equal(engine.masked_scores(users), rebuilt.masked_scores(users))
        assert engine.history(0) == updated[0]

    def test_observe_does_not_mutate_caller_histories(self):
        split = tiny_split(seed=7)
        model = trained_model(split)
        histories = split.train_plus_valid()
        before = [list(h) for h in histories]
        ScoringEngine(model, histories).observe(0, 5)
        assert [list(h) for h in histories] == before

    def test_refresh_after_training(self):
        split = tiny_split(seed=8)
        model = trained_model(split)
        histories = split.train_plus_valid()
        engine = ScoringEngine(model, histories, precompute=True, copy_weights=False)
        stale = engine.score_all([0])
        Trainer(model, TrainingConfig(num_epochs=1, batch_size=64, seed=1)).fit(histories)
        engine.refresh()
        users = [0]
        inputs = pad_histories(histories, model.input_length,
                               pad_id_for(NUM_ITEMS), users=users)
        fresh = model.score_all(np.asarray(users, dtype=np.int64), inputs)
        assert np.array_equal(engine.score_all([0]), fresh)
        assert not np.array_equal(stale, fresh)

    def test_facade_honours_caller_history_mutation(self):
        """The old Recommender contract: histories are read live, so a
        caller-side append changes both the inputs and the exclusions."""
        split = tiny_split(seed=16)
        model = trained_model(split)
        histories = split.train_plus_valid()
        facade = Recommender(model, histories)
        top = facade.recommend(0, k=1)[0]
        histories[0].append(top.item)          # caller records the interaction
        recommended = [entry.item for entry in facade.recommend(0, k=5)]
        assert top.item not in recommended
        assert facade.score(0, top.item) == ScoringEngine(model, histories).score(0, top.item)

    # FPMC's candidate table is derived (concatenated) per call rather
    # than a parameter view, so it exercises the per-request re-freeze.
    @pytest.mark.parametrize("name", ["HAMs_m", "FPMC"])
    def test_facade_reflects_further_training(self, name):
        """The old Recommender contract: requests see the current weights."""
        split = tiny_split(seed=15)
        model = trained_model(split, name)
        histories = split.train_plus_valid()
        facade = Recommender(model, histories)
        before = facade.score(0, 5)
        Trainer(model, TrainingConfig(num_epochs=1, batch_size=64, seed=2)).fit(histories)
        users = [0]
        inputs = pad_histories(histories, model.input_length,
                               pad_id_for(NUM_ITEMS), users=users)
        expected = model.score_all(np.asarray(users, dtype=np.int64), inputs)[0, 5]
        assert facade.score(0, 5) == expected
        assert facade.score(0, 5) != before

    def test_validation(self):
        split = tiny_split(seed=9)
        model = trained_model(split)
        histories = split.train_plus_valid()
        engine = ScoringEngine(model, histories)
        with pytest.raises(ValueError):
            engine.top_k([0], 0)
        with pytest.raises(ValueError):
            engine.score_all([split.num_users + 3])
        with pytest.raises(ValueError):
            engine.observe(0, NUM_ITEMS)
        with pytest.raises(ValueError):
            ScoringEngine(model, histories[:2])
        with pytest.raises(ValueError):
            ScoringEngine(model, histories, micro_batch_size=0)

    def test_empty_request(self):
        split = tiny_split(seed=10)
        model = trained_model(split)
        engine = ScoringEngine(model, split.train_plus_valid())
        assert engine.score_all([]).shape == (0, NUM_ITEMS)
        assert engine.recommend_batch([], 3) == []


class TestExplainEdgeCases:
    def test_empty_history(self):
        model = HAMSynergy(5, NUM_ITEMS, embedding_dim=8, n_h=4, n_l=2,
                           synergy_order=2, rng=np.random.default_rng(0))
        explanation = explain_ham_score(model, user=0, history=[], item=3)
        # With an all-padding window the association factors are zero and
        # the score reduces to the user-preference dot product.
        assert explanation.high_order == pytest.approx(0.0)
        assert explanation.low_order == pytest.approx(0.0)
        assert explanation.total == pytest.approx(explanation.user_preference)

    def test_synergy_model_matches_engine_score(self):
        split = tiny_split(seed=11)
        model = trained_model(split, "HAMs_m")
        histories = split.train_plus_valid()
        engine = ScoringEngine(model, histories)
        explanation = explain_ham_score(model, 0, histories[0], 9)
        assert explanation.uses_synergies
        assert explanation.total == pytest.approx(engine.score(0, 9), rel=1e-5, abs=1e-10)

    def test_user_embedding_disabled(self):
        model = HAM(5, NUM_ITEMS, embedding_dim=8, n_h=4, n_l=2,
                    use_user_embedding=False, rng=np.random.default_rng(0))
        explanation = explain_ham_score(model, user=2, history=[1, 2, 3], item=4)
        assert explanation.user_preference == 0.0
        assert explanation.total == pytest.approx(
            explanation.high_order + explanation.low_order)

    def test_batch_matches_single(self):
        split = tiny_split(seed=12)
        model = trained_model(split)
        history = split.train_plus_valid()[0]
        items = [0, 5, 9, 17]
        batch = explain_ham_scores(model, 0, history, items)
        for item, explanation in zip(items, batch):
            single = explain_ham_score(model, 0, history, item)
            assert explanation.item == single.item
            assert explanation.uses_synergies == single.uses_synergies
            # Factor values agree up to BLAS matvec-vs-matmul rounding
            # (single-precision models, hence the float32-scale bound).
            assert explanation.total == pytest.approx(single.total, rel=1e-5, abs=1e-10)
            assert explanation.user_preference == pytest.approx(single.user_preference, rel=1e-5, abs=1e-10)
            assert explanation.high_order == pytest.approx(single.high_order, rel=1e-5, abs=1e-10)
            assert explanation.low_order == pytest.approx(single.low_order, rel=1e-5, abs=1e-10)

    def test_batch_validation(self):
        model = HAM(5, NUM_ITEMS, embedding_dim=8, n_h=4, n_l=1,
                    rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            explain_ham_scores(model, 0, [1], [0, NUM_ITEMS])


class TestServingBenchmark:
    def test_report_shape_and_consistency(self):
        split = tiny_split(seed=13)
        model = trained_model(split)
        report = run_serving_benchmark(model, split.train_plus_valid(),
                                       num_requests=5, users_per_request=2, k=3)
        assert report.cached.requests == report.uncached.requests == 5
        assert report.cached.p50_ms > 0 and report.uncached.p50_ms > 0
        assert report.speedup == pytest.approx(
            report.uncached.p50_ms / report.cached.p50_ms)
        as_dict = report.as_dict()
        assert as_dict["cached"]["p95_ms"] >= as_dict["cached"]["p50_ms"]

    def test_validation(self):
        split = tiny_split(seed=14)
        model = trained_model(split)
        with pytest.raises(ValueError):
            run_serving_benchmark(model, split.train_plus_valid(), num_requests=0)
        with pytest.raises(ValueError):
            run_serving_benchmark(model, split.train_plus_valid(),
                                  users_per_request=0)
