"""Tests for the count-based recommenders: ItemKNN and MarkovChain.

Both are :class:`NonParametricRecommender` sub-classes that the trainer
fits by counting.  The tests verify the counting logic (co-occurrence,
transitions, smoothing) on small hand-checkable datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import InteractionDataset
from repro.data.splits import split_setting
from repro.models import ItemKNN, MarkovChain, NonParametricRecommender, Popularity
from repro.training import Trainer, TrainingConfig

NUM_USERS = 8
NUM_ITEMS = 12
PAD = NUM_ITEMS


class TestNonParametricContract:
    @pytest.mark.parametrize("factory", [
        lambda: Popularity(NUM_USERS, NUM_ITEMS),
        lambda: ItemKNN(NUM_USERS, NUM_ITEMS),
        lambda: MarkovChain(NUM_USERS, NUM_ITEMS),
    ])
    def test_requires_fit_before_scoring(self, factory):
        model = factory()
        assert not model.is_fitted
        with pytest.raises(RuntimeError):
            model.score_all(np.array([0]), np.full((1, model.input_length), PAD))

    @pytest.mark.parametrize("factory", [
        lambda: ItemKNN(NUM_USERS, NUM_ITEMS),
        lambda: MarkovChain(NUM_USERS, NUM_ITEMS),
    ])
    def test_gradient_interface_disabled(self, factory):
        model = factory()
        with pytest.raises(NotImplementedError):
            model.sequence_representation(np.array([0]), np.zeros((1, 3), dtype=np.int64))
        with pytest.raises(NotImplementedError):
            model.candidate_item_embeddings()
        with pytest.raises(NotImplementedError):
            model.score_items(np.array([0]), np.zeros((1, 3), dtype=np.int64),
                              np.zeros((1, 1), dtype=np.int64))

    def test_out_of_range_items_rejected(self):
        model = MarkovChain(NUM_USERS, NUM_ITEMS)
        with pytest.raises(ValueError):
            model.fit_counts([[0, 1, NUM_ITEMS]])

    def test_describe_mentions_fit_state(self):
        model = ItemKNN(NUM_USERS, NUM_ITEMS)
        assert "unfitted" in model.describe()
        model.fit_counts([[0, 1, 2]])
        assert "unfitted" not in model.describe()
        assert isinstance(model, NonParametricRecommender)

    def test_trainer_fits_nonparametric_models(self):
        sequences = [[0, 1, 2, 3, 4, 5, 6], [1, 2, 3, 4, 5, 6, 7], [2, 3, 4, 5, 6, 7, 8]]
        dataset = InteractionDataset.from_sequences(sequences, num_items=NUM_ITEMS)
        split = split_setting(dataset, "80-20-CUT")
        model = MarkovChain(dataset.num_users, NUM_ITEMS, order=2)
        trainer = Trainer(model, TrainingConfig(num_epochs=1))
        result = trainer.fit(split.train)
        assert model.is_fitted
        assert result.train_seconds >= 0.0


class TestItemKNN:
    def test_cooccurring_items_are_neighbors(self):
        model = ItemKNN(NUM_USERS, NUM_ITEMS, cooccurrence_window=2)
        model.fit_counts([[0, 1, 0, 1, 0, 1], [0, 1, 2]])
        neighbors = dict(model.neighbors(0, k=5))
        assert 1 in neighbors
        assert neighbors[1] > neighbors.get(5, 0.0)

    def test_window_limits_cooccurrence(self):
        # Items 0 and 5 are always far apart; with a small window they
        # never co-occur.
        model = ItemKNN(NUM_USERS, NUM_ITEMS, cooccurrence_window=1)
        model.fit_counts([[0, 1, 2, 3, 4, 5]] * 3)
        neighbors = dict(model.neighbors(0, k=NUM_ITEMS))
        assert 5 not in neighbors

    def test_whole_sequence_window(self):
        model = ItemKNN(NUM_USERS, NUM_ITEMS, cooccurrence_window=None)
        model.fit_counts([[0, 1, 2, 3, 4, 5]] * 3)
        neighbors = dict(model.neighbors(0, k=NUM_ITEMS))
        assert 5 in neighbors

    def test_scores_prefer_neighbor_of_recent_item(self):
        model = ItemKNN(NUM_USERS, NUM_ITEMS, cooccurrence_window=1)
        model.fit_counts([[3, 4], [3, 4], [3, 4], [6, 7]])
        inputs = np.full((1, model.input_length), PAD, dtype=np.int64)
        inputs[0, -1] = 3
        scores = model.score_all(np.array([0]), inputs)
        assert scores[0, 4] > scores[0, 7]

    def test_recency_decay_weighs_recent_items_higher(self):
        model = ItemKNN(NUM_USERS, NUM_ITEMS, cooccurrence_window=1, recency_decay=0.5)
        model.fit_counts([[0, 1], [0, 1], [2, 3], [2, 3]])
        inputs = np.full((1, model.input_length), PAD, dtype=np.int64)
        inputs[0, -1] = 0   # most recent: neighbor is 1
        inputs[0, -2] = 2   # older: neighbor is 3
        scores = model.score_all(np.array([0]), inputs)
        assert scores[0, 1] > scores[0, 3]

    def test_top_k_neighbors_prunes(self):
        model = ItemKNN(NUM_USERS, NUM_ITEMS, cooccurrence_window=None, top_k_neighbors=2)
        model.fit_counts([[0, 1, 2, 3, 4, 5, 6, 7]] * 2)
        assert len(model.neighbors(0, k=NUM_ITEMS)) <= 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ItemKNN(NUM_USERS, NUM_ITEMS, recency_decay=0.0)
        with pytest.raises(ValueError):
            ItemKNN(NUM_USERS, NUM_ITEMS, top_k_neighbors=0)
        with pytest.raises(ValueError):
            ItemKNN(NUM_USERS, NUM_ITEMS, cooccurrence_window=0)


class TestMarkovChain:
    def test_first_order_transitions(self):
        model = MarkovChain(NUM_USERS, NUM_ITEMS, order=1, smoothing=0.0)
        model.fit_counts([[0, 1], [0, 1], [0, 2]])
        probabilities = model.transition_probabilities(0, lag=1)
        assert probabilities[1] == pytest.approx(2.0 / 3.0)
        assert probabilities[2] == pytest.approx(1.0 / 3.0)

    def test_smoothing_spreads_mass(self):
        model = MarkovChain(NUM_USERS, NUM_ITEMS, order=1, smoothing=1.0)
        model.fit_counts([[0, 1]])
        probabilities = model.transition_probabilities(0, lag=1)
        assert probabilities[5] > 0.0
        assert probabilities.sum() == pytest.approx(1.0)

    def test_higher_lag_counts_skip_transitions(self):
        model = MarkovChain(NUM_USERS, NUM_ITEMS, order=2, smoothing=0.0)
        model.fit_counts([[0, 1, 2]])
        lag2 = model.transition_probabilities(0, lag=2)
        assert lag2[2] == pytest.approx(1.0)

    def test_scores_follow_last_item(self):
        model = MarkovChain(NUM_USERS, NUM_ITEMS, order=1)
        model.fit_counts([[0, 1], [0, 1], [2, 3]])
        inputs = np.array([[PAD, 0], [PAD, 2]])
        scores = model.score_all(np.array([0, 1]), inputs)
        assert scores[0, 1] > scores[0, 3]
        assert scores[1, 3] > scores[1, 1]

    def test_cold_start_falls_back_to_popularity(self):
        model = MarkovChain(NUM_USERS, NUM_ITEMS, order=2)
        model.fit_counts([[0, 0, 0, 1], [0, 2]])
        inputs = np.full((1, 2), PAD, dtype=np.int64)
        scores = model.score_all(np.array([0]), inputs)
        assert np.argmax(scores[0]) == 0

    def test_lag_decay_prioritizes_recent_lag(self):
        model = MarkovChain(NUM_USERS, NUM_ITEMS, order=2, lag_decay=0.1, smoothing=0.0)
        # lag-1 evidence: 4 -> 5; lag-2 evidence: 6 -> _ -> 7
        model.fit_counts([[4, 5], [4, 5], [6, 8, 7], [6, 9, 7]])
        inputs = np.array([[6, 4]])
        scores = model.score_all(np.array([0]), inputs)
        assert scores[0, 5] > scores[0, 7]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MarkovChain(NUM_USERS, NUM_ITEMS, order=0)
        with pytest.raises(ValueError):
            MarkovChain(NUM_USERS, NUM_ITEMS, lag_decay=0.0)
        with pytest.raises(ValueError):
            MarkovChain(NUM_USERS, NUM_ITEMS, smoothing=-1.0)
        with pytest.raises(ValueError):
            model = MarkovChain(NUM_USERS, NUM_ITEMS)
            model.fit_counts([[0]])
            model.transition_probabilities(0, lag=99)
