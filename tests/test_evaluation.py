"""Tests for metrics, ranking helpers, the evaluator, significance and timing."""

import numpy as np
import pytest

from repro.data import InteractionDataset, split_setting
from repro.evaluation import (
    RankingEvaluator,
    measure_inference_time,
    ndcg_at_k,
    paired_improvement_test,
    rank_items,
    recall_at_k,
    top_k_items,
)
from repro.evaluation.metrics import average_precision_at_k, hit_rate_at_k
from repro.evaluation.ranking import exclude_items
from repro.models import HAM, Popularity


class TestMetrics:
    def test_recall_perfect(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3], k=3) == 1.0

    def test_recall_partial(self):
        assert recall_at_k([1, 9, 8], [1, 2], k=3) == 0.5

    def test_recall_counts_only_topk(self):
        assert recall_at_k([9, 8, 7, 1], [1], k=3) == 0.0

    def test_recall_empty_truth(self):
        assert recall_at_k([1, 2], [], k=2) == 0.0

    def test_ndcg_perfect_is_one(self):
        assert ndcg_at_k([4, 5], [4, 5], k=2) == pytest.approx(1.0)

    def test_ndcg_position_matters(self):
        first = ndcg_at_k([4, 9], [4], k=2)
        second = ndcg_at_k([9, 4], [4], k=2)
        assert first > second > 0

    def test_ndcg_value(self):
        # hit at rank 2 only, one relevant item: dcg = 1/log2(3), idcg = 1
        assert ndcg_at_k([9, 4, 8], [4], k=3) == pytest.approx(1.0 / np.log2(3))

    def test_ndcg_empty_truth(self):
        assert ndcg_at_k([1], [], k=1) == 0.0

    def test_hit_rate(self):
        assert hit_rate_at_k([1, 2, 3], [3], k=3) == 1.0
        assert hit_rate_at_k([1, 2, 3], [9], k=3) == 0.0

    def test_average_precision(self):
        assert average_precision_at_k([1, 9, 2], [1, 2], k=3) == pytest.approx((1.0 + 2 / 3) / 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k([1], [1], k=0)
        with pytest.raises(ValueError):
            ndcg_at_k([1], [1], k=0)


class TestRankingHelpers:
    def test_top_k_orders_by_score(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        assert top_k_items(scores, 3).tolist() == [[1, 3, 2]]

    def test_top_k_respects_exclusions(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        top = top_k_items(scores, 2, excluded=[{1}])
        assert top.tolist() == [[3, 2]]

    def test_top_k_larger_than_catalogue(self):
        scores = np.array([[0.3, 0.1]])
        assert top_k_items(scores, 10).shape == (1, 2)

    def test_rank_items_full_order(self):
        scores = np.array([[0.2, 0.8, 0.5]])
        assert rank_items(scores).tolist() == [[1, 2, 0]]

    def test_exclude_items_validation(self):
        with pytest.raises(ValueError):
            exclude_items(np.zeros((2, 3)), [set()])

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_items(np.zeros((1, 3)), 0)

    def test_top_k_matches_full_sort(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(5, 40))
        top = top_k_items(scores, 10)
        full = rank_items(scores)[:, :10]
        assert np.array_equal(top, full)


def pattern_dataset(num_users=20, num_items=15, length=14, seed=0):
    rng = np.random.default_rng(seed)
    sequences = []
    for _ in range(num_users):
        start = int(rng.integers(0, num_items))
        sequences.append([(start + t) % num_items for t in range(length)])
    return InteractionDataset(sequences, num_items, name="pattern")


class TestRankingEvaluator:
    def test_metric_keys_and_ranges(self):
        dataset = pattern_dataset()
        split = split_setting(dataset, "80-20-CUT")
        evaluator = RankingEvaluator(split, ks=(5, 10))
        model = HAM(dataset.num_users, dataset.num_items, embedding_dim=8,
                    rng=np.random.default_rng(1))
        result = evaluator.evaluate(model)
        assert set(result.metrics) == {"Recall@5", "Recall@10", "NDCG@5", "NDCG@10"}
        assert all(0.0 <= value <= 1.0 for value in result.metrics.values())
        assert result.num_users_evaluated == evaluator.num_evaluable_users

    def test_per_user_arrays_align(self):
        dataset = pattern_dataset(seed=1)
        split = split_setting(dataset, "3-LOS")
        evaluator = RankingEvaluator(split)
        model = HAM(dataset.num_users, dataset.num_items, embedding_dim=8,
                    rng=np.random.default_rng(2))
        result = evaluator.evaluate(model)
        for values in result.per_user.values():
            assert len(values) == evaluator.num_evaluable_users
        assert result["Recall@5"] == pytest.approx(result.per_user["Recall@5"].mean())

    def test_validation_mode_uses_validation_targets(self):
        dataset = pattern_dataset(seed=2)
        split = split_setting(dataset, "80-20-CUT")
        test_eval = RankingEvaluator(split, mode="test")
        valid_eval = RankingEvaluator(split, mode="validation")
        assert valid_eval._targets is split.valid
        assert test_eval._targets is split.test

    def test_perfect_oracle_model_gets_recall_one(self):
        # A "model" whose scores are highest exactly on each user's next
        # items: build it by hand through Popularity + per-user hack is
        # complex, so instead check an oracle via direct score injection.
        dataset = pattern_dataset(seed=3)
        split = split_setting(dataset, "80-3-CUT")
        evaluator = RankingEvaluator(split, ks=(5,), mode="test")

        class Oracle(Popularity):
            def score_all(self, users, inputs):
                scores = np.zeros((len(users), self.num_items))
                for row, user in enumerate(np.asarray(users)):
                    for item in split.test[int(user)]:
                        scores[row, item] = 10.0
                return scores

        oracle = Oracle(dataset.num_users, dataset.num_items)
        oracle._fitted = True
        result = evaluator.evaluate(oracle)
        assert result["Recall@5"] == pytest.approx(1.0)

    def test_exclude_seen_items(self):
        # With exclusion on, training items can never be recommended even
        # if the model scores them highest.
        dataset = pattern_dataset(seed=4)
        split = split_setting(dataset, "80-3-CUT")
        evaluator = RankingEvaluator(split, ks=(5,), exclude_seen=True)

        class TrainLover(Popularity):
            def score_all(self, users, inputs):
                scores = np.zeros((len(users), self.num_items))
                for row, user in enumerate(np.asarray(users)):
                    for item in split.train_plus_valid()[int(user)]:
                        scores[row, item] = 10.0
                return scores

        model = TrainLover(dataset.num_users, dataset.num_items)
        model._fitted = True
        result = evaluator.evaluate(model)
        # Train items are excluded, so scoring them high cannot produce hits
        # beyond chance; with all remaining scores 0 the top-k is arbitrary
        # but never contains excluded items -> recall is low but defined.
        assert 0.0 <= result["Recall@5"] <= 1.0

    def test_validation_metric_helper(self):
        dataset = pattern_dataset(seed=5)
        split = split_setting(dataset, "80-20-CUT")
        evaluator = RankingEvaluator(split, ks=(10,), mode="validation")
        model = HAM(dataset.num_users, dataset.num_items, embedding_dim=8,
                    rng=np.random.default_rng(3))
        value = evaluator.validation_metric(model, "Recall@10")
        assert 0.0 <= value <= 1.0

    def test_invalid_arguments(self):
        dataset = pattern_dataset(seed=6)
        split = split_setting(dataset, "80-20-CUT")
        with pytest.raises(ValueError):
            RankingEvaluator(split, mode="bogus")
        with pytest.raises(ValueError):
            RankingEvaluator(split, ks=())


class TestSignificance:
    def test_clear_improvement_is_significant(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0.2, 0.4, size=200)
        better = base + 0.05 + rng.normal(0, 0.01, size=200)
        result = paired_improvement_test(better, base)
        assert result.significant
        assert result.improvement_percent > 0
        assert result.flag() == "*"

    def test_identical_scores_not_significant(self):
        scores = np.full(50, 0.3)
        result = paired_improvement_test(scores, scores.copy())
        assert not result.significant
        assert result.improvement_percent == 0.0
        assert result.flag() == ""

    def test_noise_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 1, size=30)
        b = a + rng.normal(0, 1e-3, size=30) * np.where(rng.random(30) > 0.5, 1, -1)
        result = paired_improvement_test(a, b, confidence=0.999)
        assert isinstance(result.significant, bool)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_improvement_test(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            paired_improvement_test(np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            paired_improvement_test(np.ones(5), np.zeros(5), confidence=1.5)


class TestTiming:
    def test_measures_positive_time(self):
        dataset = pattern_dataset(seed=7)
        split = split_setting(dataset, "80-20-CUT")
        evaluator = RankingEvaluator(split)
        model = HAM(dataset.num_users, dataset.num_items, embedding_dim=8,
                    rng=np.random.default_rng(4))
        timing = measure_inference_time(model, evaluator, repeats=2)
        assert timing.total_seconds > 0
        assert timing.seconds_per_user > 0
        assert timing.num_users == evaluator.num_evaluable_users
        assert timing.repeats == 2

    def test_invalid_repeats(self):
        dataset = pattern_dataset(seed=8)
        split = split_setting(dataset, "80-20-CUT")
        evaluator = RankingEvaluator(split)
        model = HAM(dataset.num_users, dataset.num_items, embedding_dim=8,
                    rng=np.random.default_rng(5))
        with pytest.raises(ValueError):
            measure_inference_time(model, evaluator, repeats=0)
