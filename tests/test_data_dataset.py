"""Tests for InteractionDataset and preprocessing."""

import numpy as np
import pytest

from repro.data import InteractionDataset, PreprocessConfig, RawInteraction, preprocess_interactions
from repro.data.dataset import merge_datasets


def small_dataset():
    return InteractionDataset(
        sequences=[[0, 1, 2, 3], [1, 2], [3, 0, 1]],
        num_items=4,
        name="toy",
    )


class TestInteractionDataset:
    def test_basic_counts(self):
        ds = small_dataset()
        assert ds.num_users == 3
        assert ds.num_items == 4
        assert ds.num_interactions == 9
        assert ds.interactions_per_user == pytest.approx(3.0)
        assert ds.interactions_per_item == pytest.approx(2.25)
        assert 0 < ds.density < 1

    def test_sequence_access(self):
        ds = small_dataset()
        assert ds.sequence(0) == [0, 1, 2, 3]
        assert ds.subsequence(0, 1, 2) == [1, 2]
        assert ds.items_of_user(2) == {3, 0, 1}
        assert len(ds) == 3
        assert list(iter(ds))[1] == [1, 2]

    def test_subsequence_validation(self):
        ds = small_dataset()
        with pytest.raises(ValueError):
            ds.subsequence(0, -1, 2)

    def test_item_frequencies(self):
        ds = small_dataset()
        freqs = ds.item_frequencies()
        assert freqs.tolist() == [2, 3, 2, 2]

    def test_user_lengths(self):
        assert small_dataset().user_lengths().tolist() == [4, 2, 3]

    def test_invalid_item_id_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(sequences=[[0, 5]], num_items=4)

    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            InteractionDataset(sequences=[[0]], num_items=0)

    def test_from_sequences_infers_num_items(self):
        ds = InteractionDataset.from_sequences([[0, 3], [2]])
        assert ds.num_items == 4

    def test_filter_users(self):
        ds = small_dataset().filter_users(min_length=3)
        assert ds.num_users == 2

    def test_truncate_sequences(self):
        ds = small_dataset().truncate_sequences(2)
        assert ds.sequence(0) == [2, 3]
        with pytest.raises(ValueError):
            small_dataset().truncate_sequences(0)

    def test_summary_mentions_counts(self):
        text = small_dataset().summary()
        assert "3 users" in text and "4 items" in text

    def test_merge_datasets(self):
        merged = merge_datasets([small_dataset(), small_dataset()])
        assert merged.num_users == 6
        assert merged.num_items == 4
        with pytest.raises(ValueError):
            merge_datasets([])


class TestPreprocessing:
    def _interactions(self):
        # user "a" rates 12 items highly, user "b" rates 3 items, user "c"
        # rates 12 items but only 2 highly.
        interactions = []
        for t in range(12):
            interactions.append(RawInteraction("a", f"i{t % 6}", 5.0, t))
        for t in range(3):
            interactions.append(RawInteraction("b", f"i{t}", 5.0, t))
        for t in range(12):
            rating = 5.0 if t < 2 else 2.0
            interactions.append(RawInteraction("c", f"i{t % 6}", rating, t))
        return interactions

    def test_low_ratings_dropped(self):
        ds = preprocess_interactions(
            self._interactions(),
            PreprocessConfig(min_interactions_per_user=1, min_interactions_per_item=1),
        )
        # All ratings < 4 are dropped: user c keeps only 2 interactions.
        assert ds.num_interactions == 12 + 3 + 2

    def test_min_user_filter(self):
        ds = preprocess_interactions(
            self._interactions(),
            PreprocessConfig(min_interactions_per_user=10, min_interactions_per_item=1),
        )
        # Only user "a" has >= 10 positive interactions.
        assert ds.num_users == 1
        assert ds.num_interactions == 12

    def test_iterative_filtering_reaches_fixed_point(self):
        # Item j is only kept through user b; dropping user b must also drop j.
        interactions = [RawInteraction("a", "i", 5.0, t) for t in range(5)]
        interactions += [RawInteraction("b", "j", 5.0, 0)]
        ds = preprocess_interactions(
            interactions,
            PreprocessConfig(min_interactions_per_user=2, min_interactions_per_item=1),
        )
        assert ds.num_users == 1
        assert ds.num_items == 1

    def test_implicit_keeps_all_feedback(self):
        interactions = [RawInteraction("a", f"i{t}", 0.0, t) for t in range(12)]
        ds = preprocess_interactions(
            interactions,
            PreprocessConfig(min_interactions_per_user=1, min_interactions_per_item=1,
                             implicit=True),
        )
        assert ds.num_interactions == 12

    def test_chronological_order(self):
        interactions = [
            RawInteraction("a", "late", 5.0, 10.0),
            RawInteraction("a", "early", 5.0, 1.0),
            RawInteraction("a", "middle", 5.0, 5.0),
        ] * 4
        ds = preprocess_interactions(
            interactions,
            PreprocessConfig(min_interactions_per_user=1, min_interactions_per_item=1),
        )
        seq = ds.sequence(0)
        # first four entries must all be the "early" item
        assert len(set(seq[:4])) == 1

    def test_empty_result(self):
        ds = preprocess_interactions(
            [RawInteraction("a", "i", 1.0, 0)],
            PreprocessConfig(),
        )
        assert ds.num_users == 0

    def test_ids_are_contiguous(self):
        ds = preprocess_interactions(
            self._interactions(),
            PreprocessConfig(min_interactions_per_user=1, min_interactions_per_item=1),
        )
        items = {item for seq in ds.sequences for item in seq}
        assert items == set(range(ds.num_items))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PreprocessConfig(min_interactions_per_user=0)
        with pytest.raises(ValueError):
            PreprocessConfig(min_interactions_per_item=0)
