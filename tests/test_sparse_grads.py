"""Indexed (sparse) embedding gradients and the sparse-aware optimizers.

The acceptance property of the sparse path is *bit-equivalence after
densification*: running the identical forward/backward once with dense
scatters and once with :func:`sparse_embedding_grads` must produce the
same gradients to the last bit (both accumulate contributions in
occurrence order), and a single optimizer step from identical state must
move the parameters identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Adagrad,
    Adam,
    Embedding,
    IndexedRows,
    Parameter,
    SGD,
    Tensor,
    clip_grad_norm,
    sparse_embedding_grads,
    sparse_grads_enabled,
)
from repro.models import create_model
from repro.training import Trainer, TrainingConfig
from repro.training.losses import get_loss

pytestmark = pytest.mark.fast


class TestIndexedRows:
    def test_to_dense_scatter_adds_duplicates(self):
        grad = IndexedRows(np.array([1, 1, 3]),
                           np.array([[1.0, 2.0], [10.0, 20.0], [5.0, 6.0]]),
                           (4, 2))
        dense = grad.to_dense()
        assert dense.tolist() == [[0, 0], [11, 22], [0, 0], [5, 6]]

    def test_coalesce_matches_dense(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 40, size=500)
        rows = rng.normal(size=(500, 8))
        grad = IndexedRows(indices, rows, (50, 8))
        coalesced = grad.coalesce()
        assert np.array_equal(np.unique(indices), coalesced.indices)
        assert np.allclose(coalesced.to_dense(), grad.to_dense())

    def test_add_concatenates_sparse(self):
        a = IndexedRows(np.array([0]), np.array([[1.0]]), (3, 1))
        b = IndexedRows(np.array([0, 2]), np.array([[2.0], [3.0]]), (3, 1))
        combined = a + b
        assert isinstance(combined, IndexedRows)
        assert combined.to_dense().tolist() == [[3.0], [0.0], [3.0]]

    def test_add_dense_densifies(self):
        sparse = IndexedRows(np.array([1]), np.array([[1.0, 1.0]]), (2, 2))
        out = sparse + np.ones((2, 2))
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [[1, 1], [2, 2]]

    def test_zero_rows(self):
        grad = IndexedRows(np.array([0, 1, 0]),
                           np.ones((3, 2)), (2, 2))
        grad.zero_rows(0)
        assert grad.to_dense().tolist() == [[0, 0], [1, 1]]

    def test_sum_of_squares_counts_duplicates_once_summed(self):
        grad = IndexedRows(np.array([0, 0]), np.array([[1.0], [1.0]]), (2, 1))
        # ||dense grad||^2 = (1+1)^2 = 4, not 1^2 + 1^2.
        assert grad.sum_of_squares() == pytest.approx(4.0)

    def test_context_manager(self):
        assert not sparse_grads_enabled()
        with sparse_embedding_grads(True):
            assert sparse_grads_enabled()
        assert not sparse_grads_enabled()


class TestSparseTakeRows:
    def test_leaf_gets_indexed_rows(self):
        weight = Parameter(np.arange(12.0).reshape(4, 3))
        with sparse_embedding_grads(True):
            out = weight.take_rows(np.array([[1, 2], [2, 2]]))
            out.sum().backward()
        assert isinstance(weight.grad, IndexedRows)
        assert np.array_equal(weight.grad.to_dense(),
                              np.array([[0.0] * 3, [1.0] * 3, [3.0] * 3, [0.0] * 3]))

    def test_interior_nodes_stay_dense(self):
        weight = Parameter(np.ones((4, 3)))
        with sparse_embedding_grads(True):
            doubled = weight * 2.0          # interior node
            out = doubled.take_rows(np.array([0, 1]))
            out.sum().backward()
        assert isinstance(weight.grad, np.ndarray)

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_bit_equivalence_after_densification(self, dtype):
        """Same forward/backward, sparse vs dense: identical to the bit."""
        def run(sparse):
            model = create_model("HAMs_m", 6, 20, rng=np.random.default_rng(1),
                                 embedding_dim=8, n_h=4, n_l=2, dtype=dtype)
            rng = np.random.default_rng(2)
            users = rng.integers(0, 6, size=5)
            inputs = rng.integers(0, 20, size=(5, 4))
            targets = rng.integers(0, 20, size=(5, 2))
            negatives = rng.integers(0, 20, size=(5, 2))
            with sparse_embedding_grads(sparse):
                loss = get_loss("bpr")(
                    model.score_items(users, inputs, targets),
                    model.score_items(users, inputs, negatives),
                )
                loss.backward()
            out = {}
            for name, param in model.named_parameters():
                grad = param.grad
                if isinstance(grad, IndexedRows):
                    grad = grad.to_dense()
                out[name] = None if grad is None else np.array(grad, copy=True)
            return out

        dense, sparse = run(False), run(True)
        assert set(dense) == set(sparse)
        for key in dense:
            assert (dense[key] is None) == (sparse[key] is None), key
            if dense[key] is not None:
                assert np.array_equal(dense[key], sparse[key]), key


def _one_step(optimizer_cls, sparse, dtype="float64", **opt_kwargs):
    """One backward + optimizer step on an Embedding; returns the weights."""
    rng = np.random.default_rng(4)
    emb = Embedding(10, 4, rng=rng)
    if dtype is not None:
        emb.astype(dtype)
    optimizer = optimizer_cls(emb.parameters(), **opt_kwargs)
    indices = np.array([[1, 3, 3], [7, 1, 0]])
    with sparse_embedding_grads(sparse):
        out = emb(indices)
        (out * out).sum().backward()
    optimizer.step()
    return np.array(emb.weight.data, copy=True)


class TestSparseOptimizers:
    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (Adam, {"lr": 0.1}),
        (Adagrad, {"lr": 0.1}),
    ])
    def test_single_step_matches_dense(self, optimizer_cls, kwargs):
        dense = _one_step(optimizer_cls, sparse=False, **kwargs)
        sparse = _one_step(optimizer_cls, sparse=True, **kwargs)
        # From zero optimizer state, untouched rows move in neither path
        # and touched rows receive the same update (up to reduction
        # rounding in the coalesced segment sums).
        assert np.allclose(dense, sparse, rtol=1e-12, atol=1e-15)

    def test_sgd_momentum_densifies(self):
        dense = _one_step(SGD, sparse=False, lr=0.1, momentum=0.9)
        sparse = _one_step(SGD, sparse=True, lr=0.1, momentum=0.9)
        assert np.allclose(dense, sparse, rtol=1e-12, atol=1e-15)

    def test_lazy_weight_decay_touches_only_seen_rows(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(5))
        before = np.array(emb.weight.data, copy=True)
        optimizer = SGD(emb.parameters(), lr=0.1, weight_decay=0.5)
        with sparse_embedding_grads(True):
            emb(np.array([[2, 4]])).sum().backward()
        optimizer.step()
        touched = {2, 4}
        for row in range(10):
            changed = not np.array_equal(emb.weight.data[row], before[row])
            assert changed == (row in touched), row

    def test_clip_grad_norm_matches_dense(self):
        def run(sparse):
            emb = Embedding(10, 4, rng=np.random.default_rng(6))
            with sparse_embedding_grads(sparse):
                emb(np.array([[1, 1, 5]])).sum().backward()
            norm = clip_grad_norm(emb.parameters(), 0.5)
            grad = emb.weight.grad
            if isinstance(grad, IndexedRows):
                grad = grad.to_dense()
            return norm, grad

        norm_dense, grad_dense = run(False)
        norm_sparse, grad_sparse = run(True)
        assert norm_sparse == pytest.approx(norm_dense)
        assert np.allclose(grad_dense, grad_sparse)

    def test_zero_rows_safe_on_broadcast_gradients(self):
        # sum() backward feeds a read-only broadcast view into take_rows;
        # the sparse gradient must own its rows or zero_rows would crash.
        emb = Embedding(6, 3, rng=np.random.default_rng(8), padding_idx=5)
        with sparse_embedding_grads(True):
            emb(np.array([[1, 5]])).sum().backward()
        emb.apply_padding_mask()  # must not raise / corrupt
        dense = emb.weight.grad.to_dense()
        assert np.all(dense[5] == 0.0)
        assert np.all(dense[1] == 1.0)

    def test_zero_rows_cannot_corrupt_sibling_gradients(self):
        # Two embeddings added together share one upstream grad array;
        # zeroing one table's padding row must not touch the other's grad.
        rng = np.random.default_rng(9)
        a = Embedding(4, 3, rng=rng, padding_idx=3)
        b = Embedding(4, 3, rng=rng, padding_idx=2)
        with sparse_embedding_grads(True):
            (a(np.array([[0, 2]])) + b(np.array([[2, 1]]))).sum().backward()
        a.apply_padding_mask()
        b.apply_padding_mask()
        assert np.all(a.weight.grad.to_dense()[2] == 1.0)  # real row of a intact
        assert np.all(b.weight.grad.to_dense()[2] == 0.0)  # b's padding zeroed

    def test_sgd_momentum_weight_decay_not_applied_twice(self):
        dense = _one_step(SGD, sparse=False, lr=0.1, momentum=0.9, weight_decay=0.5)
        sparse = _one_step(SGD, sparse=True, lr=0.1, momentum=0.9, weight_decay=0.5)
        # The densify fallback must not run the decayed rows through the
        # dense decay again; touched rows must match the dense update.
        indices = np.unique(np.array([1, 3, 3, 7, 1, 0]))
        assert np.allclose(dense[indices], sparse[indices], rtol=1e-12, atol=1e-15)

    def test_padding_row_stays_pinned_during_sparse_training(self):
        sequences = [np.random.default_rng(s).integers(0, 15, size=10).tolist()
                     for s in range(8)]
        model = create_model("HAMm", 8, 15, rng=np.random.default_rng(7),
                             embedding_dim=6, n_h=3, n_l=1)
        config = TrainingConfig(num_epochs=2, batch_size=16,
                                sparse_embedding_grad=True)
        Trainer(model, config).fit(sequences)
        assert np.all(model.source_item_embeddings.weight.data[15] == 0.0)
        assert np.all(model.target_item_embeddings.weight.data[15] == 0.0)


class TestAccumulationBuffer:
    def test_grad_buffer_reused_across_steps(self):
        param = Parameter(np.ones(4))
        (param * 2.0).sum().backward()
        first = param.grad
        param.zero_grad()
        (param * 3.0).sum().backward()
        assert param.grad is first  # same buffer, refilled in place
        assert param.grad.tolist() == [3.0, 3.0, 3.0, 3.0]

    def test_accumulation_without_zero_grad_still_adds(self):
        param = Parameter(np.ones(4))
        (param * 2.0).sum().backward()
        (param * 3.0).sum().backward()
        assert param.grad.tolist() == [5.0, 5.0, 5.0, 5.0]

    def test_astype_drops_stale_buffer(self):
        param = Parameter(np.ones(4))
        (param * 2.0).sum().backward()

        class Holder:
            pass

        from repro.autograd import Module

        module = Module.__new__(Module)
        module.training = True
        module.weight = param
        module.astype("float32")
        assert param.grad is None
        (param * 2.0).sum().backward()
        assert param.grad.dtype == np.float32
