"""Tests for the synergy aggregation variants (paper Section 4.2.2).

The paper's final HAMs model aggregates pairwise synergies with a sum over
partner items (Eq. 3) and a mean over window items (Eq. 4), but reports
having also tried weighted sum and max pooling.  These tests cover the
alternative aggregations provided for that design-choice ablation.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.numeric import gradient_check
from repro.models import HAMSynergy
from repro.models.synergy import INNER_AGGREGATIONS, OUTER_AGGREGATIONS, synergy_vectors


def window(batch=2, length=4, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(batch, length, dim))
    mask = np.ones((batch, length), dtype=bool)
    return Tensor(data, requires_grad=True), mask


class TestInnerAggregations:
    def test_mean_inner_matches_bruteforce(self):
        x, mask = window(batch=1, seed=1)
        data = x.data[0]
        per_item = []
        for j in range(4):
            partners = [data[j] * data[k] for k in range(4) if k != j]
            per_item.append(np.mean(partners, axis=0))
        expected = np.mean(per_item, axis=0)
        result = synergy_vectors(x, mask, order=2, inner="mean")[0]
        assert np.allclose(result.data[0], expected)

    def test_max_inner_matches_bruteforce(self):
        x, mask = window(batch=1, seed=2)
        data = x.data[0]
        per_item = []
        for j in range(4):
            partners = [data[j] * data[k] for k in range(4) if k != j]
            per_item.append(np.max(partners, axis=0))
        expected = np.mean(per_item, axis=0)
        result = synergy_vectors(x, mask, order=2, inner="max")[0]
        assert np.allclose(result.data[0], expected)

    def test_sum_and_mean_differ_by_partner_count(self):
        x, mask = window(batch=1, length=5, seed=3)
        summed = synergy_vectors(x, mask, order=2, inner="sum")[0].data
        averaged = synergy_vectors(x, mask, order=2, inner="mean")[0].data
        assert np.allclose(summed, averaged * 4.0)

    def test_max_inner_respects_padding(self):
        x, mask = window(batch=1, length=4, seed=4)
        # pad the first position: its embedding must be zero and excluded
        mask[0, 0] = False
        x.data[0, 0] = 0.0
        data = x.data[0, 1:]
        per_item = []
        for j in range(3):
            partners = [data[j] * data[k] for k in range(3) if k != j]
            per_item.append(np.max(partners, axis=0))
        expected = np.mean(per_item, axis=0)
        result = synergy_vectors(x, mask, order=2, inner="max")[0]
        assert np.allclose(result.data[0], expected)

    def test_max_inner_gradcheck(self):
        x, mask = window(batch=1, length=3, dim=2, seed=5)
        gradient_check(
            lambda: (synergy_vectors(x, mask, 2, inner="max")[0] ** 2).sum(), [x]
        )


class TestOuterAggregations:
    def test_sum_outer_scales_mean_outer(self):
        x, mask = window(batch=1, length=4, seed=6)
        mean_outer = synergy_vectors(x, mask, order=2, outer="mean")[0].data
        sum_outer = synergy_vectors(x, mask, order=2, outer="sum")[0].data
        assert np.allclose(sum_outer, mean_outer * 4.0)

    def test_max_outer_matches_bruteforce(self):
        x, mask = window(batch=1, length=4, seed=7)
        data = x.data[0]
        total = data.sum(axis=0)
        per_item = np.stack([data[j] * (total - data[j]) for j in range(4)])
        expected = per_item.max(axis=0)
        result = synergy_vectors(x, mask, order=2, outer="max")[0]
        assert np.allclose(result.data[0], expected)

    def test_unknown_aggregations_rejected(self):
        x, mask = window()
        with pytest.raises(ValueError):
            synergy_vectors(x, mask, 2, inner="median")
        with pytest.raises(ValueError):
            synergy_vectors(x, mask, 2, outer="median")


class TestHAMSynergyAggregationOptions:
    def _model(self, **kwargs):
        defaults = dict(num_users=8, num_items=25, embedding_dim=8, n_h=4, n_l=1,
                        synergy_order=2, rng=np.random.default_rng(8))
        defaults.update(kwargs)
        return HAMSynergy(**defaults)

    def test_default_matches_paper_choices(self):
        model = self._model()
        assert model.synergy_inner == "sum"
        assert model.synergy_outer == "mean"

    def test_all_combinations_produce_finite_scores(self):
        rng = np.random.default_rng(9)
        users = rng.integers(0, 8, size=3)
        inputs = rng.integers(0, 25, size=(3, 4))
        for inner in INNER_AGGREGATIONS:
            for outer in OUTER_AGGREGATIONS:
                model = self._model(synergy_inner=inner, synergy_outer=outer)
                scores = model.score_all(users, inputs)
                assert np.all(np.isfinite(scores))

    def test_aggregation_choice_changes_representation(self):
        users = np.array([0, 1])
        inputs = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
        base = self._model(rng=np.random.default_rng(10))
        alternative = self._model(rng=np.random.default_rng(10), synergy_inner="max")
        assert not np.allclose(
            base.sequence_representation(users, inputs).data,
            alternative.sequence_representation(users, inputs).data,
        )

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            self._model(synergy_inner="product")
        with pytest.raises(ValueError):
            self._model(synergy_outer="median")

    def test_gradients_flow_for_max_aggregation(self):
        model = self._model(synergy_inner="max", synergy_outer="max")
        users = np.array([0, 1])
        inputs = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
        items = np.array([[3], [9]])
        model.score_items(users, inputs, items).sum().backward()
        assert model.source_item_embeddings.weight.grad is not None
