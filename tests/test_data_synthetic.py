"""Tests for the synthetic generator, benchmark presets, loaders and stats."""

import numpy as np
import pytest

from repro.data import (
    BENCHMARKS,
    SyntheticConfig,
    compute_statistics,
    generate_synthetic_dataset,
    load_benchmark,
)
from repro.data.benchmarks import BENCHMARK_NAMES, PAPER_STATISTICS, SCALES, default_scale
from repro.data.loaders import (
    load_amazon_ratings,
    load_dataset_file,
    load_generic,
    load_goodreads_interactions,
    load_movielens,
)
from repro.data import PreprocessConfig

LENIENT = PreprocessConfig(min_interactions_per_user=1, min_interactions_per_item=1)
from repro.data.stats import log_frequency_percentiles, statistics_table


def tiny_config(**overrides):
    base = dict(
        name="tiny", num_users=30, num_items=60, mean_sequence_length=15.0,
        candidate_pool=20, seed=7,
    )
    base.update(overrides)
    return SyntheticConfig(**base)


class TestSyntheticGenerator:
    def test_shapes_and_ranges(self):
        ds = generate_synthetic_dataset(tiny_config())
        assert ds.num_users == 30
        assert ds.num_items == 60
        assert all(0 <= item < 60 for seq in ds.sequences for item in seq)

    def test_min_sequence_length_respected(self):
        ds = generate_synthetic_dataset(tiny_config())
        assert min(len(seq) for seq in ds.sequences) >= 10

    def test_mean_length_close_to_target(self):
        ds = generate_synthetic_dataset(tiny_config(num_users=100, mean_sequence_length=20.0))
        assert ds.interactions_per_user == pytest.approx(20.0, rel=0.15)

    def test_deterministic_for_fixed_seed(self):
        a = generate_synthetic_dataset(tiny_config())
        b = generate_synthetic_dataset(tiny_config())
        assert a.sequences == b.sequences

    def test_different_seeds_differ(self):
        a = generate_synthetic_dataset(tiny_config(seed=1))
        b = generate_synthetic_dataset(tiny_config(seed=2))
        assert a.sequences != b.sequences

    def test_no_immediate_repeats(self):
        ds = generate_synthetic_dataset(tiny_config())
        for seq in ds.sequences:
            assert all(a != b for a, b in zip(seq, seq[1:]))

    def test_popularity_skew_creates_inequality(self):
        skewed = generate_synthetic_dataset(tiny_config(popularity_skew=1.5, seed=3))
        flat = generate_synthetic_dataset(tiny_config(popularity_skew=0.0, seed=3))
        def gini_proxy(ds):
            freq = np.sort(ds.item_frequencies())[::-1].astype(float)
            top = freq[: max(len(freq) // 10, 1)].sum()
            return top / freq.sum()
        assert gini_proxy(skewed) > gini_proxy(flat)

    def test_metadata_carries_config(self):
        config = tiny_config()
        ds = generate_synthetic_dataset(config)
        assert ds.metadata["synthetic_config"] == config
        assert len(ds.metadata["popularity"]) == config.num_items

    def test_scaled_changes_user_count_only(self):
        config = tiny_config()
        scaled = config.scaled(2.0)
        assert scaled.num_users == 60
        assert scaled.num_items == config.num_items

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            tiny_config(num_items=1)
        with pytest.raises(ValueError):
            tiny_config(mean_sequence_length=2.0)
        with pytest.raises(ValueError):
            tiny_config(candidate_pool=1)
        with pytest.raises(ValueError):
            tiny_config(latent_dim=0)


class TestBenchmarkPresets:
    def test_all_six_datasets_present(self):
        assert set(BENCHMARK_NAMES) == {"cds", "books", "children", "comics", "ml-1m", "ml-20m"}
        assert set(PAPER_STATISTICS) == set(BENCHMARK_NAMES)

    def test_load_tiny_benchmark(self):
        ds = load_benchmark("cds", scale="tiny")
        assert ds.name == "CDs"
        assert ds.num_users > 0
        assert ds.num_interactions > 0

    def test_cache_returns_same_object(self):
        a = load_benchmark("cds", scale="tiny")
        b = load_benchmark("cds", scale="tiny")
        assert a is b

    def test_alias_resolution(self):
        assert load_benchmark("Amazon-CDs", scale="tiny") is load_benchmark("cds", scale="tiny")
        assert load_benchmark("ML1M", scale="tiny") is load_benchmark("ml-1m", scale="tiny")

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_benchmark("netflix")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            load_benchmark("cds", scale="giant")

    def test_sparsity_ordering_matches_paper(self):
        # CDs must stay the sparsest preset and ML-1M the densest in terms
        # of average interactions per user (Table 2 ordering).
        lengths = {name: BENCHMARKS[name].mean_sequence_length for name in BENCHMARK_NAMES}
        assert lengths["cds"] == min(lengths.values())
        assert lengths["ml-1m"] == max(lengths.values())

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale() == "small"
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert default_scale() == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            default_scale()

    def test_scales_are_positive(self):
        assert all(factor > 0 for factor in SCALES.values())


class TestStatistics:
    def test_compute_statistics(self):
        ds = load_benchmark("cds", scale="tiny")
        stats = compute_statistics(ds)
        assert stats.num_users == ds.num_users
        assert stats.interactions_per_user == pytest.approx(ds.interactions_per_user)
        row = stats.as_row()
        assert row["dataset"] == "CDs"
        assert row["#users"] == ds.num_users

    def test_statistics_table(self):
        rows = statistics_table([load_benchmark("cds", scale="tiny"),
                                 load_benchmark("ml-1m", scale="tiny")])
        assert len(rows) == 2
        assert rows[0]["#intrns"] > 0

    def test_log_frequency_percentiles(self):
        ds = load_benchmark("comics", scale="tiny")
        centres, percentages = log_frequency_percentiles(ds, num_bins=10)
        assert len(centres) == 10
        assert percentages.sum() == pytest.approx(100.0)
        assert np.all(percentages >= 0)


class TestLoaders:
    def test_movielens_dat(self, tmp_path):
        path = tmp_path / "ratings.dat"
        lines = []
        for user in range(3):
            for t in range(12):
                lines.append(f"{user}::{t % 8}::5::{t}")
        path.write_text("\n".join(lines))
        ds = load_movielens(path, name="ml-test", config=LENIENT)
        assert ds.num_users == 3
        assert ds.name == "ml-test"

    def test_movielens_csv_with_header(self, tmp_path):
        path = tmp_path / "ratings.csv"
        rows = ["userId,movieId,rating,timestamp"]
        for user in range(2):
            for t in range(12):
                rows.append(f"{user},{t % 6},4.5,{t}")
        path.write_text("\n".join(rows))
        ds = load_movielens(path, config=LENIENT)
        assert ds.num_users == 2

    def test_amazon_csv(self, tmp_path):
        path = tmp_path / "ratings_CDs.csv"
        rows = []
        for user in range(2):
            for t in range(15):
                rows.append(f"u{user},i{t % 7},5.0,{t}")
        path.write_text("\n".join(rows))
        ds = load_amazon_ratings(path, config=LENIENT)
        assert ds.num_users == 2
        assert ds.num_items == 7

    def test_goodreads_csv(self, tmp_path):
        path = tmp_path / "goodreads_interactions.csv"
        rows = ["user_id,book_id,is_read,rating"]
        for user in range(2):
            for t in range(12):
                rows.append(f"u{user},b{t % 6},1,5")
        path.write_text("\n".join(rows))
        ds = load_goodreads_interactions(path, config=LENIENT)
        assert ds.num_users == 2

    def test_generic_loader_skips_comments(self, tmp_path):
        path = tmp_path / "interactions.txt"
        rows = ["# comment", "user item rating timestamp"]
        for user in range(2):
            for t in range(12):
                rows.append(f"u{user} i{t % 6} 5 {t}")
        path.write_text("\n".join(rows))
        ds = load_generic(path, config=LENIENT)
        assert ds.num_users == 2

    def test_dispatch_by_name(self, tmp_path):
        path = tmp_path / "ml-1m.dat"
        lines = [f"0::{t}::5::{t}" for t in range(12)]
        lines += [f"1::{t}::5::{t}" for t in range(12)]
        path.write_text("\n".join(lines))
        ds = load_dataset_file(path, config=LENIENT)
        assert ds.num_users == 2
