"""Fast-tier run of the documentation link checker.

Keeps ``docs/*.md`` and ``README.md`` honest: a page that links to a
moved or deleted file fails the suite, not just ``make docs-check``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from scripts.docs_check import check_file, check_repo, collect_links, main

pytestmark = pytest.mark.fast

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_repo_docs_have_no_broken_links():
    errors = check_repo(REPO_ROOT)
    assert not errors, "\n".join(errors)


def test_docs_tree_exists_with_required_pages():
    for page in ("architecture.md", "serving.md", "benchmarks.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"
    # README must point readers at the docs tree.
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/serving.md", "docs/benchmarks.md"):
        assert page in readme, f"README does not link {page}"


def test_collect_links_finds_inline_reference_and_image_links():
    text = (
        "See [a](docs/a.md) and ![img](assets/b.png \"title\").\n"
        "[ref]: other/c.md\n"
        "```\n[not a link](inside/fence.md)\n```\n"
        "External [site](https://example.com) and [frag](#anchor).\n"
    )
    links = collect_links(text)
    assert "docs/a.md" in links
    assert "assets/b.png" in links
    assert "other/c.md" in links
    assert "inside/fence.md" not in links


def test_check_file_flags_broken_and_escaping_links(tmp_path):
    (tmp_path / "real.md").write_text("hello", encoding="utf-8")
    page = tmp_path / "page.md"
    page.write_text(
        "[ok](real.md) [ok-frag](real.md#part) [pure-frag](#here)\n"
        "[missing](gone.md) [outside](../../../etc/passwd)\n",
        encoding="utf-8",
    )
    errors = check_file(page, tmp_path)
    assert len(errors) == 2
    assert any("gone.md" in error for error in errors)
    assert any("escapes" in error for error in errors)


def test_main_exit_codes(tmp_path, capsys):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "good.md").write_text("[up](../README.md)", encoding="utf-8")
    (tmp_path / "README.md").write_text("[d](docs/good.md)", encoding="utf-8")
    assert main([str(tmp_path)]) == 0
    (docs / "bad.md").write_text("[x](nope.md)", encoding="utf-8")
    assert main([str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "broken link" in captured.err
