"""Disk chaos suite: the durability tier under injected disk faults.

Drives :mod:`repro.durability` through the scenarios
``docs/robustness.md`` promises, all deterministic and single-core
safe:

* WAL framing — the on-disk record bytes pinned to a golden value
  (logs written today must stay replayable by every future version),
  append/replay parity, segment rotation and compaction;
* WAL recovery — a torn tail record is truncated away (every record
  before the tear survives), a flipped bit is detected by CRC and the
  untrusted suffix dropped, appends resume at the recovered sequence;
* write faults — ENOSPC/EIO surface as typed
  :class:`~repro.durability.wal.WalWriteError` with the log intact, an
  injected torn write recovers to the pre-crash prefix;
* atomic publication — crash-before-rename never exposes a partial
  file at the target path, the checksummed envelope detects tears and
  bit flips;
* checkpoints — ``save_checkpoint`` is atomic + checksummed, every
  corruption surfaces as a typed
  :class:`~repro.training.checkpoint.CheckpointCorruptError`, legacy
  plain ``.npz`` files still load, ``repro-ham serve --checkpoint``
  exits non-zero with a one-line diagnosis;
* node journal — an :class:`~repro.cluster.node.EngineNode` with
  ``journal_dir`` restores observed interactions across a restart and
  deduplicates at-least-once sequence replay;
* router WAL — the acceptance scenario: a router with ``wal_dir``
  journals every replicated observe, a killed-and-restarted router
  rebuilds its replay state from the WAL and serves bit-identical
  top-k (fresh nodes are caught up by epoch-fenced replay), sealed
  segments compact once every watermark passes them, and a watermark
  below the compaction horizon raises
  :class:`~repro.durability.wal.WalCompactedError`.

Select with ``pytest -m chaos_disk`` or ``make chaos-disk``.  Every
test runs under the hard SIGALRM timeout installed by ``conftest.py``.
"""

from __future__ import annotations

import errno
import time

import numpy as np
import pytest

from repro.cli import CORRUPT_CHECKPOINT_EXIT_CODE, main
from repro.cluster import ClusterRouter, EngineNode, request_reply
from repro.durability import (
    DiskFaultInjector,
    DiskFaultPlan,
    EnvelopeCorruptError,
    SimulatedCrash,
    WalCompactedError,
    WalWriteError,
    WriteAheadLog,
    flip_bit,
    pack_observe,
    read_checksummed,
    unpack_observe,
    write_checksummed,
)
from repro.models import create_model
from repro.serving import ScoringEngine
from repro.training.checkpoint import (CheckpointCorruptError,
                                       load_checkpoint, save_checkpoint)

pytestmark = pytest.mark.chaos_disk

NUM_USERS = 12
NUM_ITEMS = 40
ALL_USERS = np.arange(NUM_USERS, dtype=np.int64)

#: One observe record (user 3, item 17) exactly as stored: magic,
#: u32 length, u32 CRC32, payload — little-endian.  Golden: a change
#: here breaks replay of every log already on disk.
GOLDEN_RECORD = bytes.fromhex(
    "57414c3111000000db22f2cb4f03000000000000001100000000000000")

RECORD_BYTES = 29  # 12-byte header + 17-byte observe payload


def _workload(seed: int = 0):
    """Small untrained model + histories (parity needs no training)."""
    rng = np.random.default_rng(seed)
    model = create_model("HAMs_m", NUM_USERS, NUM_ITEMS,
                         rng=np.random.default_rng(1),
                         embedding_dim=8, n_h=4, n_l=2)
    model.eval()
    histories = [
        rng.integers(0, NUM_ITEMS, size=rng.integers(8, 14)).tolist()
        for _ in range(NUM_USERS)
    ]
    return model, histories


def _serial_engine(model, histories) -> ScoringEngine:
    return ScoringEngine(model, histories, exclude_seen=True, precompute=True)


def _fresh_nodes(model, histories, tmp_path, n_nodes=2):
    """``n_nodes`` thread-served EngineNodes on fixed Unix socket paths."""
    return [
        EngineNode(_serial_engine(model, histories),
                   bind=f"unix:{tmp_path}/node{index}.sock",
                   own_engine=True, node_index=index)
        for index in range(n_nodes)
    ]


# ---------------------------------------------------------------------- #
# WAL framing and basic mechanics
# ---------------------------------------------------------------------- #
def test_wal_record_framing_matches_golden_bytes(tmp_path):
    """The on-disk record framing is pinned, byte for byte."""
    payload = pack_observe(3, 17)
    assert unpack_observe(payload) == (3, 17)
    with WriteAheadLog(tmp_path / "wal") as wal:
        assert wal.append(payload) == 0
    (segment,) = sorted((tmp_path / "wal").iterdir())
    assert segment.name == "wal-00000000000000000000.log"
    assert segment.read_bytes() == GOLDEN_RECORD
    assert len(GOLDEN_RECORD) == RECORD_BYTES


def test_wal_append_replay_rotation_and_compaction(tmp_path):
    directory = tmp_path / "wal"
    payloads = [pack_observe(user, user * 3 + 1) for user in range(7)]
    # Two records per segment: the third append would exceed 64 bytes.
    with WriteAheadLog(directory, fsync="never", segment_bytes=64) as wal:
        for index, payload in enumerate(payloads):
            assert wal.append(payload) == index
        assert [seq for seq, _ in wal.replay()] == list(range(7))
        assert wal.stats()["segments"] == 4

    # A cold reopen recovers everything and resumes the numbering.
    with WriteAheadLog(directory, fsync="never", segment_bytes=64) as wal:
        assert wal.stats()["recovered_records"] == 7
        assert wal.first_seq == 0 and wal.next_seq == 7
        assert [payload for _, payload in wal.replay()] == payloads

        # Compaction deletes exactly the sealed segments wholly below
        # the bound; sequence numbers survive (encoded in filenames).
        assert wal.has_compactable(4)
        result = wal.compact(keep_from_seq=4)
        assert result["segments_deleted"] == 2
        assert result["bytes_reclaimed"] == 4 * RECORD_BYTES
        assert wal.first_seq == 4
        assert [seq for seq, _ in wal.replay()] == [4, 5, 6]
        assert not wal.has_compactable(4)


# ---------------------------------------------------------------------- #
# WAL recovery: torn tails, bit flips, write faults
# ---------------------------------------------------------------------- #
def test_wal_recovery_truncates_torn_tail(tmp_path):
    directory = tmp_path / "wal"
    with WriteAheadLog(directory, fsync="never") as wal:
        for user in range(5):
            wal.append(pack_observe(user, user + 20))
    (segment,) = sorted(directory.iterdir())
    data = segment.read_bytes()
    segment.write_bytes(data[:-10])  # power loss mid-write of record 4

    wal = WriteAheadLog(directory, fsync="never")
    try:
        stats = wal.stats()
        assert stats["recovered_records"] == 4
        assert stats["truncated_tail_bytes"] == RECORD_BYTES - 10
        replayed = [unpack_observe(payload) for _, payload in wal.replay()]
        assert replayed == [(user, user + 20) for user in range(4)]
        # Appends resume at the truncated slot; the log is whole again.
        assert wal.append(pack_observe(9, 9)) == 4
    finally:
        wal.close()


def test_wal_recovery_detects_bit_flip_and_drops_later_segments(tmp_path):
    directory = tmp_path / "wal"
    with WriteAheadLog(directory, fsync="never",
                       segment_bytes=4 * RECORD_BYTES) as wal:
        for user in range(10):
            wal.append(pack_observe(user, user))
    segments = sorted(directory.iterdir())
    assert len(segments) == 3
    # Flip one payload bit of record 2 (inside the first segment): the
    # CRC must catch it, keep records 0-1 and drop the whole suffix —
    # later segments cannot be trusted to be contiguous with it.
    flip_bit(segments[0], byte=2 * RECORD_BYTES + 12, bit=3)

    wal = WriteAheadLog(directory, fsync="never")
    try:
        stats = wal.stats()
        assert stats["recovered_records"] == 2
        assert stats["dropped_segments"] == 2
        assert wal.next_seq == 2
        assert [seq for seq, _ in wal.replay()] == [0, 1]
    finally:
        wal.close()


def test_flip_bit_is_deterministic_for_a_seed(tmp_path):
    for name in ("a.bin", "b.bin"):
        (tmp_path / name).write_bytes(bytes(range(64)))
    first = flip_bit(tmp_path / "a.bin", seed=7, key=(1,))
    second = flip_bit(tmp_path / "b.bin", seed=7, key=(1,))
    assert first == second
    assert (tmp_path / "a.bin").read_bytes() == (tmp_path / "b.bin").read_bytes()


def test_wal_enospc_is_typed_and_leaves_log_intact(tmp_path):
    directory = tmp_path / "wal"
    injector = DiskFaultInjector(DiskFaultPlan.no_space(at_op=3))
    wal = WriteAheadLog(directory, fsync="never", fault_injector=injector)
    try:
        wal.append(pack_observe(0, 1))
        wal.append(pack_observe(1, 2))
        with pytest.raises(WalWriteError) as excinfo:
            wal.append(pack_observe(2, 3))
        assert excinfo.value.errno == errno.ENOSPC
        assert str(directory) in str(excinfo.value.path.parent) or \
            excinfo.value.path.parent == directory
        # The failed append was truncated away; the log keeps working
        # and the sequence number is reused by the next success.
        assert wal.append(pack_observe(2, 3)) == 2
    finally:
        wal.close()
    with WriteAheadLog(directory, fsync="never") as wal:
        assert wal.stats()["recovered_records"] == 3


def test_wal_injected_torn_write_recovers_prefix(tmp_path):
    directory = tmp_path / "wal"
    injector = DiskFaultInjector(DiskFaultPlan.torn_write(at_op=2, at_byte=7))
    wal = WriteAheadLog(directory, fsync="never", fault_injector=injector)
    wal.append(pack_observe(5, 6))
    with pytest.raises(SimulatedCrash):
        wal.append(pack_observe(7, 8))
    # No close(): the "process" died with 7 torn bytes on disk.
    reopened = WriteAheadLog(directory, fsync="never")
    try:
        stats = reopened.stats()
        assert stats["recovered_records"] == 1
        assert stats["truncated_tail_bytes"] == 7
        assert [unpack_observe(p) for _, p in reopened.replay()] == [(5, 6)]
        assert reopened.append(pack_observe(7, 8)) == 1
    finally:
        reopened.close()


# ---------------------------------------------------------------------- #
# Atomic publication + checksummed envelope
# ---------------------------------------------------------------------- #
def test_crash_before_rename_never_exposes_partial_file(tmp_path):
    target = tmp_path / "state.bin"
    write_checksummed(target, b"generation-1")
    injector = DiskFaultInjector(DiskFaultPlan.crash_before_rename())
    with pytest.raises(SimulatedCrash):
        write_checksummed(target, b"generation-2", fault_injector=injector)
    # The target still reads the previous generation, fully intact —
    # the torn attempt lives only in the (crash-orphaned) temp file.
    assert read_checksummed(target) == b"generation-1"
    orphans = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
    assert orphans, "the crash should have orphaned a temp file"


def test_envelope_detects_tear_and_bit_flip(tmp_path):
    target = tmp_path / "state.bin"
    write_checksummed(target, b"payload-bytes")
    assert read_checksummed(target) == b"payload-bytes"

    flip_bit(target, byte=target.stat().st_size - 1, bit=0)
    with pytest.raises(EnvelopeCorruptError, match="CRC32 mismatch"):
        read_checksummed(target)

    write_checksummed(target, b"payload-bytes")
    target.write_bytes(target.read_bytes()[:-4])  # torn write
    with pytest.raises(EnvelopeCorruptError, match="torn envelope"):
        read_checksummed(target)

    target.write_bytes(b"not an envelope at all")
    with pytest.raises(EnvelopeCorruptError, match="bad envelope magic"):
        read_checksummed(target)


# ---------------------------------------------------------------------- #
# Checkpoints: atomic, checksummed, typed corruption errors
# ---------------------------------------------------------------------- #
def test_checkpoint_roundtrip_and_crash_mid_save_preserves_previous(tmp_path):
    model, _ = _workload()
    path = tmp_path / "model.npz"
    save_checkpoint(model, path, metadata={"generation": 1})

    clone = create_model("HAMs_m", NUM_USERS, NUM_ITEMS,
                         rng=np.random.default_rng(99),
                         embedding_dim=8, n_h=4, n_l=2)
    metadata = load_checkpoint(clone, path)
    assert metadata == {"generation": 1}
    for name, value in model.state_dict().items():
        assert np.array_equal(clone.state_dict()[name], value), name

    # A crash between the temp write and the rename must leave the
    # previous checkpoint untouched at the target path.
    injector = DiskFaultInjector(DiskFaultPlan.crash_before_rename())
    with pytest.raises(SimulatedCrash):
        save_checkpoint(model, path, metadata={"generation": 2},
                        fault_injector=injector)
    assert load_checkpoint(clone, path) == {"generation": 1}

    # So must a torn write of the temp file itself.
    injector = DiskFaultInjector(DiskFaultPlan.torn_write(at_op=1, at_byte=64))
    with pytest.raises(SimulatedCrash):
        save_checkpoint(model, path, metadata={"generation": 3},
                        fault_injector=injector)
    assert load_checkpoint(clone, path) == {"generation": 1}


def test_corrupt_checkpoint_raises_typed_error(tmp_path):
    model, _ = _workload()
    path = save_checkpoint(model, tmp_path / "model.npz")
    flip_bit(path, byte=path.stat().st_size // 2, bit=5)
    clone = create_model("HAMs_m", NUM_USERS, NUM_ITEMS,
                         rng=np.random.default_rng(99),
                         embedding_dim=8, n_h=4, n_l=2)
    with pytest.raises(CheckpointCorruptError) as excinfo:
        load_checkpoint(clone, path)
    assert str(path) in str(excinfo.value)
    assert excinfo.value.path == path

    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"\x00" * 200)
    with pytest.raises(CheckpointCorruptError):
        load_checkpoint(clone, garbage)


def test_legacy_plain_npz_checkpoint_still_loads(tmp_path):
    model, _ = _workload()
    import json

    legacy = tmp_path / "legacy.npz"
    state = dict(model.state_dict())
    state["__metadata__"] = np.frombuffer(
        json.dumps({"legacy": True}).encode("utf-8"), dtype=np.uint8)
    with open(legacy, "wb") as handle:
        np.savez(handle, **state)  # pre-envelope format: a bare zip
    clone = create_model("HAMs_m", NUM_USERS, NUM_ITEMS,
                         rng=np.random.default_rng(99),
                         embedding_dim=8, n_h=4, n_l=2)
    assert load_checkpoint(clone, legacy) == {"legacy": True}
    for name, value in model.state_dict().items():
        assert np.array_equal(clone.state_dict()[name], value), name


def test_cli_serve_exits_nonzero_on_corrupt_checkpoint(tmp_path, capsys):
    corrupt = tmp_path / "model.npz"
    corrupt.write_bytes(b"\xde\xad\xbe\xef" * 50)
    code = main(["serve", "--checkpoint", str(corrupt), "--scale", "tiny"])
    captured = capsys.readouterr()
    assert code == CORRUPT_CHECKPOINT_EXIT_CODE
    assert captured.err.startswith("error: ")
    assert "corrupt checkpoint" in captured.err
    assert str(corrupt) in captured.err


# ---------------------------------------------------------------------- #
# EngineNode: local journal and sequence dedup
# ---------------------------------------------------------------------- #
def test_engine_node_journal_restores_observes_across_restart(tmp_path):
    model, histories = _workload()
    mirror = _serial_engine(model, histories)
    journal = tmp_path / "journal"
    observed = [(0, 3), (5, 17), (0, 21)]

    with EngineNode(_serial_engine(model, histories), own_engine=True,
                    bind=f"unix:{tmp_path}/node.sock",
                    journal_dir=str(journal)) as node:
        for user, item in observed:
            request_reply(node.address, "observe",
                          {"user": user, "item": item})
            mirror.observe(user, item)
        assert node.stats()["observes_journaled"] == len(observed)

    # A fresh process: base engine + the journal = the old state.
    with EngineNode(_serial_engine(model, histories), own_engine=True,
                    bind=f"unix:{tmp_path}/node.sock",
                    journal_dir=str(journal)) as node:
        assert node.stats()["journal_replayed"] == len(observed)
        ranked = request_reply(node.address, "top_k", {"k": 5},
                               {"users": ALL_USERS}).array("ranked")
    assert np.array_equal(ranked, mirror.top_k(ALL_USERS, 5))


def test_engine_node_dedups_sequence_replay(tmp_path):
    model, histories = _workload()
    mirror = _serial_engine(model, histories)
    mirror.observe(2, 9)
    with EngineNode(_serial_engine(model, histories),
                    own_engine=True) as node:
        first = request_reply(node.address, "observe",
                              {"user": 2, "item": 9, "seq": 4})
        assert "deduped" not in first.meta
        # At-least-once redelivery of the same sequence number (the
        # router replaying after its own crash) must not double-apply.
        second = request_reply(node.address, "observe",
                               {"user": 2, "item": 9, "seq": 4})
        assert second.meta["deduped"] is True
        stats = node.stats()
        assert stats["applied_seq"] == 4
        assert stats["observes_deduped"] == 1
        ranked = request_reply(node.address, "top_k", {"k": 5},
                               {"users": ALL_USERS}).array("ranked")
    assert np.array_equal(ranked, mirror.top_k(ALL_USERS, 5))


# ---------------------------------------------------------------------- #
# ClusterRouter over a WAL: the acceptance scenarios
# ---------------------------------------------------------------------- #
def test_router_restart_restores_watermarks_without_replay(tmp_path):
    """Clean restart, nodes stayed up: watermarks come from the WAL.

    The journaled (watermark, epoch) pairs match the live nodes, so the
    restarted router neither loses the observe log nor re-replays it.
    """
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _fresh_nodes(model, histories, tmp_path)
    addresses = [node.address for node in nodes]
    observed = [(2, 9), (2, 11), (7, 30)]
    try:
        with ClusterRouter(addresses, heartbeat_interval_s=0.0,
                           wal_dir=str(tmp_path / "wal")) as router:
            for user, item in observed:
                router.observe(user, item)
                serial.observe(user, item)
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))

        with ClusterRouter(addresses, heartbeat_interval_s=0.0,
                           wal_dir=str(tmp_path / "wal")) as router:
            stats = router.stats()
            assert stats["wal_recovered_observes"] == len(observed)
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            health = router.health()
            assert health["observe_log_len"] == len(observed)
            assert health["wal"]["directory"] == str(tmp_path / "wal")
            # Same epochs, journaled watermarks: nothing to replay.
            assert router.stats()["observes_replayed"] == 0
    finally:
        for node in nodes:
            node.close()


def test_router_killed_midstream_replays_wal_to_fresh_nodes(tmp_path):
    """The tentpole acceptance test: SIGKILL the router, lose nothing.

    The first router journals replicated observes to its WAL and dies
    without any shutdown (no close, no final sync — ``fsync="always"``
    made every append durable at append time).  Both nodes are then
    replaced by fresh processes booted from the base snapshot.  A new
    router on the same ``wal_dir`` must rebuild the observe log, fence
    the fresh epochs, replay every observe — and serve top-k
    bit-identical to a serial engine that saw the same interactions.
    """
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _fresh_nodes(model, histories, tmp_path)
    addresses = [node.address for node in nodes]
    observed = [(2, 9), (2, 11), (7, 30), (0, 13)]
    crashed = ClusterRouter(addresses, heartbeat_interval_s=0.0,
                            wal_dir=str(tmp_path / "wal"), wal_fsync="always")
    try:
        assert np.array_equal(crashed.top_k(ALL_USERS, 5),
                              serial.top_k(ALL_USERS, 5))
        for user, item in observed:
            crashed.observe(user, item)
            serial.observe(user, item)
        # --- SIGKILL: the router object is abandoned mid-stream. ------ #

        # The whole cluster is also replaced: fresh processes, fresh
        # epochs, base snapshot (the rejoin contract).
        for node in nodes:
            node.close()
        nodes = _fresh_nodes(model, histories, tmp_path)

        with ClusterRouter(addresses, heartbeat_interval_s=0.0,
                           wal_dir=str(tmp_path / "wal")) as router:
            stats = router.stats()
            assert stats["wal_recovered_observes"] == len(observed)
            # Epoch fencing reset every fresh node's watermark to zero;
            # the request path replays the log before answering.
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
            stats = router.stats()
            assert stats["observes_replayed"] >= len(observed)
            health = router.health()
            assert all(entry["rejoins"] >= 1 for entry in health["nodes"])
            # And each fresh node answers for itself, observes included.
            for node in nodes:
                ranked = request_reply(node.address, "top_k", {"k": 5},
                                       {"users": ALL_USERS}).array("ranked")
                assert np.array_equal(ranked, serial.top_k(ALL_USERS, 5))
    finally:
        crashed.close()
        for node in nodes:
            node.close()


def test_router_wal_write_error_fails_observe_before_any_replica(tmp_path):
    """What cannot be made durable is not applied anywhere."""
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _fresh_nodes(model, histories, tmp_path)
    # Appends per observe: one O record, then one W record per replica.
    # Observe #1 = writes 1-3; the fourth write is observe #2's O.
    injector = DiskFaultInjector(DiskFaultPlan.no_space(at_op=4))
    try:
        with ClusterRouter([node.address for node in nodes],
                           heartbeat_interval_s=0.0,
                           wal_dir=str(tmp_path / "wal"),
                           wal_fault_injector=injector) as router:
            router.observe(2, 9)
            serial.observe(2, 9)
            with pytest.raises(WalWriteError) as excinfo:
                router.observe(2, 11)  # journal append hits ENOSPC
            assert excinfo.value.errno == errno.ENOSPC
            router.observe(7, 30)
            serial.observe(7, 30)
            stats = router.stats()
            assert stats["wal_write_errors"] == 1
            assert stats["observes"] == 2
            # The failed observe reached no replica: parity holds with
            # a serial engine that never saw it.
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))
    finally:
        for node in nodes:
            node.close()


def test_router_compacts_wal_and_fences_stale_watermarks(tmp_path):
    model, histories = _workload()
    serial = _serial_engine(model, histories)
    nodes = _fresh_nodes(model, histories, tmp_path)
    rng = np.random.default_rng(3)
    try:
        # Tiny segments: every couple of records seals one, so the
        # watermarks pass whole segments quickly.
        with ClusterRouter([node.address for node in nodes],
                           heartbeat_interval_s=0.0,
                           wal_dir=str(tmp_path / "wal"),
                           wal_segment_bytes=128) as router:
            for _ in range(8):
                user = int(rng.integers(0, NUM_USERS))
                item = int(rng.integers(0, NUM_ITEMS))
                router.observe(user, item)
                serial.observe(user, item)
            before = router.health()["wal"]["segments"]
            router._maybe_compact()  # the heartbeat's idle-time sweep
            health = router.health()
            assert router.stats()["wal_compactions"] >= 1
            assert health["wal"]["segments"] < before
            assert health["compacted_below"] > 0
            assert health["observe_log_len"] < 8
            assert np.array_equal(router.top_k(ALL_USERS, 5),
                                  serial.top_k(ALL_USERS, 5))

            # A node whose watermark predates the horizon cannot be
            # caught up by replay — the typed error tells the operator
            # to bootstrap it from a live peer snapshot instead.
            router.observe(1, 5)  # a live entry above the horizon
            serial.observe(1, 5)
            client = router._clients[0]
            with client.lock:
                client.watermark = 0
                with pytest.raises(WalCompactedError):
                    router._catch_up_locked(client,
                                            time.monotonic() + 5.0)
            assert router.stats()["catch_up_impossible"] == 1
    finally:
        for node in nodes:
            node.close()
