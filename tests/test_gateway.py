"""Tests for the online serving gateway and its score-row cache.

Covers the satellite checklist of the gateway PR: TTL expiry (with an
injected fake clock), LRU eviction order, invalidation on ``observe()``,
flush-on-deadline vs flush-on-full, and the tentpole contract — gateway
micro-batched results bit-identical to direct ``ScoringEngine`` calls.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.models import create_model
from repro.serving import ScoreRowCache, ScoringEngine, ServingGateway
from repro.training.bench import synthetic_training_histories

pytestmark = pytest.mark.fast

NUM_USERS = 24
NUM_ITEMS = 40


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def build_engine(**kwargs):
    model = create_model("HAMs_m", NUM_USERS, NUM_ITEMS,
                         rng=np.random.default_rng(0),
                         embedding_dim=8, n_h=4, n_l=2)
    histories = synthetic_training_histories(NUM_USERS, NUM_ITEMS, 12, seed=0)
    return ScoringEngine(model, histories, exclude_seen=True, precompute=True,
                         **kwargs)


# ---------------------------------------------------------------------- #
# ScoreRowCache
# ---------------------------------------------------------------------- #
def test_cache_hit_miss_counters_and_hit_rate():
    cache = ScoreRowCache(capacity=4)
    row = np.arange(5.0)
    assert cache.get("a") is None
    cache.put("a", row)
    hit = cache.get("a")
    np.testing.assert_array_equal(hit, row)
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
    assert stats.requests == 2
    assert stats.hit_rate == 0.5
    assert stats.as_dict()["hit_rate"] == 0.5


def test_cache_stores_an_owned_copy():
    cache = ScoreRowCache(capacity=2)
    row = np.arange(4.0)
    cache.put("a", row)
    row[0] = 99.0
    assert cache.get("a")[0] == 0.0


def test_cache_lru_eviction_order():
    cache = ScoreRowCache(capacity=3)
    for key in ("a", "b", "c"):
        cache.put(key, np.zeros(2))
    cache.get("a")                 # refresh "a": LRU order is now b, c, a
    cache.put("d", np.zeros(2))    # evicts "b", the least recently used
    assert "b" not in cache
    assert "a" in cache and "c" in cache and "d" in cache
    assert cache.stats().evictions == 1
    cache.put("e", np.zeros(2))    # evicts "c"
    assert "c" not in cache
    assert cache.stats().evictions == 2
    assert len(cache) == 3


def test_cache_put_replace_refreshes_lru_position():
    cache = ScoreRowCache(capacity=2)
    cache.put("a", np.zeros(2))
    cache.put("b", np.zeros(2))
    cache.put("a", np.ones(2))     # replace refreshes "a"
    cache.put("c", np.zeros(2))    # so "b" is evicted, not "a"
    assert "a" in cache and "b" not in cache
    assert cache.get("a")[0] == 1.0


def test_cache_ttl_expiry_with_fake_clock():
    clock = FakeClock()
    cache = ScoreRowCache(capacity=4, ttl_s=10.0, clock=clock)
    cache.put("a", np.zeros(2))
    clock.advance(9.999)
    assert cache.get("a") is not None
    clock.advance(0.001)           # exactly at the deadline -> expired
    assert cache.get("a") is None
    stats = cache.stats()
    assert stats.expirations == 1
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.size == 0
    # Re-inserting restarts the TTL window.
    cache.put("a", np.zeros(2))
    clock.advance(5.0)
    assert cache.get("a") is not None


def test_cache_invalidate_user_drops_masked_and_raw_rows():
    cache = ScoreRowCache(capacity=8)
    cache.put((3, True), np.zeros(2))
    cache.put((3, False), np.zeros(2))
    cache.put((4, True), np.zeros(2))
    assert cache.invalidate_user(3) == 2
    assert (3, True) not in cache and (3, False) not in cache
    assert (4, True) in cache
    assert cache.stats().invalidations == 2
    assert cache.invalidate_user(3) == 0


def test_cache_clear_counts_invalidations():
    cache = ScoreRowCache(capacity=4)
    cache.put("a", np.zeros(2))
    cache.put("b", np.zeros(2))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats().invalidations == 2


def test_cache_rejects_bad_configuration():
    with pytest.raises(ValueError):
        ScoreRowCache(capacity=0)
    with pytest.raises(ValueError):
        ScoreRowCache(capacity=4, ttl_s=0.0)


# ---------------------------------------------------------------------- #
# Gateway batching semantics
# ---------------------------------------------------------------------- #
def test_gateway_results_bit_identical_to_engine():
    engine = build_engine()
    users = np.arange(NUM_USERS, dtype=np.int64)
    direct = engine.top_k(users, 7)
    with ServingGateway(engine, max_batch=6, max_wait_ms=5.0,
                        cache_size=NUM_USERS) as gateway:
        futures = [gateway.submit(int(user), 7) for user in users]
        batched = np.stack([future.result(timeout=30.0) for future in futures])
        # Repeat requests are served from the row cache, still identical.
        repeat = np.stack([gateway.top_k(int(user), 7) for user in users[:8]])
        stats = gateway.stats()
    np.testing.assert_array_equal(direct, batched)
    np.testing.assert_array_equal(direct[:8], repeat)
    assert stats.requests == NUM_USERS + 8
    assert stats.cache is not None and stats.cache.hits > 0


def test_gateway_unmasked_and_mixed_k_requests_match_engine():
    engine = build_engine()
    with ServingGateway(engine, max_batch=8, max_wait_ms=5.0,
                        cache_size=8) as gateway:
        masked = gateway.submit(1, 5)
        raw = gateway.submit(1, 5, exclude_seen=False)
        wide = gateway.submit(2, 11)
        np.testing.assert_array_equal(
            masked.result(timeout=30.0),
            engine.top_k(np.asarray([1]), 5)[0])
        np.testing.assert_array_equal(
            raw.result(timeout=30.0),
            engine.top_k(np.asarray([1]), 5, exclude_seen=False)[0])
        np.testing.assert_array_equal(
            wide.result(timeout=30.0),
            engine.top_k(np.asarray([2]), 11)[0])


def test_gateway_recommend_matches_engine_recommendations():
    engine = build_engine()
    direct = engine.recommend(5, k=6)
    with ServingGateway(engine, max_batch=4, max_wait_ms=5.0) as gateway:
        via_gateway = gateway.recommend(5, k=6)
    assert via_gateway == direct


def test_gateway_flush_on_full_does_not_wait_for_deadline():
    engine = build_engine()
    # The deadline is far away; only the size trigger can flush quickly.
    with ServingGateway(engine, max_batch=4, max_wait_ms=60_000.0,
                        cache_size=0) as gateway:
        start = time.monotonic()
        futures = [gateway.submit(user, 3) for user in range(4)]
        for future in futures:
            future.result(timeout=30.0)
        elapsed = time.monotonic() - start
        stats = gateway.stats()
    assert elapsed < 10.0, "full batch waited for the deadline"
    assert stats.flush_full == 1
    assert stats.flush_deadline == 0
    assert stats.max_batch_observed == 4


def test_gateway_flush_on_deadline_serves_partial_batch():
    engine = build_engine()
    # Far fewer requests than max_batch: only the deadline can flush.
    with ServingGateway(engine, max_batch=64, max_wait_ms=30.0,
                        cache_size=0) as gateway:
        start = time.monotonic()
        futures = [gateway.submit(user, 3) for user in range(2)]
        rows = [future.result(timeout=30.0) for future in futures]
        elapsed = time.monotonic() - start
        stats = gateway.stats()
    assert len(rows) == 2
    assert elapsed >= 0.025, "partial batch flushed before its deadline"
    assert stats.flush_deadline >= 1
    assert stats.flush_full == 0


def test_gateway_close_drains_pending_requests():
    engine = build_engine()
    gateway = ServingGateway(engine, max_batch=64, max_wait_ms=60_000.0,
                             cache_size=0)
    futures = [gateway.submit(user, 3) for user in range(3)]
    gateway.close()  # must resolve the queued requests, not strand them
    for future in futures:
        assert future.result(timeout=1.0).shape == (3,)
    assert gateway.stats().flush_drain >= 1
    with pytest.raises(RuntimeError):
        gateway.submit(0, 3)


def test_gateway_validates_requests_at_submit():
    engine = build_engine()
    with ServingGateway(engine, max_batch=4, max_wait_ms=1.0) as gateway:
        with pytest.raises(ValueError):
            gateway.submit(NUM_USERS, 3)
        with pytest.raises(ValueError):
            gateway.submit(0, 0)
    with pytest.raises(ValueError):
        ServingGateway(engine, max_batch=0)
    with pytest.raises(ValueError):
        ServingGateway(engine, max_wait_ms=-1.0)
    with pytest.raises(ValueError):
        ServingGateway(engine, cache_ttl_s=0.0)


# ---------------------------------------------------------------------- #
# observe() integration
# ---------------------------------------------------------------------- #
def test_gateway_observe_invalidates_only_that_users_rows():
    engine = build_engine()
    with ServingGateway(engine, max_batch=4, max_wait_ms=5.0,
                        cache_size=32) as gateway:
        before_3 = gateway.top_k(3, 5)
        gateway.top_k(7, 5)
        invalidations_before = gateway.stats().cache.invalidations

        new_item = int(before_3[0])  # recommend -> user interacts with it
        gateway.observe(3, new_item)

        stats = gateway.stats()
        assert stats.cache.invalidations > invalidations_before
        after_3 = gateway.top_k(3, 5)
        # The observed item is now part of user 3's history, so the
        # masked ranking must exclude it.
        assert new_item not in after_3
        np.testing.assert_array_equal(
            after_3, engine.top_k(np.asarray([3]), 5)[0])
        # User 7's cached row survived: serving it is still a cache hit.
        hits_before = gateway.stats().cache.hits
        gateway.top_k(7, 5)
        assert gateway.stats().cache.hits == hits_before + 1


def test_gateway_refresh_clears_cache_on_serial_engines_only():
    from repro.parallel import ShardedScoringEngine

    engine = build_engine()
    with ServingGateway(engine, max_batch=4, max_wait_ms=5.0,
                        cache_size=8) as gateway:
        gateway.top_k(0, 5)
        assert gateway.stats().cache.size == 1
        gateway.refresh()
        assert gateway.stats().cache.size == 0

    sharded = ShardedScoringEngine(engine.model,
                                   [engine.history(user)
                                    for user in range(NUM_USERS)],
                                   n_workers=1)
    try:
        with ServingGateway(sharded, max_batch=4, max_wait_ms=5.0) as gateway:
            with pytest.raises(NotImplementedError):
                gateway.refresh()
    finally:
        sharded.close()


def test_gateway_ttl_expiry_forces_rescore():
    engine = build_engine()
    with ServingGateway(engine, max_batch=4, max_wait_ms=5.0,
                        cache_size=8, cache_ttl_s=60.0) as gateway:
        clock = FakeClock()
        gateway.cache._clock = clock  # rewire to the deterministic clock
        gateway.top_k(2, 5)
        misses_before = gateway.stats().cache.misses
        clock.advance(61.0)
        row = gateway.top_k(2, 5)
        stats = gateway.stats()
    assert stats.cache.expirations == 1
    assert stats.cache.misses == misses_before + 1
    np.testing.assert_array_equal(row, engine.top_k(np.asarray([2]), 5)[0])
