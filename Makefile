# Convenience targets; the canonical test command is in ROADMAP.md.

PYTHON ?= python

.PHONY: test test-fast chaos docs-check bench-gateway

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest -m fast -q

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -m chaos -q -s

docs-check:
	$(PYTHON) -m scripts.docs_check

bench-gateway:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_gateway_throughput.py -q -s
