# Convenience targets; the canonical test command is in ROADMAP.md.

PYTHON ?= python

# Hard per-test wall-clock bound of the chaos-net tier (conftest.py).
CHAOS_NET_TIMEOUT_S ?= 120

.PHONY: test test-fast chaos chaos-net docs-check bench-gateway \
	bench-resilience bench-cluster

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest -m fast -q

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -m chaos -q -s

chaos-net:
	PYTHONPATH=src REPRO_CHAOS_NET_TIMEOUT_S=$(CHAOS_NET_TIMEOUT_S) \
		$(PYTHON) -m pytest -m chaos_net -q -s

docs-check:
	$(PYTHON) -m scripts.docs_check

bench-gateway:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_gateway_throughput.py -q -s

bench-resilience:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_resilience_recovery.py -q -s

bench-cluster:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_cluster_failover.py -q -s
