# Convenience targets; the canonical test command is in ROADMAP.md.

PYTHON ?= python

# Hard per-test wall-clock bounds of the chaos tiers (conftest.py).
CHAOS_NET_TIMEOUT_S ?= 120
CHAOS_DISK_TIMEOUT_S ?= 120

.PHONY: test test-fast chaos chaos-net chaos-disk chaos-all docs-check \
	bench-gateway bench-resilience bench-cluster bench-durability \
	bench-ann bench-all

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest -m fast -q

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -m chaos -q -s

chaos-net:
	PYTHONPATH=src REPRO_CHAOS_NET_TIMEOUT_S=$(CHAOS_NET_TIMEOUT_S) \
		$(PYTHON) -m pytest -m chaos_net -q -s

chaos-disk:
	PYTHONPATH=src REPRO_CHAOS_DISK_TIMEOUT_S=$(CHAOS_DISK_TIMEOUT_S) \
		$(PYTHON) -m pytest -m chaos_disk -q -s

chaos-all:
	PYTHONPATH=src \
		REPRO_CHAOS_NET_TIMEOUT_S=$(CHAOS_NET_TIMEOUT_S) \
		REPRO_CHAOS_DISK_TIMEOUT_S=$(CHAOS_DISK_TIMEOUT_S) \
		$(PYTHON) -m pytest -m "chaos or chaos_net or chaos_disk" -q -s

docs-check:
	$(PYTHON) -m scripts.docs_check

bench-gateway:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_gateway_throughput.py -q -s

bench-resilience:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_resilience_recovery.py -q -s

bench-cluster:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_cluster_failover.py -q -s

bench-durability:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_durability_wal.py -q -s

bench-ann:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_ann_retrieval.py -q -s

bench-all:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench-all
