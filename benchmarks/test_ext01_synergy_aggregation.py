"""Extension — synergy aggregation operators (DESIGN.md 3b, paper Section 4.2.2).

The paper states it tried weighted-sum and max pooling in Eq. 3/4 before
settling on sum (inner) + mean (outer) but does not report those numbers;
this bench regenerates the comparison on the CDs analogue.
"""

from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment


def test_ext_synergy_aggregation(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("ext-synergy")
    output = run_once(
        benchmark,
        lambda: spec.run(dataset="cds", scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("ext_synergy", output["text"])

    rows = output["rows"]
    assert len(rows) >= 2
    combinations = {(row["inner"], row["outer"]) for row in rows}
    assert ("sum", "mean") in combinations
    for row in rows:
        assert 0.0 <= row["Recall@10"] <= 1.0

    # Shape claim: the paper's choice should be competitive with every
    # alternative aggregation (within a generous tolerance at bench scale).
    paper_choice = next(row for row in rows if row["paper_choice"])
    best = max(row["Recall@10"] for row in rows)
    assert paper_choice["Recall@10"] >= 0.7 * best
