"""Resilience benchmark: crash recovery of the sharded serving engine.

The failure-path counterpart of ``test_parallel_throughput.py``: the
same synthetic HAM workload runs through
:func:`~repro.parallel.resilience_bench.run_resilience_benchmark`, which
SIGKILLs the shard-0 worker mid-sweep (respawn scenario) and then kills
it in every incarnation under a two-restart budget (degraded scenario).
The result is persisted as ``benchmarks/results/BENCH_resilience.json``
under the unified schema.

Unlike throughput, recovery *correctness* needs no real cores, so both
bit-parity assertions and the recovery-time metric hold on single-core
runners too; only the post-recovery throughput guard keys off the
``cpu_count`` recorded in the artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench_schema import read_bench_report
from repro.parallel.resilience_bench import (
    run_resilience_benchmark,
    write_resilience_report,
)

pytestmark = pytest.mark.chaos

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_resilience.json"


def test_resilience_kill_recover_degrade():
    report = run_resilience_benchmark(n_workers=2, seed=0)

    write_resilience_report(report, RESULTS_PATH)
    print()
    print(report.summary())

    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["recovery_overhead_s"] == report.recovery_overhead_s

    # The acceptance bar: a SIGKILL mid-stream must cost exactly one
    # respawn (no restart storm), re-dispatch the in-flight sub-request,
    # and never change a single ranked id afterwards.
    assert report.worker_deaths == 1 and report.restarts == 1
    assert report.redispatched >= 1
    assert report.post_recovery_bit_identical, (
        "post-respawn top-k diverged from serial")
    assert report.recovery_overhead_s < 30.0, report.summary()

    # Budget exhaustion must land in degraded serial mode, still
    # bit-identical.
    assert report.degraded_shards == 1
    assert report.degraded_bit_identical, (
        "degraded-mode top-k diverged from serial")


def test_resilience_bench_regression_guard():
    """Fail if a recorded run ever lost parity or recovered slowly."""
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_resilience.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["post_recovery_bit_identical"] is True
    assert persisted["degraded_bit_identical"] is True
    assert persisted["recovery_overhead_s"] < 30.0
    if persisted.get("cpu_count", 1) < 2:
        pytest.skip("artifact was recorded on a single-core runner")
    # With real cores the respawned shard must get back to within 3x of
    # the healthy baseline (generous: p50 over few repeats is noisy).
    assert persisted["post_recovery_p50_s"] <= 3.0 * persisted["baseline_p50_s"]
