"""Table 14 — testing run-time per user and speedup of HAMs_m."""

import numpy as np
from conftest import emit_report, run_once

from repro.data.benchmarks import BENCHMARK_NAMES
from repro.experiments.registry import get_experiment


def test_table14_runtime_comparison(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("table14")
    output = run_once(
        benchmark,
        lambda: spec.run(scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("table14", output["text"])

    rows = output["rows"]
    assert len(rows) == len(BENCHMARK_NAMES)

    # Core claim of Section 6.7: the pooling-based HAMs_m scores users
    # faster than the convolutional (Caser) and self-attention (SASRec)
    # baselines.  Per-dataset times are microseconds at bench scale, so the
    # per-row check only guards against gross inversions and the claim is
    # asserted on the averages over datasets.
    for row in rows:
        ham = float(row["HAMs_m"])
        caser = float(row["Caser"])
        sasrec = float(row["SASRec"])
        assert ham > 0
        assert caser > 0.5 * ham, (
            f"{row['dataset']}: Caser ({caser}) should not be far faster than HAMs_m ({ham})"
        )
        assert sasrec > 0.5 * ham, (
            f"{row['dataset']}: SASRec ({sasrec}) should not be far faster than HAMs_m ({ham})"
        )

    # The paper reports an average 28x speedup over SASRec and 139.7x over
    # Caser; at laptop scale the factors are smaller but must stay > 1.
    speedups_caser = [float(row["Caser"]) / float(row["HAMs_m"]) for row in rows]
    speedups_sasrec = [float(row["SASRec"]) / float(row["HAMs_m"]) for row in rows]
    assert np.mean(speedups_caser) > 1.0
    assert np.mean(speedups_sasrec) > 1.5
