"""Shared ``BENCH_*.json`` schema, re-exported for the benchmark suite.

The writer lives in :mod:`repro.bench_schema` so the library-side bench
harnesses (``repro.serving.bench``, ``repro.training.bench``,
``repro.parallel.bench``) can use it without depending on the test tree;
this shim gives benchmark modules a local import path.
"""

from repro.bench_schema import (  # noqa: F401
    HISTORY_LIMIT,
    SCHEMA_VERSION,
    host_info,
    read_bench_history,
    read_bench_report,
    write_bench_report,
)
