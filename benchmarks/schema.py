"""Deprecated shim: import :mod:`repro.bench_schema` instead.

The writer lives in :mod:`repro.bench_schema` so the library-side bench
harnesses (``repro.serving.bench``, ``repro.training.bench``,
``repro.parallel.bench``) can use it without depending on the test tree.
This module only survives for callers that grew a ``benchmarks.schema``
import while the schema lived here; it warns on import and will be
removed once nothing triggers the warning.
"""

import warnings

from repro.bench_schema import (  # noqa: F401
    HISTORY_LIMIT,
    SCHEMA_VERSION,
    host_info,
    read_bench_history,
    read_bench_report,
    write_bench_report,
)

warnings.warn(
    "benchmarks.schema is deprecated; import repro.bench_schema instead",
    DeprecationWarning,
    stacklevel=2,
)
