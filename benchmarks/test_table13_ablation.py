"""Table 13 — ablation study of HAMs_m (low-order term and user preferences)."""

import numpy as np
from conftest import emit_report, run_once

from repro.analysis.ablation import ABLATION_VARIANTS
from repro.data.benchmarks import BENCHMARK_NAMES
from repro.experiments.registry import get_experiment


def test_table13_ablation_study(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("table13")
    output = run_once(
        benchmark,
        lambda: spec.run(scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("table13", output["text"])

    rows = output["rows"]
    # one row per (dataset, variant)
    assert len(rows) == len(BENCHMARK_NAMES) * len(ABLATION_VARIANTS)
    assert {row["model"] for row in rows} == set(ABLATION_VARIANTS)
    for row in rows:
        assert 0.0 <= row["Recall@10"] <= 1.0

    # Shape claim (Section 6.6): averaged over datasets, the full model is
    # at least competitive with each ablated variant (the paper reports it
    # winning on 4/6 datasets and close on the other two).
    def mean_recall(variant):
        return np.mean([row["Recall@10"] for row in rows if row["model"] == variant])

    full = mean_recall("HAMs_m")
    assert full >= 0.8 * mean_recall("HAMs_m-o")
    assert full >= 0.8 * mean_recall("HAMs_m-u")
