"""Extension — experimental-setting comparison (paper Section 7.3).

Reproduces the argument behind the paper's recommendation of 80-3-CUT:
under 80-20-CUT, users with many test items inflate NDCG, and moving to a
fixed-size test set changes Recall and NDCG in opposite directions
(Sections 6.2.1 and 7.3).
"""

from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment


def test_ext_settings_comparison(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("ext-settings")
    output = run_once(
        benchmark,
        lambda: spec.run(dataset="cds", method="HAMs_m", scale=bench_scale,
                         epochs=bench_epochs, seed=0),
    )
    emit_report("ext_settings", output["text"])

    settings = {row["setting"]: row for row in output["rows"]}
    assert set(settings) == {"80-20-CUT", "80-3-CUT", "3-LOS"}
    for row in settings.values():
        assert row["users"] > 0
        assert 0.0 <= row["Recall@10"] <= 1.0

    # Shape claim (Section 6.2.1): Recall is higher when only the next 3
    # items are tested than when the whole last 20% is tested, because the
    # denominator shrinks.  Allow a small tolerance at bench scale.
    assert settings["80-3-CUT"]["Recall@10"] >= 0.8 * settings["80-20-CUT"]["Recall@10"]

    # Section 7.3: within 80-20-CUT, NDCG of the largest test sets should
    # not be *lower* than that of the smallest ones (the inflation effect).
    buckets = output["bucket_rows"]
    assert len(buckets) >= 2
    assert buckets[-1]["metric"] >= 0.5 * max(bucket["metric"] for bucket in buckets)
