"""Table 9 — average improvement of HAMs_m over Caser, SASRec, HGN and HAMm."""

import numpy as np
from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment


def test_table9_improvement_summary(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("table9")
    output = run_once(
        benchmark,
        lambda: spec.run(scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("table9", output["text"])

    rows = output["rows"]
    # 3 settings x 4 metrics
    assert len(rows) == 12
    assert {row["setting"] for row in rows} == {"80-20-CUT", "80-3-CUT", "3-LOS"}

    # Qualitative shape of Table 9: HAMs_m improves over Caser (the paper's
    # weakest baseline, +26% to +50%) on average across settings/metrics.
    caser_improvements = [row["Caser (measured %)"] for row in rows]
    assert np.mean(caser_improvements) > 0

    # The improvement over the closest HAM variant (HAMm) is small in the
    # paper (1.5-4.3%); measured values should likewise stay an order of
    # magnitude below the Caser improvements on average.
    hamm_improvements = [abs(row["HAMm (measured %)"]) for row in rows]
    assert np.mean(hamm_improvements) < max(np.mean(np.abs(caser_improvements)), 10.0)
