"""Table A2 — best hyperparameters reported by the paper (configuration registry)."""

from conftest import emit_report, run_once

from repro.experiments.configs import default_model_hyperparameters
from repro.experiments.registry import get_experiment


def test_tableA2_best_parameters(benchmark):
    spec = get_experiment("tableA2")
    output = run_once(benchmark, spec.run)
    emit_report("tableA2", output["text"])

    rows = output["rows"]
    # 2 distinct settings x 4 methods x 6 datasets
    assert len(rows) == 2 * 4 * 6
    hams_rows = [row for row in rows if row["method"] == "HAMs_m"]
    assert all(row["n_l"] <= row["n_h"] for row in hams_rows)
    assert all(row["p"] <= row["n_h"] for row in hams_rows)

    # The laptop-scale defaults must follow the paper's structural choices.
    cds = next(row for row in hams_rows
               if row["dataset"] == "cds" and row["setting"] == "80-20-CUT")
    defaults = default_model_hyperparameters("HAMs_m", "cds", "80-20-CUT")
    assert defaults["n_h"] == cds["n_h"]
    assert defaults["n_l"] == cds["n_l"]
    assert defaults["synergy_order"] == cds["p"]
