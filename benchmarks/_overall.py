"""Shared helpers for the overall-performance benchmarks (Tables 3-8)."""

from __future__ import annotations

import numpy as np

from repro.data.benchmarks import BENCHMARK_NAMES
from repro.experiments.registry import get_experiment
from repro.models.registry import PAPER_METHODS

from conftest import emit_report


def run_overall_table(benchmark, table_id: str, scale: str, epochs: int) -> list[dict]:
    """Run one overall-performance table benchmark and print its report."""
    spec = get_experiment(table_id)

    def runner():
        return spec.run(datasets=tuple(BENCHMARK_NAMES), scale=scale, epochs=epochs, seed=0)

    output = benchmark.pedantic(runner, rounds=1, iterations=1)
    emit_report(table_id, output["text"])
    return output["rows"]


def check_overall_shape(rows: list[dict]) -> None:
    """Qualitative-shape assertions shared by Tables 3-8.

    The absolute values cannot match the paper (different data scale), but
    the reproduced *shape* must hold:

    * every measured metric is a valid proportion,
    * the HAM family outperforms Caser on average (the paper's weakest
      baseline, 26-50% average improvement in Table 9),
    * the best measured method on each dataset is a learned sequential
      model from the comparison (never degenerate).
    """
    assert rows, "overall table produced no rows"
    for row in rows:
        for method in PAPER_METHODS:
            value = row[f"{method} (measured)"]
            assert 0.0 <= value <= 1.0

    hams = np.mean([row["HAMs_m (measured)"] for row in rows])
    hamm = np.mean([row["HAMm (measured)"] for row in rows])
    caser = np.mean([row["Caser (measured)"] for row in rows])
    assert max(hams, hamm) > caser, (
        f"HAM family (best mean {max(hams, hamm):.4f}) should outperform "
        f"Caser (mean {caser:.4f}) on average, as in the paper"
    )

    for row in rows:
        assert row["measured best"] in PAPER_METHODS
