"""Table 8 — overall performance in 3-LOS (NDCG@5 / NDCG@10)."""

from _overall import check_overall_shape, run_overall_table


def test_table8_ndcg_3_LOS(benchmark, bench_scale, bench_epochs):
    rows = run_overall_table(benchmark, "table8", bench_scale, bench_epochs)
    assert {row["metric"] for row in rows} == {"NDCG@5", "NDCG@10"}
    check_overall_shape(rows)
