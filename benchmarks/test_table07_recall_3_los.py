"""Table 7 — overall performance in 3-LOS (Recall@5 / Recall@10)."""

from _overall import check_overall_shape, run_overall_table


def test_table7_recall_3_LOS(benchmark, bench_scale, bench_epochs):
    rows = run_overall_table(benchmark, "table7", bench_scale, bench_epochs)
    assert {row["metric"] for row in rows} == {"Recall@5", "Recall@10"}
    check_overall_shape(rows)
