"""Table 2 — dataset statistics of the six benchmark analogues."""

from conftest import emit_report, run_once

from repro.data.benchmarks import BENCHMARK_NAMES, PAPER_STATISTICS, load_benchmark
from repro.experiments.registry import get_experiment


def test_table2_dataset_statistics(benchmark, bench_scale):
    output = run_once(benchmark, lambda: get_experiment("table2").run(scale=bench_scale))
    emit_report("table2", output["text"])

    rows = {row["dataset"].lower(): row for row in output["rows"]}
    assert len(rows) == len(BENCHMARK_NAMES)

    # Shape checks: the analogues preserve the paper's per-user sparsity
    # profile (#intrns/u) and the ordering of per-item density (#u/i).
    for name in BENCHMARK_NAMES:
        paper_per_user = PAPER_STATISTICS[name][3]
        measured_per_user = load_benchmark(name, scale=bench_scale).interactions_per_user
        assert abs(measured_per_user - paper_per_user) / paper_per_user < 0.2

    def per_item(name):
        return load_benchmark(name, scale=bench_scale).interactions_per_item

    # CDs is the sparsest dataset per item and the MovieLens analogues the densest.
    assert per_item("cds") == min(per_item(name) for name in BENCHMARK_NAMES)
    assert per_item("ml-1m") > per_item("cds")
    assert per_item("ml-20m") > per_item("books")
