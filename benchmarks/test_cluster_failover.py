"""Cluster benchmark: networked overhead and primary-kill failover.

The multi-node counterpart of ``test_resilience_recovery.py``: the same
synthetic HAM workload runs through
:func:`~repro.cluster.bench.run_cluster_benchmark`, which serves it over
a two-node Unix-socket cluster (replication 2), SIGKILLs the primary
node mid-stream after a round of replicated ``observe()`` traffic, and
times the interrupted sweep.  The result is persisted as
``benchmarks/results/BENCH_cluster.json`` under the unified schema.

Failover *correctness* needs no real cores: the acceptance bar — zero
failed requests while a replica is up and the deadline permits retry,
and bit-parity with the serial engine immediately after the kill —
holds on single-core runners; only the wire-overhead guard keys off the
``cpu_count`` recorded in the artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench_schema import read_bench_report
from repro.cluster.bench import run_cluster_benchmark, write_cluster_report

pytestmark = pytest.mark.chaos

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_cluster.json"


def test_cluster_kill_primary_failover():
    report = run_cluster_benchmark(n_nodes=2, seed=0)

    write_cluster_report(report, RESULTS_PATH)
    print()
    print(report.summary())

    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["failover_recovery_s"] == report.failover_recovery_s

    # The acceptance bar: with a replica up and the deadline permitting
    # retry, a SIGKILLed primary must cost zero failed requests and
    # never change a single ranked id — replicated observes included.
    assert report.pre_kill_bit_identical, (
        "healthy-cluster top-k diverged from serial")
    assert report.zero_failed_requests, (
        "requests failed during failover despite a live replica")
    assert report.post_failover_bit_identical, (
        "post-failover top-k diverged from serial")
    assert report.failovers >= 1
    assert report.failover_recovery_s < 30.0, report.summary()


def test_cluster_bench_regression_guard():
    """Fail if a recorded run ever lost parity or dropped requests."""
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_cluster.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["zero_failed_requests"] is True
    assert persisted["post_failover_bit_identical"] is True
    assert persisted["failover_recovery_s"] < 30.0
    if persisted.get("cpu_count", 1) < 2:
        pytest.skip("artifact was recorded on a single-core runner")
    # With real cores the wire should cost no more than 10x the
    # in-process sharded baseline on this tiny workload (generous:
    # per-sweep times are sub-10ms and noisy).
    assert persisted["networked_overhead_x"] < 10.0
