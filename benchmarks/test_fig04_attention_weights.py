"""Fig. 4 — distributions of HGN instance-gate ("attention") weights."""

import numpy as np
from conftest import emit_report, run_once

from repro.analysis.attention_weights import FIGURE4_DATASETS, gate_weight_distribution
from repro.experiments.registry import get_experiment


def test_fig4_gate_weight_distributions(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("fig4")
    output = run_once(
        benchmark,
        lambda: spec.run(scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("fig4", output["text"])

    rows = output["rows"]
    assert len(rows) == len(FIGURE4_DATASETS) * 4  # four frequency buckets each
    for row in rows:
        assert 0.0 <= row["mean_weight"] <= 1.0

    # Core observation of Section 7.2: the gate weights of infrequent items
    # stay concentrated around their 0.5 initialization because sparse data
    # rarely updates them - the motivation for HAM's equal-weight pooling.
    distribution = gate_weight_distribution("cds", scale=bench_scale, epochs=None, seed=0)
    infrequent = distribution.concentration_near_half("top 20% least frequent")
    assert infrequent > 0.5, (
        f"expected infrequent-item gate weights to concentrate near 0.5, got {infrequent:.2f}"
    )
    # Infrequent items should be at least as concentrated near 0.5 as the
    # most frequent items (whose gates receive many more updates).
    frequent = distribution.concentration_near_half("top 20% most frequent")
    assert infrequent >= frequent - 0.15
