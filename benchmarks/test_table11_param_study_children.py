"""Table 11 — parameter study of HAMs_m on Children in 80-20-CUT."""

from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment


def test_table11_parameter_study_children(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("table11")
    output = run_once(
        benchmark,
        lambda: spec.run(scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("table11", output["text"])

    rows = output["rows"]
    swept = {row["parameter"] for row in rows}
    # The paper sweeps the embedding dimension, both association orders,
    # the number of training targets and the synergy order.
    assert {"embedding_dim", "n_h", "n_l", "n_p", "synergy_order"} <= swept
    for row in rows:
        assert 0.0 <= row["Recall@5"] <= 1.0
        assert 0.0 <= row["Recall@10"] <= 1.0
        assert row["Recall@10"] >= row["Recall@5"]

    # Stability claim (Section 6.5): HAMs_m is stable within the optimal
    # parameter range — the spread of Recall@10 across the sweep stays
    # bounded (no SASRec-style order-of-magnitude collapses).
    values = [row["Recall@10"] for row in rows if row["Recall@10"] > 0]
    assert values, "sweep produced no usable configurations"
    assert max(values) <= 10 * min(values)
