"""Durability benchmark: WAL fsync cost, recovery speed, compaction.

The storage-layer counterpart of ``test_cluster_failover.py``: the
observe-record workload runs through
:func:`~repro.durability.bench.run_durability_benchmark`, which appends
the same stream under every fsync policy, times cold CRC-verifying
recovery over logs of growing length, verifies torn-tail recovery and
measures compaction reclaim.  The result is persisted as
``benchmarks/results/BENCH_durability.json`` under the unified schema.

Durability *correctness* needs no real cores: the acceptance bar — a
torn tail recovers every record before the tear, and compaction at the
halfway watermark reclaims real bytes — holds on single-core runners;
only throughput numbers vary with the hardware, and the guard treats
them as sanity floors, not performance promises.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench_schema import read_bench_report
from repro.durability.bench import (run_durability_benchmark,
                                    write_durability_report)

pytestmark = pytest.mark.chaos_disk

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_durability.json"


def test_durability_benchmark_and_artifact():
    report = run_durability_benchmark(appends=400, segment_kb=4, seed=0)

    write_durability_report(report, RESULTS_PATH)
    print()
    print(report.summary())

    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["appends"] == report.appends
    assert persisted["torn_tail_recovered"] is True

    # The acceptance bar: recovery keeps exactly the records before the
    # tear, and compaction at the halfway watermark reclaims bytes.
    assert report.torn_tail_recovered
    assert report.torn_tail_records_recovered == report.appends - 1
    assert report.compact_bytes_reclaimed > 0
    assert 0.0 < report.compact_reclaim_fraction < 1.0
    # Sanity floors, not performance promises: every policy must make
    # progress, and skipping fsync can never be slower than forcing it.
    assert report.fsync_always_per_s > 0
    assert report.fsync_never_per_s >= report.fsync_always_per_s
    assert report.recovery_records_per_s > 0


def test_durability_bench_regression_guard():
    """Fail if a recorded run ever lost records or reclaimed nothing."""
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_durability.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["torn_tail_recovered"] is True
    assert persisted["torn_tail_records_recovered"] == \
        persisted["appends"] - 1
    assert persisted["compact_reclaim_fraction"] > 0.0
    assert persisted["recovery_records_per_s"] > 0
