"""Gateway throughput benchmark: micro-batched vs per-request serving.

The online-traffic counterpart of ``test_serving_latency.py``: the same
synthetic HAM workload answers one skewed stream of single-user top-k
requests through the pre-gateway path (one ``engine.top_k`` call per
request) and through the :class:`~repro.serving.gateway.ServingGateway`
(micro-batch coalescing + hot-user score-row cache).  The result is
persisted as ``benchmarks/results/BENCH_gateway.json`` under the unified
schema.

The gateway overlaps the submitting caller with its flusher thread, so
real speedups need real cores: on single-core runners the artifact is
still written (bit-parity and budget accounting are recorded
regardless), the >= 3x throughput assertion lives in a
``multicore``-marked test that skips itself via
:func:`repro.bench_all.require_multicore`, and the regression guard
keys off the ``cpu_count`` recorded in the artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench_all import require_multicore
from repro.bench_schema import read_bench_report
from repro.serving.gateway_bench import run_gateway_benchmark, write_gateway_report

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_gateway.json"

CPU_COUNT = os.cpu_count() or 1


def test_gateway_throughput_batched_vs_unbatched():
    report = run_gateway_benchmark(seed=0)
    if CPU_COUNT >= 2 and report.throughput_speedup < 3.0:
        # One retry absorbs scheduler noise on loaded machines.
        report = run_gateway_benchmark(seed=0)

    write_gateway_report(report, RESULTS_PATH)
    print()
    print(report.summary())

    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["throughput_speedup"] == report.throughput_speedup

    # Correctness is asserted on every machine: micro-batching and the
    # score-row cache must never change a single ranked id.
    assert report.topk_bit_identical, "gateway top-k diverged from direct engine calls"
    # The hot-user stream must actually exercise the row cache.
    cache = report.gateway_stats.get("cache") or {}
    assert cache.get("hits", 0) > 0, "score-row cache saw no hits"


@pytest.mark.multicore
def test_gateway_throughput_speedup_multicore():
    """The acceptance bar of the gateway: >= 3x sustained throughput on
    the same stream while holding the fixed p95 budget."""
    require_multicore()
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_gateway.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    if persisted.get("cpu_count", 1) < 2:
        pytest.skip("artifact was recorded on a single-core runner")
    assert persisted["throughput_speedup"] >= 3.0, (
        f"gateway throughput speedup is only "
        f"{persisted['throughput_speedup']:.2f}x (recorded in {RESULTS_PATH})"
    )
    assert persisted["within_p95_budget"] is True, (
        f"gateway batched p95 {persisted['batched']['p95_ms']:.3f} ms blew "
        f"the fixed budget {persisted['p95_budget_ms']:.3f} ms"
    )


def test_gateway_bench_regression_guard():
    """Fail if a multi-core run ever recorded a sub-3x gateway speedup."""
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_gateway.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["topk_bit_identical"] is True
    if persisted.get("cpu_count", 1) < 2:
        pytest.skip("artifact was recorded on a single-core runner")
    assert persisted["throughput_speedup"] >= 3.0, (
        f"gateway throughput speedup regressed to "
        f"{persisted['throughput_speedup']:.2f}x (recorded in {RESULTS_PATH})"
    )
    assert persisted["within_p95_budget"] is True, (
        f"gateway batched p95 {persisted['batched']['p95_ms']:.3f} ms blew "
        f"the fixed budget {persisted['p95_budget_ms']:.3f} ms"
    )
