"""Table 4 — overall performance in 80-20-CUT (NDCG@5 / NDCG@10)."""

from _overall import check_overall_shape, run_overall_table


def test_table4_ndcg_80_20_CUT(benchmark, bench_scale, bench_epochs):
    rows = run_overall_table(benchmark, "table4", bench_scale, bench_epochs)
    assert {row["metric"] for row in rows} == {"NDCG@5", "NDCG@10"}
    check_overall_shape(rows)
