"""Table 3 — overall performance in 80-20-CUT (Recall@5 / Recall@10)."""

from _overall import check_overall_shape, run_overall_table


def test_table3_recall_80_20_CUT(benchmark, bench_scale, bench_epochs):
    rows = run_overall_table(benchmark, "table3", bench_scale, bench_epochs)
    assert {row["metric"] for row in rows} == {"Recall@5", "Recall@10"}
    check_overall_shape(rows)
