"""Shared configuration of the benchmark (reproduction) suite.

Every benchmark regenerates one table or figure of the paper on the
synthetic analogues.  Scale and epoch budget are controlled by environment
variables so the same suite can run as a quick smoke pass or as a fuller
overnight reproduction:

``REPRO_SCALE``         tiny | small (default) | paper
``REPRO_BENCH_EPOCHS``  training epochs per method (default 10)

The overall-experiment cache in :mod:`repro.experiments.overall` is shared
across benchmark modules, so the Recall table, the NDCG table, the
improvement summary and the run-time table of one setting train each
method exactly once per session.
"""

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_SCALE", "small")
os.environ.setdefault("REPRO_BENCH_EPOCHS", "10")


def pytest_report_header(config):
    return (
        f"repro benchmarks: scale={os.environ['REPRO_SCALE']} "
        f"epochs={os.environ['REPRO_BENCH_EPOCHS']}"
    )


@pytest.fixture(scope="session")
def bench_epochs() -> int:
    """Epoch budget used by every training-based benchmark."""
    return int(os.environ["REPRO_BENCH_EPOCHS"])


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Synthetic-analogue scale profile used by every benchmark."""
    return os.environ["REPRO_SCALE"]


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The reproduction experiments train models, so repeated timing rounds
    would multiply the suite's run time for no extra information; a single
    timed round is recorded instead.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


def emit_report(name: str, text: str) -> None:
    """Print a reproduction report and persist it under benchmarks/results/.

    pytest captures stdout by default, so the formatted paper-vs-measured
    tables are also written to ``benchmarks/results/<name>.txt`` where they
    can be inspected after the run (EXPERIMENTS.md links to them).
    """
    print()
    print(text)
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
