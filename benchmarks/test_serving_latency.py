"""Serving latency benchmark: cached ScoringEngine vs uncached per-request path.

The reproduction's serving claim (motivated by the paper's Table 14
run-time comparison) is that a repeated top-k request should not pay for
re-padding histories, re-running the model forward or rebuilding Python
exclusion sets.  This benchmark answers an identical request stream
through the seed repo's uncached path and through the
:class:`~repro.serving.engine.ScoringEngine`, asserts the engine is at
least 3x faster, and persists the p50/p95/throughput numbers as
``benchmarks/results/BENCH_serving.json``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.bench_schema import read_bench_history, read_bench_report
from repro.models import create_model
from repro.serving import run_serving_benchmark, write_report

NUM_USERS = 300
NUM_ITEMS = 2000
HISTORY_LENGTH = 200


def _random_histories(rng: np.random.Generator) -> list[list[int]]:
    return [
        rng.integers(0, NUM_ITEMS, size=rng.integers(5, HISTORY_LENGTH)).tolist()
        for _ in range(NUM_USERS)
    ]


def test_serving_latency_cached_vs_uncached():
    rng = np.random.default_rng(0)
    model = create_model("HAMs_m", NUM_USERS, NUM_ITEMS, rng=rng,
                         embedding_dim=48, n_h=10, n_l=2)
    histories = _random_histories(rng)

    report = run_serving_benchmark(model, histories, num_requests=150,
                                   users_per_request=1, k=10, seed=0,
                                   model_name="HAMs_m")
    if report.speedup < 3.0:
        # One retry absorbs scheduler noise on loaded machines; the
        # typical measured margin is 3.6-4.7x.
        report = run_serving_benchmark(model, histories, num_requests=150,
                                       users_per_request=1, k=10, seed=0,
                                       model_name="HAMs_m")

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    out = results_dir / "BENCH_serving.json"
    write_report(report, out)
    print()
    print(report.summary())

    persisted = read_bench_report(out)
    assert persisted["speedup"] == report.speedup
    # The unified schema appends one headline row per run.
    history = read_bench_history(out)
    assert history and history[-1]["speedup"] == report.speedup
    assert report.cached.requests == report.uncached.requests == 150
    assert report.cached.p50_ms > 0
    # The engine's whole point: repeated top-k requests must be much
    # cheaper than the seed path (acceptance bar: >= 3x).
    assert report.speedup >= 3.0, report.summary()


def test_serving_latency_batched_requests():
    """Micro-batched traffic also goes through the cached path profitably."""
    rng = np.random.default_rng(1)
    model = create_model("HAMm", NUM_USERS, NUM_ITEMS, rng=rng,
                         embedding_dim=32, n_h=5, n_l=2)
    histories = _random_histories(rng)

    report = run_serving_benchmark(model, histories, num_requests=40,
                                   users_per_request=32, k=10, seed=1,
                                   model_name="HAMm")
    print()
    print(report.summary())
    assert report.cached.mean_ms < report.uncached.mean_ms
