"""ANN retrieval benchmark: sub-linear candidate generation vs exact.

The retrieval-tier counterpart of ``test_serving_latency.py``: a 100k
item clustered synthetic catalogue runs through
:func:`~repro.retrieval.bench.run_retrieval_benchmark`, which times
exact full-catalogue top-k as the baseline and sweeps the
:class:`~repro.retrieval.index.ANNIndex` probe dial, measuring p50
latency per query and recall@k per setting.  The result is persisted as
``benchmarks/results/BENCH_ann.json`` under the unified schema.

The acceptance bar holds on single-core runners: the speedup is
algorithmic (scoring a few hundred candidates instead of the whole
catalogue), not parallelism, so no assertion here is gated on
``cpu_count``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench_schema import read_bench_report
from repro.retrieval.bench import (run_retrieval_benchmark,
                                   write_retrieval_report)

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_ann.json"


def test_ann_benchmark_and_artifact():
    report = run_retrieval_benchmark(num_items=100_000, dim=64, k=10,
                                     num_queries=64, seed=0)

    write_retrieval_report(report, RESULTS_PATH)
    print()
    print(report.summary())

    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["num_items"] == report.num_items == 100_000
    assert persisted["best_speedup_x"] == report.best_speedup_x

    # The sweep must be complete and internally consistent before the
    # headline means anything.
    assert len(report.sweep) == 5
    for entry in report.sweep:
        assert 0.0 <= entry["recall_at_k"] <= 1.0
        assert entry["p50_ms"] > 0

    # The acceptance bar: some dial setting reaches recall@10 >= 0.95
    # while answering at least 3x faster than exact retrieval.
    assert report.best_recall_at_k >= 0.95, report.summary()
    assert report.best_speedup_x >= 3.0, report.summary()


def test_ann_bench_regression_guard():
    """Fail if a recorded run ever fell under 3x at the recall floor."""
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_ann.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["best_recall_at_k"] >= persisted["recall_floor"]
    assert persisted["best_speedup_x"] >= 3.0
