"""Training throughput benchmark: overhauled hot path vs legacy substrate.

The training-side counterpart of ``test_serving_latency.py`` (motivated
by the paper's Table 14 run-time comparison): the same synthetic HAM
workload is trained on the seed substrate (float64, dense embedding
gradients, per-element Python negative sampling) and on the overhauled
hot path (float32, indexed gradients with row-wise Adam, vectorized
sampling).  The p50 epoch-time speedup is asserted to be at least 2.5x
and persisted as ``benchmarks/results/BENCH_training.json``.

A separate regression guard re-reads the persisted artifact and fails if
a rerun ever recorded a speedup below 2x — catching hot-path regressions
without re-timing anything.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench_schema import read_bench_report
from repro.training.bench import run_training_benchmark, write_training_report

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_training.json"


def test_training_throughput_fast_vs_legacy():
    report = run_training_benchmark(seed=0)
    if report.speedup < 2.5:
        # One retry absorbs scheduler noise on loaded machines; the
        # typical measured margin is 3.5-4.5x.
        report = run_training_benchmark(seed=0)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    write_training_report(report, RESULTS_PATH)
    print()
    print(report.summary())

    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["speedup"] == report.speedup
    assert report.fast.epochs == report.legacy.epochs == report.epochs
    assert report.fast.p50_s > 0
    # Both paths optimize the same objective on the same data; the fast
    # path must actually train, not just spin quickly.
    assert report.fast.final_loss < 1.0
    assert report.legacy.final_loss < 1.0
    # The acceptance bar of the training-hot-path overhaul: >= 2.5x.
    assert report.speedup >= 2.5, report.summary()


def test_training_bench_regression_guard():
    """Fail if the persisted artifact ever records a sub-2x speedup."""
    import pytest

    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_training.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["speedup"] >= 2.0, (
        f"training hot-path speedup regressed to {persisted['speedup']:.2f}x "
        f"(recorded in {RESULTS_PATH})"
    )
