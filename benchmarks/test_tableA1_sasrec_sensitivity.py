"""Table A1 — SASRec parameter sensitivity on Comics in 3-LOS."""

from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment


def test_tableA1_sasrec_sensitivity(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("tableA1")
    output = run_once(
        benchmark,
        lambda: spec.run(scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("tableA1", output["text"])

    rows = output["rows"]
    swept = {row["parameter"] for row in rows}
    assert {"embedding_dim", "sequence_length", "num_heads"} <= swept
    for row in rows:
        assert 0.0 <= row["Recall@10"] <= 1.0
        # every configuration must at least run (the paper hits OOM with
        # large configurations on GPU; the NumPy substrate does not).
        assert row["Recall@10"] == row["Recall@10"]  # not NaN
