"""Extension — beyond-accuracy profile (coverage, Gini, popularity bias).

Complements the paper's Section 7.2 frequency analysis: the paper shows
that *items* are mostly infrequent; this bench shows how concentrated each
method's *recommendations* are on the frequent items.
"""

from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment

METHODS = ("HAMs_m", "HGN", "POP")


def test_ext_beyond_accuracy(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("ext-beyond")
    output = run_once(
        benchmark,
        lambda: spec.run(dataset="cds", setting="80-20-CUT", methods=METHODS,
                         scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("ext_beyond_accuracy", output["text"])

    rows = {row["method"]: row for row in output["rows"]}
    assert set(rows) == set(METHODS)
    for row in rows.values():
        assert 0.0 < row["coverage"] <= 1.0
        assert 0.0 <= row["gini"] <= 1.0
        assert row["novelty"] >= 0.0

    # Shape claims: the unpersonalized popularity ranker covers the least
    # of the catalogue and is the most concentrated.
    assert rows["POP"]["coverage"] <= rows["HAMs_m"]["coverage"]
    assert rows["POP"]["gini"] >= rows["HAMs_m"]["gini"] - 1e-6
