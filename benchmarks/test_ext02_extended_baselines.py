"""Extension — literature-review baselines (paper Section 2).

The paper compares HAM only against Caser, SASRec and HGN because HGN had
already been shown to outperform the RNN/CNN/attention family.  This bench
runs HAMs_m directly against that family (GRU4Rec, GRU4Rec++, NARM, STAMP,
NextItRec, Fossil) plus the count-based references on the CDs analogue, so
the transitive claim can be checked rather than assumed.
"""

from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment

METHODS = ("HAMs_m", "HGN", "GRU4Rec", "NARM", "STAMP", "NextItRec",
           "Fossil", "MarkovChain", "POP")


def test_ext_extended_baselines(benchmark, bench_scale, bench_epochs):
    spec = get_experiment("ext-baselines")
    output = run_once(
        benchmark,
        lambda: spec.run(dataset="cds", setting="80-20-CUT", methods=METHODS,
                         scale=bench_scale, epochs=bench_epochs, seed=0),
    )
    emit_report("ext_baselines", output["text"])

    rows = {row["method"]: row for row in output["rows"]}
    assert set(rows) == set(METHODS)
    for row in rows.values():
        assert 0.0 <= row["Recall@10"] <= 1.0

    # Shape claims (kept loose at bench scale — the paper's claims are made
    # on the full datasets with exhaustive tuning, the synthetic analogue
    # only checks the order of magnitude):
    # 1. HAMs_m is within a factor of the popularity floor at short epoch
    #    budgets and should overtake it with a realistic budget.
    assert rows["HAMs_m"]["Recall@10"] >= 0.5 * rows["POP"]["Recall@10"]
    # 2. HAMs_m stays within a factor of the strongest literature-review
    #    baseline.
    strongest_extension = max(
        rows[m]["Recall@10"] for m in METHODS if m not in ("HAMs_m", "HGN")
    )
    assert rows["HAMs_m"]["Recall@10"] >= 0.4 * strongest_extension
