"""Fig. 3 — item frequency distributions of CDs, Comics, ML-1M and ML-20M."""

from conftest import emit_report, run_once

from repro.experiments.registry import get_experiment


def test_fig3_item_frequency_distribution(benchmark, bench_scale):
    spec = get_experiment("fig3")
    output = run_once(benchmark, lambda: spec.run(scale=bench_scale))
    emit_report("fig3", output["text"])

    summary = {row["dataset"]: row["% items in lower half of log-frequency range"]
               for row in output["summary_rows"]}
    assert set(summary) == {"CDs", "Comics", "ML-1M", "ML-20M"}
    assert all(0.0 <= value <= 100.0 for value in summary.values())

    # Shape claim of Fig. 3: the sparse Amazon/Goodreads datasets carry a
    # larger share of infrequent items than the dense MovieLens datasets.
    assert summary["CDs"] >= summary["ML-1M"] - 5.0
    assert summary["CDs"] >= summary["ML-20M"] - 5.0
