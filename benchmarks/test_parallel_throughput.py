"""Parallel throughput benchmark: sharded sweeps and worker-pool loading.

The multi-process counterpart of ``test_serving_latency.py`` /
``test_training_throughput.py``: the same synthetic HAM workload answers
a full-catalogue top-k sweep through the serial engine and through the
shared-memory :class:`~repro.parallel.sharded.ShardedScoringEngine`, and
trains with the in-process batch path vs the worker-pool loader.  The
result is persisted as ``benchmarks/results/BENCH_parallel.json`` under
the unified schema.

Real speedups need real cores: on single-core runners the artifact is
still written (bit-parity is asserted regardless), the >= 2x eval-sweep
assertion lives in a ``multicore``-marked test that skips itself via
:func:`repro.bench_all.require_multicore`, and the regression guard keys
off the ``cpu_count`` recorded in the artifact rather than the current
machine.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench_all import require_multicore
from repro.bench_schema import read_bench_report
from repro.parallel.bench import run_parallel_benchmark, write_parallel_report

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_parallel.json"

CPU_COUNT = os.cpu_count() or 1
#: The acceptance configuration: 4 shards (capped by the machine).
BENCH_WORKERS = max(2, min(4, CPU_COUNT))


def test_parallel_throughput_workers_vs_serial():
    report = run_parallel_benchmark(n_workers=BENCH_WORKERS, seed=0)
    if CPU_COUNT >= 2 and report.eval_sweep_speedup < 2.0:
        # One retry absorbs scheduler noise on loaded machines.
        report = run_parallel_benchmark(n_workers=BENCH_WORKERS, seed=0)

    write_parallel_report(report, RESULTS_PATH)
    print()
    print(report.summary())

    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["eval_sweep_speedup"] == report.eval_sweep_speedup

    # Correctness is asserted on every machine: sharding must never
    # change a single ranked id.
    assert report.topk_bit_identical, "sharded top_k diverged from serial"
    # Both training paths must actually optimize the objective.
    assert report.train_serial.final_loss < 1.0
    assert report.train_loader.final_loss < 1.0


@pytest.mark.multicore
def test_parallel_sweep_speedup_multicore():
    """The acceptance bar of the multi-process substrate: a full
    evaluation sweep at workers=N is at least 2x faster than serial."""
    require_multicore()
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_parallel.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    if persisted.get("cpu_count", 1) < 2:
        pytest.skip("artifact was recorded on a single-core runner")
    assert persisted["eval_sweep_speedup"] >= 2.0, (
        f"parallel eval-sweep speedup is only "
        f"{persisted['eval_sweep_speedup']:.2f}x (recorded in {RESULTS_PATH})"
    )


def test_parallel_bench_regression_guard():
    """Fail if a multi-core run ever recorded a sub-2x sweep speedup."""
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_parallel.json not generated yet")
    persisted = read_bench_report(RESULTS_PATH)
    assert persisted["topk_bit_identical"] is True
    if persisted.get("cpu_count", 1) < 2:
        pytest.skip("artifact was recorded on a single-core runner")
    assert persisted["eval_sweep_speedup"] >= 2.0, (
        f"parallel eval-sweep speedup regressed to "
        f"{persisted['eval_sweep_speedup']:.2f}x (recorded in {RESULTS_PATH})"
    )
