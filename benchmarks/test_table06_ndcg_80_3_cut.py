"""Table 6 — overall performance in 80-3-CUT (NDCG@5 / NDCG@10)."""

from _overall import check_overall_shape, run_overall_table


def test_table6_ndcg_80_3_CUT(benchmark, bench_scale, bench_epochs):
    rows = run_overall_table(benchmark, "table6", bench_scale, bench_epochs)
    assert {row["metric"] for row in rows} == {"NDCG@5", "NDCG@10"}
    check_overall_shape(rows)
