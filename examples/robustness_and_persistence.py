#!/usr/bin/env python
"""Robustness across seeds and persistence of datasets/results (extension).

The paper reports single-run numbers; this example shows the
infrastructure for treating a result as trustworthy and re-usable:

1. run the overall experiment under several random seeds and report
   mean ± std per method (seed luck vs real differences);
2. persist the aggregated rows with :class:`ResultsStore` so later runs
   can be compared without re-training;
3. save the synthetic analogue and its split to ``.npz`` and reload them,
   which is how the larger `paper`-scale analogues are meant to be reused.

Run with::

    python examples/robustness_and_persistence.py [--dataset cds] [--epochs 8]
"""

import argparse
import tempfile
from pathlib import Path

from repro.data import load_benchmark, load_dataset, load_split, save_dataset, save_split, split_setting
from repro.experiments import ResultsStore, run_multi_seed_experiment
from repro.experiments.reporting import format_table

METHODS = ("HAMs_m", "HAMm", "HGN", "POP")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cds")
    parser.add_argument("--setting", default="80-3-CUT",
                        choices=("80-20-CUT", "80-3-CUT", "3-LOS"))
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    # 1. Multi-seed run ------------------------------------------------------
    result = run_multi_seed_experiment(args.dataset, args.setting, methods=METHODS,
                                       seeds=tuple(args.seeds), scale=args.scale,
                                       epochs=args.epochs)
    rows = [aggregate.as_row() for aggregate in result.aggregates("Recall@10", METHODS)]
    print(format_table(rows, title=(f"Recall@10 over seeds {args.seeds} on "
                                    f"{args.dataset} ({args.setting})")))
    print(f"winner counts: {result.best_method_counts('Recall@10')}\n")

    # 2. Persist the aggregated rows ----------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        store = ResultsStore(Path(directory) / "results")
        saved = store.save(
            "multiseed",
            {"rows": rows, "text": format_table(rows)},
            metadata={"dataset": args.dataset, "setting": args.setting,
                      "seeds": args.seeds, "epochs": args.epochs},
        )
        reloaded = store.latest("multiseed")
        print(f"saved multi-seed rows to {saved.path}")
        print(f"reloaded {len(reloaded.rows)} rows created at {reloaded.created_at}\n")

        # 3. Dataset / split round trip --------------------------------------
        dataset = load_benchmark(args.dataset, scale=args.scale)
        split = split_setting(dataset, args.setting)
        dataset_path = save_dataset(dataset, Path(directory) / "dataset")
        split_path = save_split(split, Path(directory) / "split")
        restored_dataset = load_dataset(dataset_path)
        restored_split = load_split(split_path)
        print(f"dataset round trip: {restored_dataset.num_users} users, "
              f"{restored_dataset.num_interactions} interactions "
              f"(identical: {restored_dataset.sequences == dataset.sequences})")
        print(f"split round trip:   {restored_split.setting} with "
              f"{len(restored_split.users_with_test_items())} evaluable users "
              f"(identical: {restored_split.test == split.test})")


if __name__ == "__main__":
    main()
