#!/usr/bin/env python
"""Compare HAM against the literature-review baselines (extension).

The paper compares HAM only with Caser, SASRec and HGN, because HGN had
already been shown to beat the RNN/CNN/attention family (GRU4Rec, NARM,
NextItRec, ...).  This example runs that family directly — GRU4Rec,
GRU4Rec++, NARM, STAMP, NextItRec, Fossil plus the count-based references
(ItemKNN, MarkovChain, POP) — against HAMs_m and HGN on one synthetic
analogue, so the transitive claim can be inspected instead of assumed.

Run with::

    python examples/extended_baselines.py [--dataset cds] [--epochs 10]
"""

import argparse

from repro.evaluation import paired_improvement_test
from repro.experiments.overall import run_overall_experiment
from repro.experiments.reporting import format_table

METHODS = ("HAMs_m", "HGN", "GRU4Rec", "GRU4Rec++", "NARM", "STAMP",
           "NextItRec", "Fossil", "ItemKNN", "MarkovChain", "POP")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cds")
    parser.add_argument("--setting", default="80-3-CUT",
                        choices=("80-20-CUT", "80-3-CUT", "3-LOS"))
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    result = run_overall_experiment(args.dataset, args.setting, methods=METHODS,
                                    scale=args.scale, epochs=args.epochs, seed=0)

    rows = []
    for method in METHODS:
        run = result.runs[method]
        rows.append({
            "method": method,
            "Recall@5": round(run.evaluation.metrics["Recall@5"], 4),
            "Recall@10": round(run.evaluation.metrics["Recall@10"], 4),
            "NDCG@10": round(run.evaluation.metrics["NDCG@10"], 4),
            "s/user": f"{run.timing.seconds_per_user:.1e}",
            "train s": round(run.training.train_seconds, 1),
        })
    print(format_table(
        rows, title=f"HAMs_m vs literature-review baselines on {args.dataset} ({args.setting})"
    ))

    # Significance of HAMs_m against each learned baseline (paired t-test on
    # the per-user Recall@10 values, the paper's protocol).
    significance_rows = []
    for method in METHODS:
        if method == "HAMs_m":
            continue
        test = paired_improvement_test(result.per_user("HAMs_m", "Recall@10"),
                                       result.per_user(method, "Recall@10"))
        significance_rows.append({
            "vs": method,
            "improvement %": round(test.improvement_percent, 1),
            "p-value": round(test.p_value, 4),
            "significant": test.flag() or "-",
        })
    print()
    print(format_table(significance_rows,
                       title="HAMs_m improvement over each baseline (Recall@10)"))


if __name__ == "__main__":
    main()
