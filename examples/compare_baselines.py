#!/usr/bin/env python
"""Compare the HAM family against the paper's baselines on one dataset.

Reproduces, at laptop scale, one column block of the paper's Tables 3/4:
Caser, SASRec, HGN and the four HAM variants are trained with the same
protocol on the same dataset and compared on Recall@k, NDCG@k and testing
run time (the Table 14 measurement), including significance flags for the
improvement of HAMs_m over each baseline.

Run with::

    python examples/compare_baselines.py --dataset children --setting 80-3-CUT
"""

import argparse

from repro.evaluation import paired_improvement_test
from repro.experiments.overall import run_overall_experiment
from repro.experiments.reporting import format_table
from repro.models.registry import PAPER_METHODS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="children")
    parser.add_argument("--setting", default="80-3-CUT",
                        choices=("80-20-CUT", "80-3-CUT", "3-LOS"))
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    result = run_overall_experiment(args.dataset, args.setting, methods=PAPER_METHODS,
                                    scale=args.scale, epochs=args.epochs)

    rows = []
    for method, run in result.runs.items():
        rows.append({
            "method": method,
            "Recall@5": round(run.evaluation.metrics["Recall@5"], 4),
            "Recall@10": round(run.evaluation.metrics["Recall@10"], 4),
            "NDCG@10": round(run.evaluation.metrics["NDCG@10"], 4),
            "s/user (test)": f"{run.timing.seconds_per_user:.1e}",
            "train s": round(run.training.train_seconds, 1),
        })
    print(format_table(rows, title=f"{args.dataset} in {args.setting} ({args.scale} scale)"))

    # Significance of HAMs_m against each baseline, as in the paper's tables.
    reference = result.per_user("HAMs_m", "Recall@10")
    significance_rows = []
    for method in ("Caser", "SASRec", "HGN", "HAMm"):
        test = paired_improvement_test(reference, result.per_user(method, "Recall@10"),
                                       confidence=0.95)
        significance_rows.append({
            "HAMs_m vs": method,
            "improvement %": round(test.improvement_percent, 1),
            "p-value": round(test.p_value, 4),
            "significant (95%)": test.significant,
        })
    print(format_table(significance_rows,
                       title="Improvement of HAMs_m over baselines (Recall@10)"))


if __name__ == "__main__":
    main()
