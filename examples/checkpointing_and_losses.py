#!/usr/bin/env python
"""Training extensions: ranking losses, early stopping, LR schedules and
checkpoints (extension).

The paper trains everything with BPR + one negative + a fixed epoch
budget.  This example shows the opt-in extensions around that protocol on
one dataset:

1. train HAMs_m with the paper's BPR loss and with the BPR-max loss over
   several negatives (the GRU4Rec++ objective) and compare;
2. use a warm-up + step-decay learning-rate schedule and early stopping;
3. checkpoint the best model to disk, reload it into a fresh instance and
   verify the metrics survive the round trip;
4. summarize convergence (epochs to 90% of the best validation score).

Run with::

    python examples/checkpointing_and_losses.py [--dataset cds] [--epochs 12]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import compare_convergence
from repro.data import load_benchmark, split_setting
from repro.evaluation import RankingEvaluator
from repro.experiments.reporting import format_table
from repro.models import HAMSynergy
from repro.training import (
    EarlyStopping,
    StepDecaySchedule,
    Trainer,
    TrainingConfig,
    WarmupSchedule,
    load_checkpoint,
    save_checkpoint,
)


def build_model(dataset, seed: int = 0) -> HAMSynergy:
    return HAMSynergy(dataset.num_users, dataset.num_items, embedding_dim=32,
                      n_h=5, n_l=2, synergy_order=2, pooling="mean",
                      rng=np.random.default_rng(seed))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cds")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    dataset = load_benchmark(args.dataset, scale=args.scale)
    split = split_setting(dataset, "80-3-CUT")
    evaluator = RankingEvaluator(split, ks=(5, 10), mode="validation")
    test_evaluator = RankingEvaluator(split, ks=(5, 10), mode="test")

    # 1. BPR (paper) vs BPR-max over 4 negatives (GRU4Rec++ objective) ------
    training_results = {}
    rows = []
    for label, loss, negatives in (("bpr (paper)", "bpr", 1), ("bpr_max x4", "bpr_max", 4)):
        model = build_model(dataset)
        config = TrainingConfig(num_epochs=args.epochs, eval_every=2, seed=0,
                                loss=loss, num_negatives=negatives)
        trainer = Trainer(
            model, config,
            validation_fn=lambda m: evaluator.validation_metric(m, "Recall@10"),
            schedule=WarmupSchedule(StepDecaySchedule(1e-3, step_size=6, decay=0.5),
                                    warmup_epochs=2),
            early_stopping=EarlyStopping(patience=3),
        )
        training_results[label] = trainer.fit(split.train_plus_valid())
        metrics = test_evaluator.evaluate(model).metrics
        rows.append({"objective": label,
                     **{name: round(value, 4) for name, value in metrics.items()}})
        if label == "bpr (paper)":
            best_model = model
    print(format_table(rows, title=f"HAMs_m on {args.dataset}: objective comparison"))

    # 2. Convergence summary -------------------------------------------------
    summaries = compare_convergence(training_results)
    print()
    print(format_table([{"objective": label, **summary.as_row()}
                        for label, summary in summaries.items()],
                       title="Convergence summary"))

    # 3. Checkpoint round trip -----------------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        path = save_checkpoint(best_model, Path(directory) / "ham_best",
                               metadata={"dataset": args.dataset, "objective": "bpr"})
        reloaded = build_model(dataset, seed=123)     # different random init
        metadata = load_checkpoint(reloaded, path)
        before = test_evaluator.evaluate(best_model).metrics["Recall@10"]
        after = test_evaluator.evaluate(reloaded).metrics["Recall@10"]
        print(f"\ncheckpoint {path.name}: metadata={metadata}")
        print(f"Recall@10 before save {before:.4f} / after reload {after:.4f} "
              f"(identical: {abs(before - after) < 1e-12})")


if __name__ == "__main__":
    main()
