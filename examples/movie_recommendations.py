#!/usr/bin/env python
"""Movie recommendation scenario (the paper's MovieLens workload).

Uses the ML-1M synthetic analogue — or a real MovieLens ``ratings.dat`` /
``ratings.csv`` file when one is passed — to walk through the full paper
protocol on a movie-rating workload:

* preprocess with the HGN protocol (ratings >= 4 are positive feedback,
  min-10 interactions per user, min-5 per item),
* compare the three experimental settings (80-20-CUT, 80-3-CUT, 3-LOS)
  for the same trained model, illustrating the Section 7.3 discussion of
  how the setting changes the measured numbers,
* show per-user recommendations with the items' popularity rank, the kind
  of sanity inspection a practitioner would run before deploying.

Run with::

    python examples/movie_recommendations.py
    python examples/movie_recommendations.py --ratings /path/to/ml-1m/ratings.dat
"""

import argparse

import numpy as np

from repro.data import load_benchmark, split_setting
from repro.data.loaders import load_movielens
from repro.evaluation import RankingEvaluator, top_k_items
from repro.experiments.reporting import format_table
from repro.models import HAMSynergy
from repro.training import Trainer, TrainingConfig


def load_movies(ratings_path: str | None, scale: str):
    if ratings_path:
        print(f"loading real MovieLens ratings from {ratings_path}")
        return load_movielens(ratings_path, name="MovieLens")
    print("no ratings file given - using the ML-1M synthetic analogue")
    return load_benchmark("ml-1m", scale=scale)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ratings", default=None, help="optional path to MovieLens ratings")
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    dataset = load_movies(args.ratings, args.scale)
    print(dataset.summary())

    # One model configuration, evaluated under all three paper settings.
    rows = []
    trained_model = None
    for setting in ("80-20-CUT", "80-3-CUT", "3-LOS"):
        split = split_setting(dataset, setting)
        model = HAMSynergy(
            num_users=dataset.num_users, num_items=dataset.num_items,
            embedding_dim=32, n_h=7, n_l=2, synergy_order=3, pooling="mean",
            rng=np.random.default_rng(1),
        )
        config = TrainingConfig(num_epochs=args.epochs, batch_size=256, n_p=3, seed=1)
        Trainer(model, config).fit(split.train_plus_valid())
        metrics = RankingEvaluator(split, ks=(5, 10)).evaluate(model).metrics
        rows.append({"setting": setting, **{k: round(v, 4) for k, v in metrics.items()}})
        if setting == "80-3-CUT":
            trained_model = model
            trained_split = split

    print(format_table(rows, title="HAMs_m on the movie workload under the three settings"))
    print("note the Section 7.3 effect: recall tends to be higher and NDCG lower in "
          "80-3-CUT than in 80-20-CUT because the number of test items changes.")

    # Per-user inspection: recommendations with popularity ranks.
    popularity_rank = np.argsort(np.argsort(-dataset.item_frequencies()))
    histories = trained_split.train_plus_valid()
    users = np.arange(min(5, dataset.num_users))
    inputs = np.full((len(users), trained_model.input_length), trained_model.pad_id, dtype=np.int64)
    for row, user in enumerate(users):
        recent = histories[int(user)][-trained_model.input_length:]
        inputs[row, -len(recent):] = recent
    scores = trained_model.score_all(users, inputs)
    top = top_k_items(scores, k=5, excluded=[set(histories[int(u)]) for u in users])
    inspection = []
    for user, items in zip(users, top):
        inspection.append({
            "user": int(user),
            "recent movies": str(histories[int(user)][-3:]),
            "recommended": str(items.tolist()),
            "popularity ranks": str([int(popularity_rank[i]) for i in items]),
        })
    print(format_table(inspection, title="Sample recommendations (lower popularity rank = more popular)"))


if __name__ == "__main__":
    main()
