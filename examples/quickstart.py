#!/usr/bin/env python
"""Quickstart: train HAMs_m on a benchmark analogue and recommend items.

This is the 5-minute tour of the public API:

1. load (generate) a synthetic analogue of one of the paper's datasets,
2. split it under the paper's 80-3-CUT experimental setting,
3. train the paper's best model, HAMs_m, with the BPR objective,
4. evaluate Recall@k / NDCG@k on the test split,
5. produce top-10 recommendations for a few users.

Run with::

    python examples/quickstart.py [--dataset cds] [--epochs 15]
"""

import argparse

import numpy as np

from repro.data import load_benchmark, split_setting
from repro.evaluation import RankingEvaluator, top_k_items
from repro.experiments.reporting import format_table
from repro.models import HAMSynergy
from repro.training import Trainer, TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cds", help="benchmark name (cds, books, ...)")
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    # 1. Data -------------------------------------------------------------
    dataset = load_benchmark(args.dataset, scale=args.scale)
    print(dataset.summary())

    # 2. Experimental setting (Fig. 2 of the paper) ------------------------
    split = split_setting(dataset, "80-3-CUT")

    # 3. Model + training ---------------------------------------------------
    model = HAMSynergy(
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        embedding_dim=32,
        n_h=5,              # high-order association over the last 5 items
        n_l=2,              # low-order association over the last 2 items
        synergy_order=2,    # pairwise item synergies
        pooling="mean",     # HAMs_m
        rng=np.random.default_rng(0),
    )
    print(model.describe())

    config = TrainingConfig(num_epochs=args.epochs, batch_size=256, n_p=3, seed=0)
    result = Trainer(model, config).fit(split.train_plus_valid())
    print(f"trained in {result.train_seconds:.1f}s, final BPR loss {result.final_loss:.4f}")

    # 4. Evaluation ---------------------------------------------------------
    evaluator = RankingEvaluator(split, ks=(5, 10), mode="test")
    metrics = evaluator.evaluate(model).metrics
    print(format_table([{k: round(v, 4) for k, v in metrics.items()}],
                       title=f"HAMs_m on {dataset.name} (80-3-CUT)"))

    # 5. Recommendations for the first three users --------------------------
    users = np.array([0, 1, 2])
    histories = [split.train_plus_valid()[int(u)] for u in users]
    inputs = np.full((len(users), model.input_length), model.pad_id, dtype=np.int64)
    for row, history in enumerate(histories):
        recent = history[-model.input_length:]
        inputs[row, -len(recent):] = recent
    scores = model.score_all(users, inputs)
    recommendations = top_k_items(scores, k=10, excluded=[set(h) for h in histories])
    for user, items in zip(users, recommendations):
        print(f"user {user}: recently consumed {histories[int(user)][-5:]}, "
              f"recommended {items.tolist()}")


if __name__ == "__main__":
    main()
