#!/usr/bin/env python
"""Grid search on the validation set, exactly as the paper tunes its models.

The paper selects hyperparameters by exhaustive grid search on the
validation split, using Recall@10 for model selection, then retrains on
train+validation with the winning configuration and reports test metrics.
This example runs that pipeline end to end for HAMs_m on one dataset.

Run with::

    python examples/hyperparameter_search.py --dataset cds
"""

import argparse

import numpy as np

from repro.data import load_benchmark, split_setting
from repro.evaluation import RankingEvaluator
from repro.experiments.reporting import format_table
from repro.models import create_model
from repro.training import GridSearch, Trainer, TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cds")
    parser.add_argument("--setting", default="80-20-CUT",
                        choices=("80-20-CUT", "80-3-CUT", "3-LOS"))
    parser.add_argument("--epochs", type=int, default=8,
                        help="epochs per grid-search trial (the final model trains longer)")
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    dataset = load_benchmark(args.dataset, scale=args.scale)
    split = split_setting(dataset, args.setting)
    print(dataset.summary())

    validation_evaluator = RankingEvaluator(split, ks=(10,), mode="validation")

    def objective(params: dict) -> float:
        """Train on the training split, score Recall@10 on validation."""
        model = create_model("HAMs_m", dataset.num_users, dataset.num_items,
                             rng=np.random.default_rng(0), embedding_dim=32, **params)
        config = TrainingConfig(num_epochs=args.epochs, batch_size=256, n_p=3, seed=0)
        Trainer(model, config).fit(split.train)
        return validation_evaluator.validation_metric(model, "Recall@10")

    grid = {
        "n_h": [4, 6],
        "n_l": [1, 2],
        "synergy_order": [1, 2, 3],
    }
    search = GridSearch(grid, objective)
    print(f"searching {len(search)} configurations "
          f"(grid: {', '.join(f'{k}={v}' for k, v in grid.items())})")
    result = search.run(verbose=True)

    print(format_table(result.as_rows(), title="Validation Recall@10 per configuration"))
    print(f"best configuration: {result.best_params} "
          f"(validation Recall@10 = {result.best_score:.4f})")

    # Retrain on train+validation with the winning configuration and test.
    final_model = create_model("HAMs_m", dataset.num_users, dataset.num_items,
                               rng=np.random.default_rng(0), embedding_dim=32,
                               **result.best_params)
    final_config = TrainingConfig(num_epochs=args.epochs * 2, batch_size=256, n_p=3, seed=0)
    Trainer(final_model, final_config).fit(split.train_plus_valid())
    test_metrics = RankingEvaluator(split, ks=(5, 10), mode="test").evaluate(final_model).metrics
    print(format_table([{k: round(v, 4) for k, v in test_metrics.items()}],
                       title="Test metrics of the selected configuration"))


if __name__ == "__main__":
    main()
