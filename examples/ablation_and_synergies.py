#!/usr/bin/env python
"""Ablation study and synergy-order sweep (paper Sections 6.5-6.6).

Answers two questions the paper asks about its own model, on one dataset:

1. *What does each factor contribute?*  Trains the full HAMs_m, the
   variant without the low-order association (``-o``) and the variant
   without the users' general preferences (``-u``) — Table 13.
2. *How much do higher-order synergies help?*  Sweeps the synergy order
   ``p`` from 1 (no synergies) to 4 — the ``p`` block of Tables 10-12.

Run with::

    python examples/ablation_and_synergies.py --dataset comics
"""

import argparse

from repro.analysis.ablation import run_ablation_study
from repro.analysis.parameter_study import run_parameter_study
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="comics")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    # 1. Ablation study (Table 13) -----------------------------------------
    ablation = run_ablation_study(args.dataset, setting="80-20-CUT",
                                  scale=args.scale, epochs=args.epochs)
    print(format_table([row.as_row() for row in ablation],
                       title=f"Ablation of HAMs_m on {args.dataset} (80-20-CUT)"))
    full = next(row for row in ablation if row.variant == "HAMs_m")
    for row in ablation:
        if row.variant == "HAMs_m":
            continue
        delta = 100.0 * (full.recall_at_10 - row.recall_at_10) / max(row.recall_at_10, 1e-9)
        factor = "low-order associations" if row.variant.endswith("-o") else "user preferences"
        print(f"removing {factor} changes Recall@10 by {-delta:.1f}% relative to the full model")

    # 2. Synergy-order sweep (the p rows of Tables 10-12) -------------------
    sweep = run_parameter_study(args.dataset, setting="80-20-CUT",
                                sweep={"synergy_order": [1, 2, 3, 4]},
                                scale=args.scale, epochs=args.epochs)
    print(format_table([row.as_row() for row in sweep],
                       title=f"Synergy order sweep on {args.dataset}"))
    best = max(sweep, key=lambda row: row.recall_at_10)
    print(f"best synergy order on this run: p={best.value} "
          f"(Recall@10={best.recall_at_10:.4f})")


if __name__ == "__main__":
    main()
