#!/usr/bin/env python
"""Explainable recommendations with HAM's linear score (extension).

HAM's recommendation score (paper Eq. 7/8) is a sum of three dot products
— the user's general preference, the high-order association over the last
``n_h`` items (enhanced with item synergies in HAMs) and the low-order
association over the last ``n_l`` items.  Unlike the attention/gating
baselines, every recommendation therefore comes with an exact, additive
explanation of *why* the item was ranked where it was.

This example trains HAMs_m, serves top-k recommendations through the
:class:`repro.serving.Recommender` wrapper, and prints the per-factor
decomposition of the top recommendations next to item-to-item similarity
queries.

Run with::

    python examples/explainable_recommendations.py [--dataset cds] [--epochs 12]
"""

import argparse

import numpy as np

from repro import Recommender, explain_ham_score
from repro.data import load_benchmark, split_setting
from repro.experiments.reporting import format_table
from repro.models import HAMSynergy
from repro.training import Trainer, TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cds")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--users", type=int, nargs="+", default=[0, 1, 2])
    args = parser.parse_args()

    # Train HAMs_m --------------------------------------------------------
    dataset = load_benchmark(args.dataset, scale=args.scale)
    split = split_setting(dataset, "80-3-CUT")
    model = HAMSynergy(dataset.num_users, dataset.num_items, embedding_dim=32,
                       n_h=5, n_l=2, synergy_order=2, pooling="mean",
                       rng=np.random.default_rng(0))
    result = Trainer(model, TrainingConfig(num_epochs=args.epochs, seed=0)).fit(
        split.train_plus_valid())
    print(f"trained HAMs_m on {dataset.name} in {result.train_seconds:.1f}s\n")

    # Serve and explain ----------------------------------------------------
    histories = split.train_plus_valid()
    recommender = Recommender(model, histories)

    for user in args.users:
        recommendations = recommender.recommend(user, k=3)
        rows = []
        for entry in recommendations:
            explanation = explain_ham_score(model, user, histories[user], entry.item)
            rows.append(explanation.as_row())
        print(format_table(
            rows,
            title=(f"user {user}: top-3 recommendations and their factor "
                   "decomposition (total = user_preference + high_order + low_order)"),
        ))
        print()

    # Item-to-item similarity under the learned embedding geometry ----------
    anchor = recommender.recommend(args.users[0], k=1)[0].item
    similar = recommender.similar_items(anchor, k=5)
    print(format_table(
        [{"rank": entry.rank, "item": entry.item, "cosine": round(entry.score, 4)}
         for entry in similar],
        title=f"items most similar to item {anchor} (candidate-embedding cosine)",
    ))


if __name__ == "__main__":
    main()
