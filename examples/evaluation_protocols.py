#!/usr/bin/env python
"""Evaluation protocols: full ranking vs sampled negatives, settings, and
beyond-accuracy statistics (extension).

Section 7.3 of the paper discusses how the choice of experimental setting
changes the reported numbers; the "are we really making progress" papers
it cites raise the same concern about sampled-negative evaluation.  This
example makes both effects visible on one trained model:

1. train HAMs_m once on a synthetic analogue (80-20-CUT training split);
2. evaluate it with the paper's full-ranking protocol and with the
   cheaper 100-sampled-negatives protocol;
3. slice NDCG@10 by each user's test-set size (the inflation argument of
   Section 7.3);
4. report the beyond-accuracy profile (coverage, Gini, popularity bias,
   novelty) next to a popularity ranker.

Run with::

    python examples/evaluation_protocols.py [--dataset cds] [--epochs 10]
"""

import argparse

import numpy as np

from repro.analysis import metric_by_test_set_size, performance_by_user_activity
from repro.data import load_benchmark, split_setting
from repro.evaluation import (
    RankingEvaluator,
    SampledRankingEvaluator,
    beyond_accuracy_report,
    bootstrap_confidence_interval,
)
from repro.experiments.reporting import format_table
from repro.models import HAMSynergy, Popularity
from repro.training import Trainer, TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cds")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    args = parser.parse_args()

    # 1. Data and one trained model ----------------------------------------
    dataset = load_benchmark(args.dataset, scale=args.scale)
    split = split_setting(dataset, "80-20-CUT")
    model = HAMSynergy(dataset.num_users, dataset.num_items, embedding_dim=32,
                       n_h=5, n_l=2, synergy_order=2, pooling="mean",
                       rng=np.random.default_rng(0))
    Trainer(model, TrainingConfig(num_epochs=args.epochs, seed=0)).fit(split.train_plus_valid())

    # 2. Full ranking vs sampled negatives ----------------------------------
    full = RankingEvaluator(split, ks=(5, 10)).evaluate(model)
    sampled = SampledRankingEvaluator(split, ks=(5, 10), num_negatives=100,
                                      max_test_items_per_user=3, seed=0).evaluate(model)
    interval = bootstrap_confidence_interval(full.per_user["Recall@10"],
                                             rng=np.random.default_rng(1))
    print(format_table(
        [
            {"protocol": "full ranking (paper)", "Recall@10": round(full["Recall@10"], 4),
             "NDCG@10": round(full["NDCG@10"], 4)},
            {"protocol": "100 sampled negatives", "Recall@10": "-",
             "NDCG@10": round(sampled["NDCG@10"], 4)},
        ],
        title=f"HAMs_m on {args.dataset}: protocol comparison",
    ))
    print(f"full-ranking Recall@10 = {interval.estimate:.4f} "
          f"[{interval.lower:.4f}, {interval.upper:.4f}] (95% bootstrap CI)\n")

    # 3. NDCG inflation by test-set size (Section 7.3) ----------------------
    buckets = metric_by_test_set_size(split, full, metric="NDCG@10", num_buckets=3)
    print(format_table([bucket.as_row() for bucket in buckets],
                       title="NDCG@10 by test-set size in 80-20-CUT"))

    # 3b. And by user activity (Section 7.2's sparsity argument) ------------
    activity = performance_by_user_activity(split, full, metric="Recall@10", num_buckets=3)
    print()
    print(format_table([bucket.as_row() for bucket in activity],
                       title="Recall@10 by user activity (training interactions)"))

    # 4. Beyond-accuracy profile -------------------------------------------
    pop = Popularity(dataset.num_users, dataset.num_items).fit_counts(split.train_plus_valid())
    rows = []
    for name, candidate in (("HAMs_m", model), ("POP", pop)):
        report = beyond_accuracy_report(candidate, split, k=10)
        rows.append({"method": name, **{k: round(v, 4) for k, v in report.as_row().items()}})
    print()
    print(format_table(rows, title="Beyond-accuracy profile of the top-10 lists"))


if __name__ == "__main__":
    main()
