"""Repository tooling scripts (run as ``python -m scripts.<name>``)."""
