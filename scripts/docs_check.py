"""Validate intra-repo links in the Markdown documentation.

Scans ``README.md`` and every ``docs/*.md`` page for Markdown links and
reference-style definitions, and verifies that each repo-relative target
resolves to an existing file or directory.  External links
(``http(s)://``, ``mailto:``) are not fetched — this checker only keeps
the *internal* documentation graph from rotting as files move.

Run it directly::

    python -m scripts.docs_check          # from the repo root
    make docs-check

or through the fast test tier (``tests/test_docs_check.py``), which
fails the suite on the first broken link.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = ["check_file", "check_repo", "collect_links", "main"]

#: Inline links ``[text](target)`` — images included via the optional
#: leading ``!`` — plus reference definitions ``[label]: target``.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_FENCE = re.compile(r"```.*?```", re.DOTALL)

#: Schemes that point outside the repository and are skipped.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def collect_links(text: str) -> list[str]:
    """All link targets in ``text``, fenced code blocks excluded."""
    prose = _FENCE.sub("", text)
    targets = _INLINE_LINK.findall(prose)
    targets += _REFERENCE_DEF.findall(prose)
    return targets


def _is_external(target: str) -> bool:
    return target.startswith(_EXTERNAL_PREFIXES)


def check_file(path: Path, root: Path) -> list[str]:
    """Broken-link descriptions for one Markdown file (empty = clean).

    Targets are resolved relative to the file's own directory, must stay
    inside ``root``, and must exist on disk.  Pure-fragment targets
    (``#section``) are accepted; fragments on file targets are checked
    for the file part only.
    """
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    for target in collect_links(text):
        if _is_external(target) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        relative = path.relative_to(root)
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            errors.append(f"{relative}: link escapes the repository: {target}")
            continue
        if not resolved.exists():
            errors.append(f"{relative}: broken link: {target}")
    return errors


def check_repo(root: Path | None = None) -> list[str]:
    """Broken links across ``README.md`` and ``docs/*.md`` under ``root``."""
    root = Path(root) if root is not None else Path(__file__).resolve().parent.parent
    pages = sorted(root.glob("docs/*.md"))
    readme = root / "README.md"
    if readme.exists():
        pages.insert(0, readme)
    errors: list[str] = []
    for page in pages:
        errors.extend(check_file(page, root))
    return errors


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: report broken links, exit 1 if any."""
    root = Path(argv[0]) if argv else None
    errors = check_repo(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"docs-check: {len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print("docs-check: all intra-repo documentation links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
