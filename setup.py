"""Setuptools entry point.

The legacy ``setup.py`` path is used (instead of a PEP 517 build-system
table) so that ``pip install -e .`` works in offline environments without
the ``wheel`` package or network access to build dependencies.
"""

from setuptools import setup

setup()
