"""Confidence intervals and non-parametric paired tests.

The paper reports point estimates with a paired t-test significance flag.
These utilities add the uncertainty quantification a careful reader wants
next to those flags: bootstrap confidence intervals on any per-user metric
and a Wilcoxon signed-rank alternative to the t-test that does not assume
normally distributed per-user differences (Recall@k distributions are
heavily skewed, so the assumption is worth relaxing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "ConfidenceInterval",
    "bootstrap_confidence_interval",
    "bootstrap_improvement_test",
    "wilcoxon_improvement_test",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a point estimate."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def _validate_scores(scores: np.ndarray, minimum: int = 2) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError("per-user scores must be a 1-D array")
    if scores.size < minimum:
        raise ValueError(f"need at least {minimum} users")
    return scores


def bootstrap_confidence_interval(scores: np.ndarray, confidence: float = 0.95,
                                  num_resamples: int = 2000,
                                  rng: np.random.Generator | None = None) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval of the mean per-user metric.

    Parameters
    ----------
    scores:
        Per-user metric values (e.g. ``EvaluationResult.per_user["Recall@10"]``).
    confidence:
        Two-sided confidence level in (0, 1).
    num_resamples:
        Bootstrap resamples; 2000 is ample for the percentile method.
    rng:
        Random generator for reproducible intervals.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if num_resamples < 100:
        raise ValueError("num_resamples must be at least 100")
    scores = _validate_scores(scores)
    rng = rng or np.random.default_rng()

    indices = rng.integers(0, scores.size, size=(num_resamples, scores.size))
    means = scores[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(scores.mean()), lower=float(lower), upper=float(upper),
        confidence=confidence,
    )


def bootstrap_improvement_test(scores_a: np.ndarray, scores_b: np.ndarray,
                               confidence: float = 0.95, num_resamples: int = 2000,
                               rng: np.random.Generator | None = None) -> ConfidenceInterval:
    """Bootstrap interval of the paired mean difference (A minus B).

    The improvement of A over B is significant at the chosen confidence
    level when the returned interval excludes zero.
    """
    scores_a = _validate_scores(scores_a)
    scores_b = _validate_scores(scores_b)
    if scores_a.shape != scores_b.shape:
        raise ValueError("paired comparison requires equally sized score arrays")
    differences = scores_a - scores_b
    return bootstrap_confidence_interval(differences, confidence=confidence,
                                         num_resamples=num_resamples, rng=rng)


def wilcoxon_improvement_test(scores_a: np.ndarray, scores_b: np.ndarray,
                              confidence: float = 0.95) -> tuple[float, bool]:
    """Wilcoxon signed-rank test of A improving over B.

    Returns ``(p_value, significant)``.  When every paired difference is
    zero the test is undefined; the comparison is then reported as not
    significant with p-value 1.0.
    """
    scores_a = _validate_scores(scores_a)
    scores_b = _validate_scores(scores_b)
    if scores_a.shape != scores_b.shape:
        raise ValueError("paired comparison requires equally sized score arrays")
    differences = scores_a - scores_b
    if np.allclose(differences, 0.0):
        return 1.0, False
    statistic = stats.wilcoxon(scores_a, scores_b, zero_method="wilcox",
                               alternative="two-sided")
    p_value = float(statistic.pvalue)
    return p_value, p_value < (1.0 - confidence)
