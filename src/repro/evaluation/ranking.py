"""Helpers for turning model scores into ranked recommendation lists."""

from __future__ import annotations

import numpy as np

__all__ = ["rank_items", "top_k_items", "exclude_items"]


def exclude_items(scores: np.ndarray, excluded: list[set[int]] | None) -> np.ndarray:
    """Return a copy of ``scores`` with excluded items pushed to -inf.

    Following the paper's protocol (and HGN/Caser), items the user already
    interacted with during training are not recommended again.
    """
    result = np.array(scores, dtype=np.float64, copy=True)
    if excluded is None:
        return result
    if len(excluded) != len(result):
        raise ValueError("one exclusion set per score row is required")
    for row, items in enumerate(excluded):
        if items:
            result[row, list(items)] = -np.inf
    return result


def top_k_items(scores: np.ndarray, k: int,
                excluded: list[set[int]] | None = None) -> np.ndarray:
    """Indices of the top-k items per row, best first.

    Uses ``argpartition`` + a local sort so the cost is
    ``O(n + k log k)`` per row rather than a full ``O(n log n)`` sort —
    this is what makes the run-time comparison of Table 14 meaningful for
    large catalogues.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if excluded is not None:
        scores = exclude_items(scores, excluded)
    num_items = scores.shape[1]
    k = min(k, num_items)
    partitioned = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    row_indices = np.arange(scores.shape[0])[:, None]
    order = np.argsort(-scores[row_indices, partitioned], axis=1, kind="stable")
    return partitioned[row_indices, order]


def rank_items(scores: np.ndarray, excluded: list[set[int]] | None = None) -> np.ndarray:
    """Full ranking of all items per row (best first)."""
    if excluded is not None:
        scores = exclude_items(scores, excluded)
    return np.argsort(-scores, axis=1, kind="stable")
