"""Statistical significance of performance differences.

The paper flags improvements that are statistically significant at the
95% (Tables 3-8) or 90% (Table 9) confidence level.  Differences are
assessed with a paired t-test over the per-user metric values of the two
methods (both methods are evaluated on exactly the same users, so the
pairing is natural).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["SignificanceResult", "paired_improvement_test"]


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a paired comparison between two methods."""

    mean_a: float
    mean_b: float
    improvement_percent: float
    t_statistic: float
    p_value: float
    significant: bool

    def flag(self) -> str:
        """The paper's ``*`` marker for significant improvements."""
        return "*" if self.significant else ""


def paired_improvement_test(scores_a: np.ndarray, scores_b: np.ndarray,
                            confidence: float = 0.95) -> SignificanceResult:
    """Test whether method A improves over method B.

    Parameters
    ----------
    scores_a, scores_b:
        Per-user metric values of the two methods over the same users, in
        the same order.
    confidence:
        Confidence level; significance is declared when the two-sided
        p-value is below ``1 - confidence``.

    Returns
    -------
    SignificanceResult
        Means, percentage improvement of A over B, t statistic, p-value
        and the significance verdict.
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if scores_a.shape != scores_b.shape:
        raise ValueError("paired test requires equally sized score arrays")
    if scores_a.size < 2:
        raise ValueError("paired test requires at least two users")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")

    mean_a = float(scores_a.mean())
    mean_b = float(scores_b.mean())
    improvement = 100.0 * (mean_a - mean_b) / mean_b if mean_b != 0 else float("inf")

    differences = scores_a - scores_b
    if np.allclose(differences, 0.0):
        # Identical per-user scores: no difference, trivially not significant.
        return SignificanceResult(mean_a, mean_b, 0.0, 0.0, 1.0, False)

    t_statistic, p_value = stats.ttest_rel(scores_a, scores_b)
    significant = bool(p_value < (1.0 - confidence))
    return SignificanceResult(
        mean_a=mean_a,
        mean_b=mean_b,
        improvement_percent=improvement,
        t_statistic=float(t_statistic),
        p_value=float(p_value),
        significant=significant,
    )
