"""Full-ranking evaluation protocol (paper Sections 5.3-5.4).

For every user with test items, the model receives the user's most recent
``input_length`` training items (left-padded when the history is shorter),
scores the whole catalogue, the items already interacted with during
training are excluded, and Recall@k / NDCG@k are computed against the
user's test items.  The reported value of each metric is the mean over all
evaluable users, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.splits import DatasetSplit
from repro.evaluation.metrics import (
    batch_hits,
    batch_ndcg_at_k,
    batch_recall_at_k,
    truth_matrix,
)
from repro.models.base import SequentialRecommender

__all__ = ["RankingEvaluator", "EvaluationResult"]


@dataclass
class EvaluationResult:
    """Aggregated metrics plus the per-user values used for significance tests."""

    metrics: dict[str, float] = field(default_factory=dict)
    per_user: dict[str, np.ndarray] = field(default_factory=dict)
    num_users_evaluated: int = 0

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def as_row(self, prefix: str = "") -> dict[str, float]:
        """Metrics as a flat dict (optionally prefixed), for report tables."""
        return {f"{prefix}{name}": value for name, value in self.metrics.items()}


class RankingEvaluator:
    """Evaluate a model on one :class:`DatasetSplit`.

    Parameters
    ----------
    split:
        The experimental-setting split to evaluate on.
    ks:
        Cutoffs; the paper reports k = 5 and 10.
    mode:
        ``"test"`` — inputs are the last items of train+validation and the
        targets are the test items (the paper's testing protocol);
        ``"validation"`` — inputs come from the training split only and
        targets are the validation items (used for model selection and
        grid search).
    exclude_seen:
        Exclude items already interacted with in the input history from
        the ranking (the protocol of HGN/Caser that the paper follows).
    batch_size:
        Number of users scored per forward pass.
    n_workers:
        Fan the scoring sweep out over this many worker processes
        (:class:`~repro.parallel.sharded.ShardedScoringEngine`, sharded
        by user range over shared memory).  ``<= 1`` keeps the serial
        engine; results are bit-identical either way.
    """

    def __init__(self, split: DatasetSplit, ks: tuple[int, ...] = (5, 10),
                 mode: str = "test", exclude_seen: bool = True,
                 batch_size: int = 256, n_workers: int = 0):
        if mode not in ("test", "validation"):
            raise ValueError("mode must be 'test' or 'validation'")
        if not ks or any(k < 1 for k in ks):
            raise ValueError("ks must contain positive cutoffs")
        self.split = split
        self.ks = tuple(sorted(ks))
        self.mode = mode
        self.exclude_seen = exclude_seen
        self.batch_size = batch_size
        self.n_workers = n_workers

        if mode == "test":
            self._histories = split.train_plus_valid()
            self._targets = split.test
        else:
            self._histories = split.train
            self._targets = split.valid
        self._users = [u for u, target in enumerate(self._targets) if target]

    @property
    def num_evaluable_users(self) -> int:
        """Users that have at least one target item."""
        return len(self._users)

    def evaluate(self, model: SequentialRecommender) -> EvaluationResult:
        """Compute Recall@k and NDCG@k for ``model`` on this split.

        Scoring funnels through one :class:`~repro.serving.engine.ScoringEngine`
        (cached padded histories, vectorized seen-item masking) and the
        per-user metrics are aggregated vectorized over the ranked-id
        matrix — no per-user Python loop.  With ``n_workers > 1`` the
        sweep is sharded by user range over worker processes
        (bit-identical results, see :mod:`repro.parallel`).
        """
        from repro.parallel.sharded import make_scoring_engine

        model.eval()
        result = EvaluationResult(num_users_evaluated=len(self._users))
        if not self._users:
            result.metrics = {f"{metric}@{k}": 0.0 for metric in ("Recall", "NDCG") for k in self.ks}
            return result

        engine = make_scoring_engine(model, self._histories,
                                     n_workers=self.n_workers,
                                     exclude_seen=self.exclude_seen,
                                     micro_batch_size=self.batch_size,
                                     copy_weights=False)
        try:
            return self._evaluate_with_engine(engine, result)
        finally:
            engine.close()

    def _evaluate_with_engine(self, engine, result: EvaluationResult) -> EvaluationResult:
        max_k = max(self.ks)
        per_user: dict[str, list[np.ndarray]] = {
            f"{metric}@{k}": [] for metric in ("Recall", "NDCG") for k in self.ks
        }

        # One top_k call over all evaluable users: the serial engine chunks
        # by micro_batch_size internally and the sharded engine fans the
        # whole sweep out to its workers in one round trip.
        ranked_all = engine.top_k(self._users, max_k)
        for start in range(0, len(self._users), self.batch_size):
            batch_users = self._users[start:start + self.batch_size]
            ranked = ranked_all[start:start + self.batch_size]
            truth = truth_matrix([self._targets[user] for user in batch_users],
                                 self.split.num_items)
            hits = batch_hits(ranked, truth)
            truth_counts = truth.sum(axis=1)
            for k in self.ks:
                per_user[f"Recall@{k}"].append(batch_recall_at_k(hits, truth_counts, k))
                per_user[f"NDCG@{k}"].append(batch_ndcg_at_k(hits, truth_counts, k))

        result.per_user = {name: np.concatenate(values) for name, values in per_user.items()}
        result.metrics = {name: float(values.mean()) for name, values in result.per_user.items()}
        return result

    def validation_metric(self, model: SequentialRecommender,
                          metric: str = "Recall@10") -> float:
        """Single scalar used for model selection (paper: Recall@10)."""
        return self.evaluate(model).metrics[metric]
