"""Sampled-negative evaluation protocol.

The paper evaluates against the *full* catalogue (Section 5.4), which is
the most faithful protocol but linear in the number of items.  A widely
used cheaper alternative — and one the "are we really making progress"
literature the paper cites has criticized for biasing comparisons — ranks
each test item only against ``num_negatives`` sampled non-interacted
items.  Implementing both protocols lets that bias be measured directly on
the synthetic analogues: the full-ranking evaluator is the reference, and
this sampled evaluator is the approximation whose distortion can be
quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.splits import DatasetSplit
from repro.models.base import SequentialRecommender

__all__ = ["SampledRankingEvaluator", "SampledEvaluationResult"]


@dataclass
class SampledEvaluationResult:
    """Aggregated sampled-protocol metrics plus per-(user, test item) values."""

    metrics: dict[str, float] = field(default_factory=dict)
    per_instance: dict[str, np.ndarray] = field(default_factory=dict)
    num_instances: int = 0

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


class SampledRankingEvaluator:
    """Rank each test item against a fixed number of sampled negatives.

    Parameters
    ----------
    split:
        The experimental-setting split to evaluate on.
    ks:
        Cutoffs for HitRate@k / NDCG@k over the sampled candidate list.
    num_negatives:
        Sampled non-interacted items per test item (the classical protocol
        uses 100).
    max_test_items_per_user:
        Cap on test items evaluated per user, to keep the protocol cheap
        on long test sequences; ``None`` evaluates all of them.
    seed:
        Seed of the negative-sampling generator.
    n_workers:
        Fan the candidate scoring out over this many worker processes
        (sharded by user range, bit-identical scores); ``<= 1`` keeps the
        serial engine.
    """

    def __init__(self, split: DatasetSplit, ks: tuple[int, ...] = (5, 10),
                 num_negatives: int = 100,
                 max_test_items_per_user: int | None = None,
                 seed: int = 0, batch_size: int = 256, n_workers: int = 0):
        if not ks or any(k < 1 for k in ks):
            raise ValueError("ks must contain positive cutoffs")
        if num_negatives < 1:
            raise ValueError("num_negatives must be positive")
        if max_test_items_per_user is not None and max_test_items_per_user < 1:
            raise ValueError("max_test_items_per_user must be positive or None")
        self.split = split
        self.ks = tuple(sorted(ks))
        self.num_negatives = num_negatives
        self.max_test_items_per_user = max_test_items_per_user
        self.seed = seed
        self.batch_size = batch_size
        self.n_workers = n_workers
        self._histories = split.train_plus_valid()

    # ------------------------------------------------------------------ #
    # Candidate construction
    # ------------------------------------------------------------------ #
    def _sample_negatives(self, user: int, rng: np.random.Generator) -> np.ndarray:
        """Sample non-interacted items for ``user`` (best effort on dense users)."""
        seen = set(self._histories[user]) | set(self.split.test[user])
        negatives = []
        attempts = 0
        limit = 50 * self.num_negatives
        while len(negatives) < self.num_negatives and attempts < limit:
            candidate = int(rng.integers(0, self.split.num_items))
            attempts += 1
            if candidate in seen:
                continue
            negatives.append(candidate)
            seen.add(candidate)
        while len(negatives) < self.num_negatives:
            negatives.append(int(rng.integers(0, self.split.num_items)))
        return np.asarray(negatives, dtype=np.int64)

    def _instances(self) -> list[tuple[int, int]]:
        """(user, test item) pairs evaluated under this protocol."""
        pairs = []
        for user, test_items in enumerate(self.split.test):
            items = test_items[: self.max_test_items_per_user] \
                if self.max_test_items_per_user else test_items
            pairs.extend((user, item) for item in items)
        return pairs

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, model: SequentialRecommender) -> SampledEvaluationResult:
        """HitRate@k, NDCG@k and MRR over sampled candidate lists.

        Scoring goes through the shared :class:`ScoringEngine`: users with
        several test items appear in many (user, item) pairs, and the
        engine's representation cache scores each user's history exactly
        once across all of them.
        """
        model.eval()
        rng = np.random.default_rng(self.seed)
        pairs = self._instances()
        result = SampledEvaluationResult(num_instances=len(pairs))
        metric_names = [f"HitRate@{k}" for k in self.ks] + [f"NDCG@{k}" for k in self.ks] + ["MRR"]
        if not pairs:
            result.metrics = {name: 0.0 for name in metric_names}
            return result

        from repro.parallel.sharded import make_scoring_engine

        engine = make_scoring_engine(model, self._histories,
                                     n_workers=self.n_workers,
                                     exclude_seen=False,
                                     micro_batch_size=self.batch_size,
                                     copy_weights=False)
        per_instance: dict[str, list[float]] = {name: [] for name in metric_names}

        try:
            for start in range(0, len(pairs), self.batch_size):
                batch = pairs[start:start + self.batch_size]
                users = np.asarray([user for user, _ in batch], dtype=np.int64)
                scores = engine.score_all(users)
                for row, (user, positive) in enumerate(batch):
                    negatives = self._sample_negatives(user, rng)
                    candidate_scores = scores[row, np.concatenate([[positive], negatives])]
                    # Rank of the positive among the candidates (0 = best).
                    rank = int((candidate_scores > candidate_scores[0]).sum())
                    for k in self.ks:
                        hit = 1.0 if rank < k else 0.0
                        per_instance[f"HitRate@{k}"].append(hit)
                        per_instance[f"NDCG@{k}"].append(
                            1.0 / np.log2(rank + 2.0) if rank < k else 0.0
                        )
                    per_instance["MRR"].append(1.0 / (rank + 1.0))
        finally:
            engine.close()

        result.per_instance = {name: np.asarray(values) for name, values in per_instance.items()}
        result.metrics = {name: float(values.mean()) for name, values in result.per_instance.items()}
        return result
