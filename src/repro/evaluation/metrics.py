"""Ranking metrics: Recall@k and NDCG@k (paper Section 5.4).

For one user:

* ``Recall@k`` — fraction of the user's ground-truth test items that
  appear among the top-k recommendations.
* ``NDCG@k`` — discounted cumulative gain of the top-k list (gain 1 when
  the recommended item is a test item, 0 otherwise), normalized by the
  ideal DCG for that user (all test items ranked first).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["recall_at_k", "ndcg_at_k", "hit_rate_at_k", "average_precision_at_k",
           "precision_at_k", "mrr_at_k", "truth_matrix", "batch_hits",
           "batch_recall_at_k", "batch_ndcg_at_k"]


def _validate(recommended: Sequence[int], k: int) -> list[int]:
    if k < 1:
        raise ValueError("k must be positive")
    return list(recommended)[:k]


def recall_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """Recall@k for one user; 0.0 when the user has no test items."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    hits = sum(1 for item in top if item in truth)
    return hits / len(truth)


def ndcg_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """NDCG@k with binary gains for one user; 0.0 without test items."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    dcg = 0.0
    for position, item in enumerate(top):
        if item in truth:
            dcg += 1.0 / np.log2(position + 2.0)
    ideal_hits = min(len(truth), k)
    ideal = sum(1.0 / np.log2(position + 2.0) for position in range(ideal_hits))
    return dcg / ideal


def hit_rate_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """1.0 if any test item appears in the top-k, else 0.0."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    return 1.0 if any(item in truth for item in top) else 0.0


def average_precision_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """AP@k with binary relevance (extra metric, not in the paper's tables)."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(top):
        if item in truth:
            hits += 1
            precision_sum += hits / (position + 1.0)
    return precision_sum / min(len(truth), k)


def precision_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """Precision@k — fraction of the top-k recommendations that are test items."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth or not top:
        return 0.0
    hits = sum(1 for item in top if item in truth)
    return hits / k


# ---------------------------------------------------------------------- #
# Vectorized batch aggregation (used by the ranking evaluator)
# ---------------------------------------------------------------------- #
def truth_matrix(targets: Sequence[Sequence[int]], num_items: int) -> np.ndarray:
    """Boolean ``(B, num_items)`` membership matrix of the target items.

    Duplicate target items collapse to one entry, matching the ``set``
    semantics of the scalar metrics above.
    """
    truth = np.zeros((len(targets), num_items), dtype=bool)
    for row, items in enumerate(targets):
        if len(items):
            truth[row, np.asarray(items, dtype=np.int64)] = True
    return truth


def batch_hits(ranked: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Boolean ``(B, K)`` matrix — True where the ranked item is a target.

    ``ranked`` is a ``(B, K)`` matrix of recommended item ids (best first,
    e.g. from :func:`~repro.evaluation.ranking.top_k_items`) and ``truth``
    a ``(B, num_items)`` membership matrix from :func:`truth_matrix`.
    """
    rows = np.arange(ranked.shape[0])[:, None]
    return truth[rows, ranked]


def batch_recall_at_k(hits: np.ndarray, truth_counts: np.ndarray, k: int) -> np.ndarray:
    """Per-user Recall@k from a hit matrix; 0.0 where a user has no targets."""
    if k < 1:
        raise ValueError("k must be positive")
    counts = np.asarray(truth_counts, dtype=np.float64)
    hit_counts = hits[:, :k].sum(axis=1, dtype=np.float64)
    return np.where(counts > 0, hit_counts / np.maximum(counts, 1.0), 0.0)


def batch_ndcg_at_k(hits: np.ndarray, truth_counts: np.ndarray, k: int) -> np.ndarray:
    """Per-user NDCG@k (binary gains) from a hit matrix."""
    if k < 1:
        raise ValueError("k must be positive")
    counts = np.asarray(truth_counts, dtype=np.int64)
    width = min(k, hits.shape[1])
    discounts = 1.0 / np.log2(np.arange(max(k, width)) + 2.0)
    dcg = (hits[:, :width] * discounts[:width]).sum(axis=1)
    # Ideal DCG places min(#targets, k) hits at the top of the list.
    ideal_cumulative = np.concatenate([[0.0], np.cumsum(discounts[:k])])
    ideal = ideal_cumulative[np.minimum(counts, k)]
    return np.where(counts > 0, dcg / np.maximum(ideal, 1e-12), 0.0)


def mrr_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """MRR@k — reciprocal rank of the first correctly recommended item."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    for position, item in enumerate(top):
        if item in truth:
            return 1.0 / (position + 1.0)
    return 0.0
