"""Ranking metrics: Recall@k and NDCG@k (paper Section 5.4).

For one user:

* ``Recall@k`` — fraction of the user's ground-truth test items that
  appear among the top-k recommendations.
* ``NDCG@k`` — discounted cumulative gain of the top-k list (gain 1 when
  the recommended item is a test item, 0 otherwise), normalized by the
  ideal DCG for that user (all test items ranked first).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["recall_at_k", "ndcg_at_k", "hit_rate_at_k", "average_precision_at_k",
           "precision_at_k", "mrr_at_k"]


def _validate(recommended: Sequence[int], k: int) -> list[int]:
    if k < 1:
        raise ValueError("k must be positive")
    return list(recommended)[:k]


def recall_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """Recall@k for one user; 0.0 when the user has no test items."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    hits = sum(1 for item in top if item in truth)
    return hits / len(truth)


def ndcg_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """NDCG@k with binary gains for one user; 0.0 without test items."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    dcg = 0.0
    for position, item in enumerate(top):
        if item in truth:
            dcg += 1.0 / np.log2(position + 2.0)
    ideal_hits = min(len(truth), k)
    ideal = sum(1.0 / np.log2(position + 2.0) for position in range(ideal_hits))
    return dcg / ideal


def hit_rate_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """1.0 if any test item appears in the top-k, else 0.0."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    return 1.0 if any(item in truth for item in top) else 0.0


def average_precision_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """AP@k with binary relevance (extra metric, not in the paper's tables)."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(top):
        if item in truth:
            hits += 1
            precision_sum += hits / (position + 1.0)
    return precision_sum / min(len(truth), k)


def precision_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """Precision@k — fraction of the top-k recommendations that are test items."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth or not top:
        return 0.0
    hits = sum(1 for item in top if item in truth)
    return hits / k


def mrr_at_k(recommended: Sequence[int], ground_truth: Sequence[int], k: int) -> float:
    """MRR@k — reciprocal rank of the first correctly recommended item."""
    top = _validate(recommended, k)
    truth = set(ground_truth)
    if not truth:
        return 0.0
    for position, item in enumerate(top):
        if item in truth:
            return 1.0 / (position + 1.0)
    return 0.0
