"""Testing run-time measurement (paper Section 6.7, Table 14).

The paper reports the average per-user scoring time during testing — the
latency that matters for real-time recommendation — and the speedup of
HAMs_m over each baseline.  The measurement here follows the same recipe:
time the full scoring pass over the evaluable users and divide by the
number of users.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.windows import pad_histories, pad_id_for
from repro.evaluation.evaluator import RankingEvaluator
from repro.models.base import SequentialRecommender

__all__ = ["InferenceTiming", "measure_inference_time"]


@dataclass(frozen=True)
class InferenceTiming:
    """Average per-user scoring latency."""

    model_name: str
    total_seconds: float
    num_users: int
    repeats: int

    @property
    def seconds_per_user(self) -> float:
        if self.num_users == 0:
            return 0.0
        return self.total_seconds / (self.num_users * self.repeats)


def measure_inference_time(model: SequentialRecommender,
                           evaluator: RankingEvaluator,
                           repeats: int = 1,
                           model_name: str | None = None) -> InferenceTiming:
    """Time ``model.score_all`` over every evaluable user of ``evaluator``.

    Parameters
    ----------
    repeats:
        Number of full passes (averaging over repeats stabilizes the
        measurement for fast models).
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    model.eval()
    users = evaluator._users
    if not users:
        return InferenceTiming(model_name or type(model).__name__, 0.0, 0, repeats)

    batch_size = evaluator.batch_size
    pad = pad_id_for(evaluator.split.num_items)
    # Pre-build the inputs so only the scoring pass is timed.
    batches = []
    for start in range(0, len(users), batch_size):
        chunk = users[start:start + batch_size]
        inputs = pad_histories(evaluator._histories, model.input_length, pad, users=chunk)
        batches.append((np.asarray(chunk, dtype=np.int64), inputs))

    start_time = time.perf_counter()
    for _ in range(repeats):
        for user_array, inputs in batches:
            model.score_all(user_array, inputs)
    elapsed = time.perf_counter() - start_time
    return InferenceTiming(
        model_name=model_name or type(model).__name__,
        total_seconds=elapsed,
        num_users=len(users),
        repeats=repeats,
    )
