"""Evaluation: ranking metrics, the test protocol, significance and timing.

The paper evaluates with Recall@k and NDCG@k (k = 5, 10) over the full
item catalogue: for every user, the items of the testing split must be
ranked among the top-k of all items the user has not interacted with
during training (Section 5.4).  Testing run-time per user (Table 14) is
measured by :mod:`repro.evaluation.timing` and statistical significance
(the ``*`` flags of Tables 3-9) by :mod:`repro.evaluation.significance`.

Extensions beyond the paper's protocol: extra list metrics (MRR,
precision), beyond-accuracy statistics (coverage, Gini, popularity bias,
novelty), bootstrap/Wilcoxon uncertainty quantification, and the sampled-
negative protocol whose bias relative to full ranking can be measured
directly.
"""

from repro.evaluation.metrics import (
    average_precision_at_k,
    hit_rate_at_k,
    mrr_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.evaluation.ranking import rank_items, top_k_items
from repro.evaluation.evaluator import EvaluationResult, RankingEvaluator
from repro.evaluation.sampled import SampledEvaluationResult, SampledRankingEvaluator
from repro.evaluation.significance import paired_improvement_test
from repro.evaluation.confidence import (
    ConfidenceInterval,
    bootstrap_confidence_interval,
    bootstrap_improvement_test,
    wilcoxon_improvement_test,
)
from repro.evaluation.coverage import (
    BeyondAccuracyReport,
    average_recommendation_popularity,
    beyond_accuracy_report,
    catalogue_coverage,
    gini_coefficient,
    novelty,
)
from repro.evaluation.timing import measure_inference_time

__all__ = [
    "recall_at_k",
    "ndcg_at_k",
    "hit_rate_at_k",
    "average_precision_at_k",
    "precision_at_k",
    "mrr_at_k",
    "rank_items",
    "top_k_items",
    "RankingEvaluator",
    "EvaluationResult",
    "SampledRankingEvaluator",
    "SampledEvaluationResult",
    "paired_improvement_test",
    "ConfidenceInterval",
    "bootstrap_confidence_interval",
    "bootstrap_improvement_test",
    "wilcoxon_improvement_test",
    "BeyondAccuracyReport",
    "beyond_accuracy_report",
    "catalogue_coverage",
    "gini_coefficient",
    "average_recommendation_popularity",
    "novelty",
    "measure_inference_time",
]
