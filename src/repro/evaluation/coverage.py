"""Beyond-accuracy properties of the recommendation lists.

The paper's Section 7.2 traces HGN's weakly learned attention weights back
to item-frequency skew; the natural complementary question is how skewed
the *recommendations* themselves are.  This module measures that skew for
any model: catalogue coverage, the Gini concentration of recommendation
exposure, the average popularity of recommended items (popularity bias)
and novelty (mean self-information of the recommended items under the
training popularity distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.splits import DatasetSplit
from repro.models.base import SequentialRecommender

__all__ = [
    "BeyondAccuracyReport",
    "catalogue_coverage",
    "gini_coefficient",
    "average_recommendation_popularity",
    "novelty",
    "beyond_accuracy_report",
]


@dataclass(frozen=True)
class BeyondAccuracyReport:
    """Aggregate beyond-accuracy statistics of a model's top-k lists."""

    k: int
    num_users: int
    coverage: float
    gini: float
    average_popularity: float
    novelty: float

    def as_row(self) -> dict[str, float]:
        """Flat dict for report tables."""
        return {
            "coverage": self.coverage,
            "gini": self.gini,
            "avg_popularity": self.average_popularity,
            "novelty": self.novelty,
        }


def catalogue_coverage(recommendations: np.ndarray, num_items: int) -> float:
    """Fraction of the catalogue that appears in at least one top-k list."""
    if num_items < 1:
        raise ValueError("num_items must be positive")
    recommended = np.unique(np.asarray(recommendations).ravel())
    recommended = recommended[(recommended >= 0) & (recommended < num_items)]
    return len(recommended) / num_items


def gini_coefficient(exposure_counts: np.ndarray) -> float:
    """Gini concentration of recommendation exposure over items.

    0 means every item is recommended equally often; values close to 1
    mean a few items absorb almost all recommendations.
    """
    counts = np.asarray(exposure_counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("exposure_counts must be a non-empty 1-D array")
    if np.any(counts < 0):
        raise ValueError("exposure counts cannot be negative")
    total = counts.sum()
    if total == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    n = counts.size
    cumulative = np.cumsum(sorted_counts)
    # Standard formula: G = (n + 1 - 2 * sum_i cum_i / total) / n
    return float((n + 1 - 2.0 * cumulative.sum() / total) / n)


def average_recommendation_popularity(recommendations: np.ndarray,
                                      item_frequencies: np.ndarray) -> float:
    """Mean training-set frequency of the recommended items (popularity bias)."""
    frequencies = np.asarray(item_frequencies, dtype=np.float64)
    items = np.asarray(recommendations, dtype=np.int64).ravel()
    if items.size == 0:
        return 0.0
    if items.min() < 0 or items.max() >= frequencies.size:
        raise ValueError("recommendation ids outside the frequency table")
    return float(frequencies[items].mean())


def novelty(recommendations: np.ndarray, item_frequencies: np.ndarray) -> float:
    """Mean self-information ``-log2 p(item)`` of recommended items.

    ``p(item)`` is the item's share of training interactions; rare
    recommendations score high.  Items never seen in training contribute
    with the smallest observed probability (they cannot be assigned zero).
    """
    frequencies = np.asarray(item_frequencies, dtype=np.float64)
    total = frequencies.sum()
    if total <= 0:
        raise ValueError("item_frequencies must contain at least one interaction")
    probabilities = frequencies / total
    floor = probabilities[probabilities > 0].min()
    probabilities = np.maximum(probabilities, floor)
    items = np.asarray(recommendations, dtype=np.int64).ravel()
    if items.size == 0:
        return 0.0
    return float(-np.log2(probabilities[items]).mean())


def beyond_accuracy_report(model: SequentialRecommender, split: DatasetSplit,
                           k: int = 10, batch_size: int = 256,
                           n_workers: int = 0) -> BeyondAccuracyReport:
    """Compute the beyond-accuracy statistics of ``model`` on ``split``.

    The model recommends ``k`` items to every user with test items, using
    the paper's testing protocol (inputs are the last training+validation
    items, already-seen items are excluded from the ranking).  With
    ``n_workers > 1`` the top-k sweep fans out over user-range shards
    (bit-identical recommendations).
    """
    if k < 1:
        raise ValueError("k must be positive")
    histories = split.train_plus_valid()
    users = split.users_with_test_items()
    if not users:
        raise ValueError("the split has no users with test items")

    item_frequencies = np.zeros(split.num_items, dtype=np.float64)
    for seq in split.train:
        if seq:
            np.add.at(item_frequencies, np.asarray(seq, dtype=np.int64), 1.0)

    from repro.parallel.sharded import make_scoring_engine

    engine = make_scoring_engine(model, histories, n_workers=n_workers,
                                 exclude_seen=True, micro_batch_size=batch_size,
                                 copy_weights=False)
    try:
        recommendations = engine.top_k(users, k)  # chunked/fanned out internally
    finally:
        engine.close()

    exposure = np.zeros(split.num_items, dtype=np.float64)
    np.add.at(exposure, recommendations.ravel(), 1.0)

    return BeyondAccuracyReport(
        k=k,
        num_users=len(users),
        coverage=catalogue_coverage(recommendations, split.num_items),
        gini=gini_coefficient(exposure),
        average_popularity=average_recommendation_popularity(recommendations, item_frequencies),
        novelty=novelty(recommendations, item_frequencies),
    )
