"""High-level recommendation serving and score explanation.

The paper motivates HAM through its run-time behaviour (Table 14): at
serving time a recommendation request has to be answered in microseconds
per user.  This module provides the thin layer a downstream application
would use on top of a trained model:

* :class:`Recommender` — wraps any trained model plus the user histories
  and answers top-k requests, per-item scores and item-to-item similarity
  queries without the caller touching the experimental machinery.
* :func:`explain_ham_score` — HAM's score (Eq. 7/8) is a *sum of three
  interpretable dot products*: the user's general preference, the high-
  order association of the recent items (optionally enhanced with
  synergies), and the low-order association of the most recent one or two
  items.  The explanation exposes those per-factor contributions, which is
  one concrete advantage of the linear scoring function over the black-box
  baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import no_grad
from repro.data.windows import pad_id_for
from repro.evaluation.ranking import top_k_items
from repro.models.base import SequentialRecommender
from repro.models.ham import HAM
from repro.models.ham_synergy import HAMSynergy
from repro.models.synergy import latent_cross

__all__ = ["Recommendation", "Recommender", "HAMScoreExplanation", "explain_ham_score"]


@dataclass(frozen=True)
class Recommendation:
    """One recommended item with its model score and rank (0 = best)."""

    item: int
    score: float
    rank: int


@dataclass(frozen=True)
class HAMScoreExplanation:
    """Per-factor decomposition of a HAM recommendation score (Eq. 7/8)."""

    user: int
    item: int
    total: float
    user_preference: float
    high_order: float
    low_order: float
    uses_synergies: bool

    def dominant_factor(self) -> str:
        """Name of the factor contributing most to the score."""
        contributions = {
            "user_preference": self.user_preference,
            "high_order": self.high_order,
            "low_order": self.low_order,
        }
        return max(contributions, key=contributions.get)

    def as_row(self) -> dict:
        return {
            "user": self.user,
            "item": self.item,
            "total": self.total,
            "user_preference": self.user_preference,
            "high_order": self.high_order,
            "low_order": self.low_order,
            "dominant": self.dominant_factor(),
        }


class Recommender:
    """Serve top-k recommendations from a trained model.

    Parameters
    ----------
    model:
        Any trained model of the study (gradient-based or count-based).
    histories:
        Per-user interaction histories the recommendations condition on —
        typically ``split.train_plus_valid()`` after training, or the full
        sequences in a production-style setting.
    exclude_seen:
        Exclude items already present in a user's history from the
        ranking (the paper's protocol).
    """

    def __init__(self, model: SequentialRecommender, histories: list[list[int]],
                 exclude_seen: bool = True):
        if len(histories) < model.num_users:
            raise ValueError(
                f"histories cover {len(histories)} users but the model expects "
                f"{model.num_users}"
            )
        self.model = model
        self.histories = histories
        self.exclude_seen = exclude_seen
        self.pad_id = pad_id_for(model.num_items)
        model.eval()

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _validate_user(self, user: int) -> None:
        if not 0 <= user < self.model.num_users:
            raise ValueError(f"user id {user} outside [0, {self.model.num_users})")

    def _inputs_for(self, users: list[int]) -> np.ndarray:
        length = self.model.input_length
        inputs = np.full((len(users), length), self.pad_id, dtype=np.int64)
        for row, user in enumerate(users):
            history = self.histories[user][-length:]
            if history:
                inputs[row, -len(history):] = history
        return inputs

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def recommend(self, user: int, k: int = 10) -> list[Recommendation]:
        """Top-``k`` recommendations for one user."""
        return self.recommend_batch([user], k)[0]

    def recommend_batch(self, users: list[int], k: int = 10) -> list[list[Recommendation]]:
        """Top-``k`` recommendations for several users at once."""
        if k < 1:
            raise ValueError("k must be positive")
        for user in users:
            self._validate_user(user)
        inputs = self._inputs_for(users)
        scores = self.model.score_all(np.asarray(users, dtype=np.int64), inputs)
        excluded = (
            [set(self.histories[user]) for user in users] if self.exclude_seen else None
        )
        ranked = top_k_items(scores, k, excluded=excluded)
        results = []
        for row, user in enumerate(users):
            results.append([
                Recommendation(item=int(item), score=float(scores[row, item]), rank=rank)
                for rank, item in enumerate(ranked[row])
            ])
        return results

    def score(self, user: int, item: int) -> float:
        """The model score of one (user, candidate item) pair."""
        self._validate_user(user)
        if not 0 <= item < self.model.num_items:
            raise ValueError(f"item id {item} outside [0, {self.model.num_items})")
        inputs = self._inputs_for([user])
        scores = self.model.score_all(np.asarray([user], dtype=np.int64), inputs)
        return float(scores[0, item])

    def similar_items(self, item: int, k: int = 10) -> list[Recommendation]:
        """Items most similar to ``item`` under the model's own geometry.

        Gradient-based models answer with cosine similarity between
        candidate-item embeddings; count-based models that expose a
        ``neighbors`` method (ItemKNN) answer from their similarity matrix.
        """
        if not 0 <= item < self.model.num_items:
            raise ValueError(f"item id {item} outside [0, {self.model.num_items})")
        if k < 1:
            raise ValueError("k must be positive")

        if hasattr(self.model, "neighbors"):
            return [
                Recommendation(item=neighbor, score=similarity, rank=rank)
                for rank, (neighbor, similarity) in enumerate(self.model.neighbors(item, k))
            ]

        with no_grad():
            table = self.model.candidate_item_embeddings().data[: self.model.num_items]
        norms = np.linalg.norm(table, axis=1)
        norms = np.where(norms > 0, norms, 1.0)
        similarities = (table @ table[item]) / (norms * norms[item])
        similarities[item] = -np.inf
        order = np.argsort(similarities)[::-1][:k]
        return [
            Recommendation(item=int(other), score=float(similarities[other]), rank=rank)
            for rank, other in enumerate(order)
        ]


def explain_ham_score(model: HAM, user: int, history: list[int],
                      item: int) -> HAMScoreExplanation:
    """Decompose a HAM/HAMs score into its three factors (Eq. 7/8).

    Parameters
    ----------
    model:
        A (trained) :class:`HAM` or :class:`HAMSynergy` instance.
    user:
        User id the recommendation is for.
    history:
        The user's recent interaction history (only the last ``n_h`` items
        are used, exactly as at scoring time).
    item:
        Candidate item whose score is being explained.
    """
    if not isinstance(model, HAM):
        raise TypeError("score explanations are only defined for the HAM family")
    if not 0 <= user < model.num_users:
        raise ValueError(f"user id {user} outside [0, {model.num_users})")
    if not 0 <= item < model.num_items:
        raise ValueError(f"item id {item} outside [0, {model.num_items})")

    pad = model.pad_id
    inputs = np.full((1, model.input_length), pad, dtype=np.int64)
    recent = list(history)[-model.input_length:]
    if recent:
        inputs[0, -len(recent):] = recent

    with no_grad():
        candidate = model.candidate_item_embeddings().data[item]
        high_order, low_order = model.association_embeddings(inputs)
        uses_synergies = isinstance(model, HAMSynergy) and model.synergy_order > 1
        if uses_synergies:
            high_order = latent_cross(high_order, model.synergy_terms(inputs))
        high_contribution = float(high_order.data[0] @ candidate)
        low_contribution = (
            float(low_order.data[0] @ candidate) if low_order is not None else 0.0
        )
        user_contribution = 0.0
        if model.use_user_embedding:
            user_vector = model.user_embeddings.weight.data[user]
            user_contribution = float(user_vector @ candidate)

    return HAMScoreExplanation(
        user=user,
        item=item,
        total=user_contribution + high_contribution + low_contribution,
        user_preference=user_contribution,
        high_order=high_contribution,
        low_order=low_contribution,
        uses_synergies=uses_synergies,
    )
