"""Unified schema of the ``BENCH_*.json`` performance artifacts.

Until PR 4 each benchmark artifact (``BENCH_serving.json``,
``BENCH_training.json``) had its own ad-hoc top-level shape, which made
the performance trajectory across PRs impossible to read mechanically.
Every artifact now shares one envelope::

    {
      "schema_version": 1,
      "bench": "serving" | "training" | "parallel" | ...,
      "generated_at": "2026-01-01T00:00:00+00:00",
      "host": {"platform": ..., "python": ..., "cpu_count": ...},
      "report": { ... bench-specific payload ... },
      "history": [ {"generated_at": ..., <headline metrics>}, ... ]
    }

``report`` is the current run's full payload (what the old files held at
top level).  ``history`` appends one headline-metric row per run — the
machine-readable perf trajectory — and survives rewrites: the writer
re-reads the existing file and carries the list forward (capped at
:data:`HISTORY_LIMIT` entries).

:func:`read_bench_report` hides the envelope from consumers and still
understands pre-schema files, so regression guards keep working across
the transition.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "HISTORY_LIMIT",
    "host_info",
    "write_bench_report",
    "read_bench_report",
    "read_bench_history",
]

SCHEMA_VERSION = 1

#: History rows kept per artifact; old rows roll off the front.
HISTORY_LIMIT = 200


def host_info() -> dict[str, Any]:
    """Machine fingerprint stored with every artifact."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count() or 1,
    }


def _now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _load_existing(path: Path) -> dict[str, Any] | None:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def write_bench_report(path: str | Path, bench: str, report: dict[str, Any],
                       headline: dict[str, Any] | None = None) -> dict[str, Any]:
    """Persist ``report`` under the unified envelope and return the payload.

    Parameters
    ----------
    bench:
        Artifact family name (``"serving"``, ``"training"``,
        ``"parallel"``, ...).
    report:
        The full, bench-specific payload of this run.
    headline:
        Small dict of the metrics worth tracking across runs (e.g.
        ``{"speedup": 3.8}``); appended to the artifact's ``history``.
    """
    path = Path(path)
    existing = _load_existing(path)
    history: list[dict[str, Any]] = []
    if isinstance(existing, dict) and isinstance(existing.get("history"), list):
        history = list(existing["history"])
    entry = {"generated_at": _now_iso()}
    entry.update(headline or {})
    history.append(entry)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "generated_at": entry["generated_at"],
        "host": host_info(),
        "report": report,
        "history": history[-HISTORY_LIMIT:],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def read_bench_report(path: str | Path) -> dict[str, Any]:
    """The current run's payload, with or without the envelope.

    Pre-schema artifacts stored the payload at top level; enveloped
    artifacts store it under ``"report"``.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict) and "schema_version" in data and "report" in data:
        return data["report"]
    return data


def read_bench_history(path: str | Path) -> list[dict[str, Any]]:
    """The appended headline-metric rows (empty for pre-schema files)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return data["history"]
    return []
