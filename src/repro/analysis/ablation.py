"""Ablation study of HAMs_m (paper Table 13, Section 6.6).

Two factors are ablated from the full HAMs_m model:

* ``HAMs_m-o`` — the low-order association term is removed (``n_l = 0``);
* ``HAMs_m-u`` — the users' general-preference term is removed.

Each variant is trained and evaluated with the same protocol as the full
model; the paper's qualitative findings are that removing either factor
hurts on most datasets, with two documented exceptions (CDs for -o and
Comics for -u).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.benchmarks import load_benchmark
from repro.data.splits import split_setting
from repro.evaluation.evaluator import RankingEvaluator
from repro.experiments.configs import default_model_hyperparameters, default_training_config
from repro.models.registry import create_model
from repro.training.trainer import Trainer

__all__ = ["AblationRow", "run_ablation_study", "ABLATION_VARIANTS"]

ABLATION_VARIANTS = ("HAMs_m", "HAMs_m-o", "HAMs_m-u")


@dataclass(frozen=True)
class AblationRow:
    """Metrics of one ablation variant on one dataset."""

    dataset: str
    variant: str
    recall_at_5: float
    recall_at_10: float
    ndcg_at_5: float
    ndcg_at_10: float

    def as_row(self) -> dict:
        return {
            "dataset": self.dataset,
            "model": self.variant,
            "Recall@5": self.recall_at_5,
            "Recall@10": self.recall_at_10,
            "NDCG@5": self.ndcg_at_5,
            "NDCG@10": self.ndcg_at_10,
        }


def run_ablation_study(dataset: str, setting: str = "80-20-CUT",
                       variants: tuple[str, ...] = ABLATION_VARIANTS,
                       scale: str | None = None, epochs: int | None = None,
                       seed: int = 0) -> list[AblationRow]:
    """Train and evaluate the full and ablated HAMs_m variants on ``dataset``."""
    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, setting)
    evaluator = RankingEvaluator(split, ks=(5, 10), mode="test")
    config = default_training_config(num_epochs=epochs, dataset=dataset,
                                     setting=setting, seed=seed)

    rows = []
    for variant in variants:
        rng = np.random.default_rng(seed)
        hyperparameters = default_model_hyperparameters(variant, dataset, setting)
        model = create_model(variant, num_users=split.num_users,
                             num_items=split.num_items, rng=rng, **hyperparameters)
        Trainer(model, config).fit(split.train_plus_valid())
        metrics = evaluator.evaluate(model).metrics
        rows.append(AblationRow(
            dataset=dataset,
            variant=variant,
            recall_at_5=metrics["Recall@5"],
            recall_at_10=metrics["Recall@10"],
            ndcg_at_5=metrics["NDCG@5"],
            ndcg_at_10=metrics["NDCG@10"],
        ))
    return rows
