"""Ablation of the synergy aggregation operators (paper Section 4.2.2).

The paper states that it tried weighted-sum and max pooling for the inner
aggregation (Eq. 3) and the outer aggregation (Eq. 4) of the item-synergy
term before settling on *sum* inside and *mean* outside, "because sum will
aggregate item synergies but not smooth them out".  The authors do not
report those alternative numbers; this study regenerates them so the
design choice called out in DESIGN.md can be verified rather than taken on
faith.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.benchmarks import load_benchmark
from repro.data.splits import split_setting
from repro.evaluation.evaluator import RankingEvaluator
from repro.experiments.configs import default_model_hyperparameters, default_training_config
from repro.models.ham_synergy import HAMSynergy
from repro.models.synergy import INNER_AGGREGATIONS, OUTER_AGGREGATIONS
from repro.training.trainer import Trainer

__all__ = ["SynergyAggregationRow", "run_synergy_aggregation_study", "DEFAULT_COMBINATIONS"]

#: (inner, outer) combinations studied; the first is the paper's choice.
DEFAULT_COMBINATIONS = (
    ("sum", "mean"),
    ("sum", "max"),
    ("mean", "mean"),
    ("max", "mean"),
)


@dataclass(frozen=True)
class SynergyAggregationRow:
    """Metrics of one (inner, outer) aggregation combination."""

    dataset: str
    inner: str
    outer: str
    recall_at_5: float
    recall_at_10: float
    ndcg_at_5: float
    ndcg_at_10: float

    @property
    def is_paper_choice(self) -> bool:
        """Whether this row is the combination the paper uses."""
        return self.inner == "sum" and self.outer == "mean"

    def as_row(self) -> dict:
        return {
            "dataset": self.dataset,
            "inner": self.inner,
            "outer": self.outer,
            "Recall@5": self.recall_at_5,
            "Recall@10": self.recall_at_10,
            "NDCG@5": self.ndcg_at_5,
            "NDCG@10": self.ndcg_at_10,
            "paper_choice": self.is_paper_choice,
        }


def run_synergy_aggregation_study(dataset: str, setting: str = "80-20-CUT",
                                  combinations: tuple[tuple[str, str], ...] = DEFAULT_COMBINATIONS,
                                  scale: str | None = None, epochs: int | None = None,
                                  seed: int = 0) -> list[SynergyAggregationRow]:
    """Train HAMs_m with each synergy aggregation combination on ``dataset``.

    Every combination shares the same structural hyperparameters (the
    paper's Table A2 entry for the dataset) and the same seed, so the rows
    differ only in the aggregation operators.
    """
    for inner, outer in combinations:
        if inner not in INNER_AGGREGATIONS:
            raise ValueError(f"unknown inner aggregation {inner!r}")
        if outer not in OUTER_AGGREGATIONS:
            raise ValueError(f"unknown outer aggregation {outer!r}")

    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, setting)
    hyperparameters = default_model_hyperparameters("HAMs_m", dataset, setting)
    config = default_training_config(num_epochs=epochs, dataset=dataset,
                                     setting=setting, seed=seed)

    rows = []
    for inner, outer in combinations:
        rng = np.random.default_rng(seed)
        model = HAMSynergy(split.num_users, split.num_items, pooling="mean",
                           synergy_inner=inner, synergy_outer=outer,
                           rng=rng, **hyperparameters)
        Trainer(model, config).fit(split.train_plus_valid())
        evaluation = RankingEvaluator(split, ks=(5, 10), mode="test").evaluate(model)
        rows.append(SynergyAggregationRow(
            dataset=dataset, inner=inner, outer=outer,
            recall_at_5=evaluation.metrics["Recall@5"],
            recall_at_10=evaluation.metrics["Recall@10"],
            ndcg_at_5=evaluation.metrics["NDCG@5"],
            ndcg_at_10=evaluation.metrics["NDCG@10"],
        ))
    return rows
