"""Testing run-time comparison (paper Table 14, Section 6.7).

Builds the run-time table from the timings collected by the overall
experiment runs: seconds per user for every method, plus the speedup of
the reference method (HAMs_m) over the fastest baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.overall import OverallResult

__all__ = ["RuntimeRow", "runtime_comparison"]


@dataclass(frozen=True)
class RuntimeRow:
    """Per-dataset testing run time of every method (seconds per user)."""

    dataset: str
    seconds_per_user: dict[str, float]
    reference: str

    @property
    def speedup_over_best_baseline(self) -> float:
        """Speedup of the reference over the fastest *other* method."""
        reference_time = self.seconds_per_user[self.reference]
        others = [t for name, t in self.seconds_per_user.items() if name != self.reference]
        if reference_time <= 0 or not others:
            return float("nan")
        return min(others) / reference_time

    def speedup_over(self, method: str) -> float:
        """Speedup of the reference over one specific method."""
        reference_time = self.seconds_per_user[self.reference]
        if reference_time <= 0:
            return float("nan")
        return self.seconds_per_user[method] / reference_time

    def as_row(self) -> dict:
        row: dict = {"dataset": self.dataset}
        for method, seconds in self.seconds_per_user.items():
            row[method] = f"{seconds:.1e}"
        row["speedup"] = round(self.speedup_over_best_baseline, 1)
        return row


def runtime_comparison(results: dict[str, OverallResult],
                       methods: tuple[str, ...] = ("Caser", "SASRec", "HGN", "HAMs_m"),
                       reference: str = "HAMs_m") -> list[RuntimeRow]:
    """Build Table 14 rows from overall experiment results.

    Parameters
    ----------
    results:
        ``{dataset: OverallResult}`` containing all requested methods.
    methods:
        Methods to include (paper Table 14 compares Caser, SASRec, HGN and
        HAMs_m).
    reference:
        Method whose speedup over the others is reported.
    """
    if reference not in methods:
        raise ValueError("reference must be one of the reported methods")
    rows = []
    for dataset, result in results.items():
        seconds = {
            method: result.runs[method].timing.seconds_per_user
            for method in methods
        }
        rows.append(RuntimeRow(dataset=dataset, seconds_per_user=seconds, reference=reference))
    return rows
