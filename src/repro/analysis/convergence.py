"""Training-convergence analysis.

Section 6.7 of the paper notes that HAM needs more epochs than HGN to
converge but each epoch is cheap; this module quantifies that kind of
statement for any training run: epochs to reach a fraction of the best
validation score, the monotonicity of the loss curve, and side-by-side
comparison of several runs (different models, losses or learning-rate
schedules).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.training.trainer import TrainingResult

__all__ = ["ConvergenceSummary", "summarize_convergence", "compare_convergence"]


@dataclass(frozen=True)
class ConvergenceSummary:
    """Convergence statistics of one training run."""

    num_epochs: int
    final_loss: float
    best_validation: float
    best_epoch: int
    epochs_to_90_percent: int | None
    loss_decrease_fraction: float
    train_seconds: float

    def as_row(self) -> dict:
        return {
            "epochs": self.num_epochs,
            "final_loss": self.final_loss,
            "best_validation": self.best_validation,
            "best_epoch": self.best_epoch,
            "epochs_to_90%": self.epochs_to_90_percent,
            "loss_decrease": self.loss_decrease_fraction,
            "seconds": self.train_seconds,
        }


def _epochs_to_fraction(history: list[tuple[int, float]], best: float,
                        fraction: float) -> int | None:
    """First evaluated epoch whose score reaches ``fraction * best``."""
    if not history or best <= 0:
        return None
    threshold = fraction * best
    for epoch, score in history:
        # Small tolerance so exact-fraction scores are not lost to float
        # rounding (e.g. 0.09 vs 0.9 * 0.10).
        if score >= threshold - 1e-12:
            return epoch
    return None


def summarize_convergence(result: TrainingResult,
                          fraction: float = 0.9) -> ConvergenceSummary:
    """Summarize one :class:`TrainingResult`.

    Parameters
    ----------
    result:
        The trainer's output.
    fraction:
        The "good enough" level used for the epochs-to-X%% statistic
        (default: 90% of the best validation score).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    losses = np.asarray(result.epoch_losses, dtype=np.float64)
    if losses.size == 0:
        raise ValueError("the training result contains no epochs")

    if losses.size > 1:
        decreases = np.diff(losses) < 0
        decrease_fraction = float(decreases.mean())
    else:
        decrease_fraction = 1.0

    best = result.best_validation if np.isfinite(result.best_validation) else 0.0
    return ConvergenceSummary(
        num_epochs=int(losses.size),
        final_loss=float(losses[-1]),
        best_validation=float(best),
        best_epoch=int(result.best_epoch),
        epochs_to_90_percent=_epochs_to_fraction(result.validation_history, best, fraction),
        loss_decrease_fraction=decrease_fraction,
        train_seconds=float(result.train_seconds),
    )


def compare_convergence(results: dict[str, TrainingResult],
                        fraction: float = 0.9) -> dict[str, ConvergenceSummary]:
    """Summaries of several training runs keyed by a display label."""
    if not results:
        raise ValueError("at least one training result is required")
    return {
        label: summarize_convergence(result, fraction=fraction)
        for label, result in results.items()
    }
