"""Average improvement of HAMs_m over the other methods (paper Table 9).

The paper reports, for every setting and metric, the mean over datasets of
the percentage improvement of HAMs_m over Caser, SASRec, HGN and HAMm,
marking statistically significant improvements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.significance import paired_improvement_test
from repro.experiments.overall import OverallResult

__all__ = ["ImprovementCell", "improvement_summary"]


@dataclass(frozen=True)
class ImprovementCell:
    """Average improvement of the reference method over one competitor."""

    competitor: str
    metric: str
    mean_improvement_percent: float
    per_dataset: dict[str, float]
    significant: bool

    def as_cell(self) -> str:
        flag = "*" if self.significant else ""
        return f"{self.mean_improvement_percent:.1f}{flag}"


def _percentage_improvement(reference: float, competitor: float) -> float:
    if competitor == 0:
        return float("inf") if reference > 0 else 0.0
    return 100.0 * (reference - competitor) / competitor


def improvement_summary(results: dict[str, OverallResult],
                        reference: str = "HAMs_m",
                        competitors: tuple[str, ...] = ("Caser", "SASRec", "HGN", "HAMm"),
                        metrics: tuple[str, ...] = ("Recall@5", "Recall@10", "NDCG@5", "NDCG@10"),
                        exclude_datasets: tuple[str, ...] = (),
                        confidence: float = 0.90) -> dict[str, list[ImprovementCell]]:
    """Compute the Table 9 cells for one experimental setting.

    Parameters
    ----------
    results:
        ``{dataset: OverallResult}`` for one setting (each result must
        contain the reference and all competitors).
    reference:
        The method whose improvement is reported (HAMs_m in the paper).
    exclude_datasets:
        Datasets dropped from the average (the paper excludes Books and/or
        Comics in some columns because of SASRec outliers).
    confidence:
        Confidence level of the significance flag (paper Table 9: 90%).

    Returns
    -------
    ``{metric: [ImprovementCell per competitor]}``
    """
    summary: dict[str, list[ImprovementCell]] = {}
    datasets = [name for name in results if name not in exclude_datasets]
    if not datasets:
        raise ValueError("no datasets left after exclusions")

    for metric in metrics:
        cells = []
        for competitor in competitors:
            per_dataset = {}
            reference_scores = []
            competitor_scores = []
            for name in datasets:
                result = results[name]
                ref_value = result.metric(reference, metric)
                comp_value = result.metric(competitor, metric)
                per_dataset[name] = _percentage_improvement(ref_value, comp_value)
                reference_scores.append(result.per_user(reference, metric))
                competitor_scores.append(result.per_user(competitor, metric))
            mean_improvement = float(np.mean(list(per_dataset.values())))
            test = paired_improvement_test(
                np.concatenate(reference_scores),
                np.concatenate(competitor_scores),
                confidence=confidence,
            )
            cells.append(ImprovementCell(
                competitor=competitor,
                metric=metric,
                mean_improvement_percent=mean_improvement,
                per_dataset=per_dataset,
                significant=test.significant and mean_improvement > 0,
            ))
        summary[metric] = cells
    return summary
