"""Item frequency distribution analysis (paper Fig. 3, Section 7.2).

The paper plots, for CDs, Comics, ML-1M and ML-20M, the percentage of
items falling into each log-frequency percentile bin, showing that the
sparse datasets are dominated by very infrequent items.  The same
computation is provided here over the synthetic analogues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.benchmarks import load_benchmark
from repro.data.stats import log_frequency_percentiles

__all__ = ["FrequencyDistribution", "item_frequency_distribution", "FIGURE3_DATASETS"]

FIGURE3_DATASETS = ("cds", "comics", "ml-1m", "ml-20m")


@dataclass(frozen=True)
class FrequencyDistribution:
    """Histogram of items over normalized log-frequency bins."""

    dataset: str
    bin_centres: np.ndarray
    item_percentages: np.ndarray

    def infrequent_mass(self, threshold: float = 0.5) -> float:
        """Percentage of items below ``threshold`` on the normalized log scale."""
        below = self.bin_centres < threshold
        return float(self.item_percentages[below].sum())

    def as_rows(self) -> list[dict]:
        return [
            {"dataset": self.dataset,
             "log_frequency_percentile": round(float(centre), 3),
             "items_percent": round(float(percent), 2)}
            for centre, percent in zip(self.bin_centres, self.item_percentages)
        ]


def item_frequency_distribution(datasets: tuple[str, ...] = FIGURE3_DATASETS,
                                num_bins: int = 20,
                                scale: str | None = None) -> list[FrequencyDistribution]:
    """Compute the Fig. 3 distributions for the requested datasets."""
    distributions = []
    for name in datasets:
        data = load_benchmark(name, scale=scale)
        centres, percentages = log_frequency_percentiles(data, num_bins=num_bins)
        distributions.append(FrequencyDistribution(
            dataset=data.name, bin_centres=centres, item_percentages=percentages,
        ))
    return distributions
