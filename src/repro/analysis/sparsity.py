"""Performance as a function of user activity (data sparsity).

Section 7.2 of the paper explains HAM's advantage through data sparsity:
most items (and users) have few interactions, which is where parameterized
attention/gating weights are hardest to learn and where equal-weight
pooling suffices.  This analysis slices any evaluation result by how many
training interactions each evaluated user has, so the per-sparsity-bucket
behaviour behind that argument can be inspected directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.splits import DatasetSplit
from repro.evaluation.evaluator import EvaluationResult

__all__ = ["ActivityBucket", "performance_by_user_activity", "compare_by_user_activity"]


@dataclass(frozen=True)
class ActivityBucket:
    """One user-activity bucket of an evaluation result."""

    label: str
    min_interactions: int
    max_interactions: int
    num_users: int
    mean_history_length: float
    mean_metric: float

    def as_row(self) -> dict:
        return {
            "bucket": self.label,
            "users": self.num_users,
            "mean_history": self.mean_history_length,
            "metric": self.mean_metric,
        }


def _evaluated_users(split: DatasetSplit, mode: str) -> list[int]:
    targets = split.test if mode == "test" else split.valid
    return [user for user, items in enumerate(targets) if items]


def _history_lengths(split: DatasetSplit, users: list[int], mode: str) -> np.ndarray:
    histories = split.train_plus_valid() if mode == "test" else split.train
    return np.asarray([len(histories[user]) for user in users], dtype=np.int64)


def performance_by_user_activity(split: DatasetSplit, result: EvaluationResult,
                                 metric: str = "Recall@10", num_buckets: int = 4,
                                 mode: str = "test") -> list[ActivityBucket]:
    """Split the per-user metric values of ``result`` into activity buckets.

    Parameters
    ----------
    split:
        The split the result was computed on (provides user histories).
    result:
        An :class:`EvaluationResult` from the full-ranking evaluator.
    metric:
        Which per-user metric array to slice.
    num_buckets:
        Number of equal-population buckets ordered from least to most
        active users.
    mode:
        ``"test"`` or ``"validation"`` — must match the evaluator mode used
        to produce ``result``.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    if mode not in ("test", "validation"):
        raise ValueError("mode must be 'test' or 'validation'")
    if metric not in result.per_user:
        raise KeyError(f"metric {metric!r} not in the evaluation result")

    users = _evaluated_users(split, mode)
    values = np.asarray(result.per_user[metric], dtype=np.float64)
    if len(users) != len(values):
        raise ValueError(
            "evaluation result does not match the split "
            f"({len(values)} per-user values vs {len(users)} evaluable users)"
        )
    lengths = _history_lengths(split, users, mode)

    order = np.argsort(lengths, kind="stable")
    boundaries = np.array_split(order, num_buckets)
    buckets = []
    for index, members in enumerate(boundaries):
        if members.size == 0:
            continue
        bucket_lengths = lengths[members]
        buckets.append(ActivityBucket(
            label=f"Q{index + 1}",
            min_interactions=int(bucket_lengths.min()),
            max_interactions=int(bucket_lengths.max()),
            num_users=int(members.size),
            mean_history_length=float(bucket_lengths.mean()),
            mean_metric=float(values[members].mean()),
        ))
    return buckets


def compare_by_user_activity(split: DatasetSplit,
                             results: dict[str, EvaluationResult],
                             metric: str = "Recall@10", num_buckets: int = 4,
                             mode: str = "test") -> dict[str, list[ActivityBucket]]:
    """Per-activity-bucket metric of several methods on the same split.

    Returns ``{method: [bucket, ...]}`` with identical bucket boundaries
    across methods (they are computed from the shared split), so the rows
    can be printed side by side to see where each method wins.
    """
    return {
        method: performance_by_user_activity(split, result, metric=metric,
                                             num_buckets=num_buckets, mode=mode)
        for method, result in results.items()
    }
