"""Parameter studies (paper Tables 10-12 and Appendix Table A1).

The paper fixes the best configuration of HAMs_m found on the validation
set and varies one hyperparameter at a time, reporting test Recall@5/10.
The same procedure is applied to SASRec on Comics in 3-LOS (Table A1) to
demonstrate its parameter sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.benchmarks import load_benchmark
from repro.data.splits import split_setting
from repro.evaluation.evaluator import RankingEvaluator
from repro.experiments.configs import default_model_hyperparameters, default_training_config
from repro.models.registry import create_model
from repro.training.trainer import Trainer

__all__ = ["ParameterStudyRow", "run_parameter_study", "run_sasrec_sensitivity",
           "DEFAULT_HAM_SWEEP", "DEFAULT_SASREC_SWEEP"]


#: One-at-a-time sweep for HAMs_m at laptop scale.  The paper sweeps
#: d in {200..800}; the analogues have only a few hundred items, so the
#: equivalent sweep covers {16..64}.
DEFAULT_HAM_SWEEP: dict[str, list[int]] = {
    "embedding_dim": [16, 32, 48, 64],
    "n_h": [3, 4, 5, 6, 7],
    "n_l": [0, 1, 2, 3],
    "n_p": [2, 3, 4, 5],
    "synergy_order": [1, 2, 3, 4],
}

#: One-at-a-time sweep for SASRec (Table A1 analogue).
DEFAULT_SASREC_SWEEP: dict[str, list[int]] = {
    "embedding_dim": [16, 32, 64],
    "sequence_length": [5, 10, 15],
    "num_heads": [1, 2, 4],
}


@dataclass(frozen=True)
class ParameterStudyRow:
    """Result of one configuration of the sweep."""

    parameter: str
    value: int
    config: dict
    recall_at_5: float
    recall_at_10: float

    def as_row(self) -> dict:
        row = {"parameter": self.parameter, "value": self.value}
        row.update({key: val for key, val in self.config.items()})
        row["Recall@5"] = self.recall_at_5
        row["Recall@10"] = self.recall_at_10
        return row


def _evaluate_configuration(method: str, config: dict, split, dataset: str,
                            setting: str, epochs: int | None, seed: int,
                            n_p: int | None = None) -> tuple[float, float]:
    rng = np.random.default_rng(seed)
    model = create_model(method, num_users=split.num_users,
                         num_items=split.num_items, rng=rng, **config)
    training_config = default_training_config(num_epochs=epochs, dataset=dataset,
                                               setting=setting, seed=seed)
    if n_p is not None:
        training_config = training_config.with_overrides(n_p=n_p)
    Trainer(model, training_config).fit(split.train_plus_valid())
    metrics = RankingEvaluator(split, ks=(5, 10), mode="test").evaluate(model).metrics
    return metrics["Recall@5"], metrics["Recall@10"]


def run_parameter_study(dataset: str, setting: str = "80-20-CUT",
                        method: str = "HAMs_m",
                        sweep: dict[str, list[int]] | None = None,
                        scale: str | None = None, epochs: int | None = None,
                        seed: int = 0) -> list[ParameterStudyRow]:
    """One-at-a-time parameter sweep of ``method`` on ``dataset``.

    ``n_p`` (a training parameter rather than a model parameter) is handled
    specially: it overrides the trainer's window-target count.
    """
    sweep = sweep or DEFAULT_HAM_SWEEP
    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, setting)
    base = default_model_hyperparameters(method, dataset, setting)

    rows: list[ParameterStudyRow] = []
    for parameter, values in sweep.items():
        for value in values:
            config = dict(base)
            n_p = None
            if parameter == "n_p":
                n_p = int(value)
            else:
                config[parameter] = value
                if parameter == "n_h":
                    # keep the constraints n_l <= n_h and p <= n_h satisfied
                    config["n_l"] = min(config.get("n_l", 1), value)
                    if "synergy_order" in config:
                        config["synergy_order"] = min(config["synergy_order"], value)
                if parameter == "synergy_order":
                    config["synergy_order"] = min(value, config.get("n_h", value))
                if parameter == "num_heads":
                    dim = config.get("embedding_dim", 32)
                    if dim % value != 0:
                        config["embedding_dim"] = (dim // value + 1) * value
            recall5, recall10 = _evaluate_configuration(
                method, config, split, dataset, setting, epochs, seed, n_p=n_p,
            )
            rows.append(ParameterStudyRow(
                parameter=parameter, value=int(value), config=config,
                recall_at_5=recall5, recall_at_10=recall10,
            ))
    return rows


def run_sasrec_sensitivity(dataset: str = "comics", setting: str = "3-LOS",
                           sweep: dict[str, list[int]] | None = None,
                           scale: str | None = None, epochs: int | None = None,
                           seed: int = 0) -> list[ParameterStudyRow]:
    """SASRec one-at-a-time sweep (paper Table A1 analogue)."""
    return run_parameter_study(
        dataset=dataset, setting=setting, method="SASRec",
        sweep=sweep or DEFAULT_SASREC_SWEEP, scale=scale, epochs=epochs, seed=seed,
    )
