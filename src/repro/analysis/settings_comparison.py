"""Comparison of experimental settings (paper Section 7.3).

The paper argues that the most common setting, 80-20-CUT, over-estimates
NDCG because users with long sequences contribute many test items: the
more test items a user has, the more likely some of them land in the
top-k, inflating NDCG, while Recall is simultaneously deflated by the
larger denominator.  Two analyses make that argument measurable:

* :func:`metric_by_test_set_size` — slice any evaluation result by the
  number of test items per user.  Under 80-20-CUT the NDCG of the largest
  bucket should exceed that of the smallest; under 80-3-CUT/3-LOS every
  user has the same number of test items, so the slices are flat.
* :func:`compare_settings` — evaluate the same trained model under all
  three settings and tabulate the metric shifts the paper describes in
  Section 6.2.1/6.3.1 (Recall up, NDCG down when moving from 80-20-CUT to
  80-3-CUT; both down from 80-3-CUT to 3-LOS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.splits import DatasetSplit, split_setting
from repro.evaluation.evaluator import EvaluationResult, RankingEvaluator
from repro.experiments.configs import default_model_hyperparameters, default_training_config
from repro.models.registry import create_model
from repro.training.trainer import Trainer

__all__ = [
    "TestSizeBucket",
    "metric_by_test_set_size",
    "SettingComparisonRow",
    "compare_settings",
    "EXPERIMENTAL_SETTINGS",
]

EXPERIMENTAL_SETTINGS = ("80-20-CUT", "80-3-CUT", "3-LOS")


@dataclass(frozen=True)
class TestSizeBucket:
    """Users grouped by how many test items they have."""

    label: str
    min_test_items: int
    max_test_items: int
    num_users: int
    mean_metric: float

    def as_row(self) -> dict:
        return {
            "bucket": self.label,
            "users": self.num_users,
            "metric": self.mean_metric,
        }


def metric_by_test_set_size(split: DatasetSplit, result: EvaluationResult,
                            metric: str = "NDCG@10",
                            num_buckets: int = 3) -> list[TestSizeBucket]:
    """Slice per-user metric values by the size of each user's test set."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    if metric not in result.per_user:
        raise KeyError(f"metric {metric!r} not in the evaluation result")

    users = split.users_with_test_items()
    values = np.asarray(result.per_user[metric], dtype=np.float64)
    if len(users) != len(values):
        raise ValueError("evaluation result does not match the split")
    sizes = np.asarray([len(split.test[user]) for user in users], dtype=np.int64)

    order = np.argsort(sizes, kind="stable")
    buckets = []
    for index, members in enumerate(np.array_split(order, num_buckets)):
        if members.size == 0:
            continue
        bucket_sizes = sizes[members]
        buckets.append(TestSizeBucket(
            label=f"Q{index + 1}",
            min_test_items=int(bucket_sizes.min()),
            max_test_items=int(bucket_sizes.max()),
            num_users=int(members.size),
            mean_metric=float(values[members].mean()),
        ))
    return buckets


@dataclass(frozen=True)
class SettingComparisonRow:
    """One experimental setting's metrics for one trained method."""

    setting: str
    num_users_evaluated: int
    metrics: dict[str, float]

    def as_row(self) -> dict:
        row: dict = {"setting": self.setting, "users": self.num_users_evaluated}
        row.update(self.metrics)
        return row


def compare_settings(dataset: InteractionDataset, method: str = "HAMs_m",
                     dataset_key: str = "cds",
                     settings: tuple[str, ...] = EXPERIMENTAL_SETTINGS,
                     epochs: int | None = None, seed: int = 0,
                     ks: tuple[int, ...] = (5, 10)) -> list[SettingComparisonRow]:
    """Train ``method`` once per setting and evaluate it under that setting.

    The paper trains per setting because the training portions differ
    (80-20-CUT/80-3-CUT share one training split, 3-LOS uses a longer
    one); the same protocol is followed here.
    """
    rows = []
    for setting in settings:
        split = split_setting(dataset, setting)
        rng = np.random.default_rng(seed)
        hyperparameters = default_model_hyperparameters(method, dataset_key, setting)
        model = create_model(method, num_users=split.num_users,
                             num_items=split.num_items, rng=rng, **hyperparameters)
        config = default_training_config(num_epochs=epochs, dataset=dataset_key,
                                         setting=setting, seed=seed)
        Trainer(model, config).fit(split.train_plus_valid())

        evaluation = RankingEvaluator(split, ks=ks, mode="test").evaluate(model)
        rows.append(SettingComparisonRow(
            setting=setting,
            num_users_evaluated=evaluation.num_users_evaluated,
            metrics=dict(evaluation.metrics),
        ))
    return rows
