"""Analyses of the paper's Sections 6.5-7 and reproduction-specific studies.

Paper analyses:

* :mod:`~repro.analysis.improvement` — Table 9 (average improvements).
* :mod:`~repro.analysis.parameter_study` — Tables 10-12 and A1.
* :mod:`~repro.analysis.ablation` — Table 13.
* :mod:`~repro.analysis.runtime` — Table 14.
* :mod:`~repro.analysis.frequency` — Fig. 3 (item frequency distribution).
* :mod:`~repro.analysis.attention_weights` — Fig. 4 (HGN gating weights).

Extension analyses:

* :mod:`~repro.analysis.sparsity` — metric by user-activity bucket
  (Section 7.2's data-sparsity argument, made measurable).
* :mod:`~repro.analysis.settings_comparison` — Section 7.3's
  NDCG-inflation argument and side-by-side setting comparison.
* :mod:`~repro.analysis.convergence` — training-convergence summaries
  (Section 6.7's epochs-to-converge remarks).
* :mod:`~repro.analysis.synergy_study` — the synergy aggregation design
  choice of Section 4.2.2 (sum+mean vs the alternatives the paper tried).
"""

from repro.analysis.ablation import AblationRow, run_ablation_study
from repro.analysis.attention_weights import GateWeightDistribution, gate_weight_distribution
from repro.analysis.convergence import (
    ConvergenceSummary,
    compare_convergence,
    summarize_convergence,
)
from repro.analysis.frequency import item_frequency_distribution
from repro.analysis.improvement import improvement_summary
from repro.analysis.parameter_study import run_parameter_study, run_sasrec_sensitivity
from repro.analysis.runtime import runtime_comparison
from repro.analysis.settings_comparison import (
    SettingComparisonRow,
    TestSizeBucket,
    compare_settings,
    metric_by_test_set_size,
)
from repro.analysis.sparsity import (
    ActivityBucket,
    compare_by_user_activity,
    performance_by_user_activity,
)
from repro.analysis.synergy_study import (
    SynergyAggregationRow,
    run_synergy_aggregation_study,
)

__all__ = [
    "run_ablation_study",
    "AblationRow",
    "gate_weight_distribution",
    "GateWeightDistribution",
    "item_frequency_distribution",
    "improvement_summary",
    "run_parameter_study",
    "run_sasrec_sensitivity",
    "runtime_comparison",
    "ActivityBucket",
    "performance_by_user_activity",
    "compare_by_user_activity",
    "ConvergenceSummary",
    "summarize_convergence",
    "compare_convergence",
    "TestSizeBucket",
    "metric_by_test_set_size",
    "SettingComparisonRow",
    "compare_settings",
    "SynergyAggregationRow",
    "run_synergy_aggregation_study",
]
