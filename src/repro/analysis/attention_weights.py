"""HGN gating ("attention") weight analysis (paper Fig. 4, Section 7.2).

The paper inspects the instance-gating weights learned by the best HGN
models and finds that for infrequent items the weights stay concentrated
around 0.5 (their initialization), i.e. the parameterized gates are not
learning to differentiate item importance on sparse data — which is the
motivation for HAM's simplistic equal-weight pooling.

This module trains HGN on a benchmark analogue, collects the instance-gate
weight of every (user window, item) pair, buckets items by frequency
(most/least frequent quintiles, as in the figure legend) and histograms
the weights per bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.benchmarks import load_benchmark
from repro.data.splits import split_setting
from repro.data.windows import build_training_instances
from repro.experiments.configs import default_model_hyperparameters, default_training_config
from repro.experiments.overall import OverallResult
from repro.models.hgn import HGN
from repro.models.registry import create_model
from repro.training.trainer import Trainer

__all__ = ["GateWeightDistribution", "gate_weight_distribution", "FIGURE4_DATASETS",
           "FREQUENCY_BUCKETS"]

FIGURE4_DATASETS = ("cds", "comics", "ml-1m", "ml-20m")

#: Item-frequency buckets of the paper's Fig. 4 legend.
FREQUENCY_BUCKETS = (
    "top 20% least frequent",
    "top 20-40% least frequent",
    "top 20-40% most frequent",
    "top 20% most frequent",
)


@dataclass
class GateWeightDistribution:
    """Histograms of HGN instance-gate weights per item-frequency bucket."""

    dataset: str
    bin_edges: np.ndarray
    histograms: dict[str, np.ndarray]          # bucket -> % of weights per bin
    bucket_means: dict[str, float]
    bucket_stds: dict[str, float]

    def concentration_near_half(self, bucket: str, radius: float = 0.1) -> float:
        """Fraction of the bucket's weights within ``radius`` of 0.5."""
        centres = (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0
        mask = np.abs(centres - 0.5) <= radius
        return float(self.histograms[bucket][mask].sum() / 100.0)

    def as_rows(self) -> list[dict]:
        rows = []
        for bucket in self.histograms:
            rows.append({
                "dataset": self.dataset,
                "bucket": bucket,
                "mean_weight": round(self.bucket_means[bucket], 4),
                "std_weight": round(self.bucket_stds[bucket], 4),
                "near_0.5 (±0.1)": round(self.concentration_near_half(bucket), 3),
            })
        return rows


def _frequency_buckets(frequencies: np.ndarray) -> dict[str, np.ndarray]:
    """Boolean item masks for the four quintile buckets of Fig. 4.

    Quintiles are taken over the items that actually appear in the data
    (frequency > 0); never-interacted items cannot carry gate weights.
    """
    num_items = len(frequencies)
    observed = np.flatnonzero(frequencies > 0)
    order = observed[np.argsort(frequencies[observed])]
    quint = max(len(order) // 5, 1)
    masks = {bucket: np.zeros(num_items, dtype=bool) for bucket in FREQUENCY_BUCKETS}
    masks["top 20% least frequent"][order[:quint]] = True
    masks["top 20-40% least frequent"][order[quint:2 * quint]] = True
    masks["top 20% most frequent"][order[-quint:]] = True
    masks["top 20-40% most frequent"][order[-2 * quint:-quint]] = True
    return masks


def _collect_weights(model: HGN, split, num_items: int) -> tuple[np.ndarray, np.ndarray]:
    """All (item id, gate weight) pairs over every training window."""
    instances = build_training_instances(
        split.train_plus_valid(), num_items=num_items,
        n_h=model.input_length, n_p=1,
    )
    items: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    batch_size = 512
    for start in range(0, len(instances), batch_size):
        users = instances.users[start:start + batch_size]
        inputs = instances.inputs[start:start + batch_size]
        gate = model.instance_gate_weights(users, inputs)
        real = inputs != model.pad_id
        items.append(inputs[real])
        weights.append(gate[real])
    return np.concatenate(items), np.concatenate(weights)


def gate_weight_distribution(dataset: str, scale: str | None = None,
                             epochs: int | None = None, seed: int = 0,
                             num_bins: int = 20,
                             trained: OverallResult | None = None) -> GateWeightDistribution:
    """Fig. 4 analysis for one dataset.

    Parameters
    ----------
    trained:
        An :class:`OverallResult` containing an already-trained ``HGN`` run
        to reuse; when omitted a fresh HGN is trained.
    """
    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, "80-20-CUT")

    if trained is not None and "HGN" in trained.runs:
        model = trained.runs["HGN"].model
    else:
        rng = np.random.default_rng(seed)
        hyperparameters = default_model_hyperparameters("HGN", dataset, "80-20-CUT")
        model = create_model("HGN", num_users=split.num_users,
                             num_items=split.num_items, rng=rng, **hyperparameters)
        config = default_training_config(num_epochs=epochs, dataset=dataset, seed=seed)
        Trainer(model, config).fit(split.train_plus_valid())

    item_ids, weights = _collect_weights(model, split, data.num_items)
    frequencies = data.item_frequencies()
    buckets = _frequency_buckets(frequencies)

    bin_edges = np.linspace(0.0, 1.0, num_bins + 1)
    histograms: dict[str, np.ndarray] = {}
    means: dict[str, float] = {}
    stds: dict[str, float] = {}
    for bucket, mask in buckets.items():
        in_bucket = mask[item_ids]
        bucket_weights = weights[in_bucket]
        if bucket_weights.size == 0:
            histograms[bucket] = np.zeros(num_bins)
            means[bucket] = float("nan")
            stds[bucket] = float("nan")
            continue
        histogram, _ = np.histogram(bucket_weights, bins=bin_edges)
        histograms[bucket] = 100.0 * histogram / bucket_weights.size
        means[bucket] = float(bucket_weights.mean())
        stds[bucket] = float(bucket_weights.std())

    return GateWeightDistribution(
        dataset=data.name, bin_edges=bin_edges, histograms=histograms,
        bucket_means=means, bucket_stds=stds,
    )
