"""Shard-worker supervision: restart policy, liveness, circuit breaking.

The sharded engine's original failure story was "a dead worker bricks
the engine" — ``_check_open`` raised forever once any shard process
died.  This module supplies the bookkeeping half of the fix; the
respawn mechanics (re-attaching a fresh process to the published arena,
re-dispatching in-flight requests, replaying observes) live in
:mod:`repro.parallel.sharded`, which owns the queues.

* :class:`RestartPolicy` — bounded restart budget with exponential
  backoff.  The backoff is enforced as a per-shard *circuit breaker*:
  after each respawn the shard is "open" for the backoff window, and a
  request that cannot wait that long (its deadline lands inside the
  window) fails fast with :class:`ShardCircuitOpenError` instead of
  queueing behind the recovery.
* :class:`ShardHealth` — the per-shard record behind
  ``ShardedScoringEngine.health()``: liveness, incarnation count,
  degraded flag, breaker state.
* :class:`ShardSupervisor` — tracks the policy state across shards and
  decides, per failure, between *respawn* (budget left) and *degrade*
  (budget exhausted → the engine runs that shard in-process, serially,
  instead of failing the whole service).

The supervisor is deliberately mechanism-free: it never touches
processes or queues, so it is unit-testable without multiprocessing and
reusable by the future networked tier (replica failover has the same
budget/backoff/degrade shape).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["RestartPolicy", "ShardHealth", "ShardSupervisor",
           "ShardCircuitOpenError"]


class ShardCircuitOpenError(RuntimeError):
    """A shard's circuit breaker is open and the request cannot wait.

    Raised when a request's deadline expires before the shard's
    post-respawn backoff window closes.  Carries ``retry_after_s``, the
    remaining breaker window — callers (and the gateway) can surface it
    as a retry hint.
    """

    def __init__(self, shard: int, retry_after_s: float):
        super().__init__(
            f"shard {shard} circuit open for another {retry_after_s:.3f}s")
        self.shard = shard
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded restart budget with exponential backoff.

    A shard worker may be respawned at most ``max_restarts`` times; the
    ``n``-th respawn (0-based) opens the shard's circuit breaker for
    ``backoff_s(n)`` seconds.  The first respawn is immediate
    (``backoff_s(0) == 0``) so a one-off crash costs only the respawn
    itself; repeated crashes back off geometrically up to
    ``backoff_max_s``.  Exhausting the budget degrades the shard to the
    in-process serial fallback instead of failing the engine.
    """

    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_s(self, restart_index: int) -> float:
        """Breaker window opened by the ``restart_index``-th respawn."""
        if restart_index <= 0:
            return 0.0
        window = self.backoff_base_s * self.backoff_factor ** (restart_index - 1)
        return min(window, self.backoff_max_s)


@dataclass
class ShardHealth:
    """Mutable per-shard liveness/restart record (see ``health()``)."""

    shard: int
    alive: bool = True
    degraded: bool = False
    restarts: int = 0
    deaths: int = 0
    incarnation: int = 0
    breaker_open_until: float = 0.0
    last_exitcode: int | None = None
    #: Request-ids that were in flight on this shard when it last died
    #: and could not be re-dispatched (non-idempotent observes).
    aborted_requests: int = 0

    def breaker_open_for(self, now: float | None = None) -> float:
        """Seconds the circuit breaker stays open from ``now`` (>= 0)."""
        now = time.monotonic() if now is None else now
        return max(0.0, self.breaker_open_until - now)

    def as_dict(self) -> dict:
        """JSON-ready snapshot (breaker reported as remaining seconds)."""
        return {
            "shard": self.shard,
            "alive": self.alive,
            "degraded": self.degraded,
            "restarts": self.restarts,
            "deaths": self.deaths,
            "incarnation": self.incarnation,
            "breaker_open_s": round(self.breaker_open_for(), 6),
            "last_exitcode": self.last_exitcode,
            "aborted_requests": self.aborted_requests,
        }


class ShardSupervisor:
    """Policy state machine for a set of shard workers.

    The engine reports events (:meth:`record_death`,
    :meth:`record_respawn`, :meth:`record_degraded`) and asks questions
    (:meth:`should_respawn`, :meth:`wait_for_breaker`); the supervisor
    never touches processes itself.
    """

    def __init__(self, n_shards: int, policy: RestartPolicy | None = None):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.policy = policy if policy is not None else RestartPolicy()
        self._shards = [ShardHealth(shard=shard) for shard in range(n_shards)]

    # ------------------------------------------------------------------ #
    # Event recording
    # ------------------------------------------------------------------ #
    def record_death(self, shard: int, exitcode: int | None = None) -> None:
        """A worker was found dead (before any respawn decision)."""
        health = self._shards[shard]
        health.alive = False
        health.deaths += 1
        health.last_exitcode = exitcode

    def should_respawn(self, shard: int) -> bool:
        """Whether the restart budget still allows a respawn."""
        return self._shards[shard].restarts < self.policy.max_restarts

    def record_respawn(self, shard: int, now: float | None = None) -> None:
        """A fresh worker replaced the dead one; opens the breaker."""
        now = time.monotonic() if now is None else now
        health = self._shards[shard]
        window = self.policy.backoff_s(health.restarts)
        health.restarts += 1
        health.incarnation += 1
        health.alive = True
        health.breaker_open_until = max(health.breaker_open_until, now + window)

    def record_degraded(self, shard: int) -> None:
        """The shard fell back to the in-process serial engine."""
        health = self._shards[shard]
        health.degraded = True
        health.alive = True  # served, just not by a worker process
        health.breaker_open_until = 0.0

    def record_aborted(self, shard: int, count: int = 1) -> None:
        """``count`` in-flight requests could not be re-dispatched."""
        self._shards[shard].aborted_requests += count

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def wait_for_breaker(self, shard: int, deadline: float | None) -> None:
        """Block until ``shard``'s breaker closes, bounded by ``deadline``.

        Raises :class:`ShardCircuitOpenError` when the breaker outlives
        the request's deadline (monotonic-clock seconds, ``None`` for no
        deadline) — the caller should fail that request fast rather than
        queue behind the recovery.
        """
        health = self._shards[shard]
        remaining = health.breaker_open_for()
        if remaining <= 0.0:
            return
        if deadline is not None and time.monotonic() + remaining > deadline:
            raise ShardCircuitOpenError(shard, remaining)
        time.sleep(remaining)

    def health_of(self, shard: int) -> ShardHealth:
        """The live (mutable) health record of ``shard``."""
        return self._shards[shard]

    def snapshot(self) -> list[dict]:
        """JSON-ready per-shard health list for ``health()``."""
        return [health.as_dict() for health in self._shards]

    @property
    def degraded_shards(self) -> list[int]:
        """Indices of shards currently running the serial fallback."""
        return [health.shard for health in self._shards if health.degraded]

    @property
    def total_restarts(self) -> int:
        """Respawns across all shards since construction."""
        return sum(health.restarts for health in self._shards)

    @property
    def total_deaths(self) -> int:
        """Worker deaths across all shards since construction."""
        return sum(health.deaths for health in self._shards)
