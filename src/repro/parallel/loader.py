"""Prefetching worker-pool data loader for the BPR training loop.

Between two optimizer steps the serial trainer does work the optimizer
never needed to wait for: shuffle-slice the sliding-window instances,
gather the batch arrays and draw vectorized negatives.  This module
moves that work into worker processes.  The instance arrays
(``users`` / ``inputs`` / ``targets``) and the CSR
:class:`~repro.data.seen.SeenIndex` arrays are published once into a
:class:`~repro.parallel.shm.SharedArena`; workers attach zero-copy views
(never pickling the index), build whole batches and feed them to the
optimizer loop through a bounded queue, so the main process dequeues a
ready batch instead of constructing one.

Determinism is a hard contract: the permutation of epoch ``e`` derives
from ``(seed, e)`` and the negatives of batch ``b`` derive from
``(seed, e, b)``, so the delivered batch stream is **bit-for-bit
identical for any worker count** — including ``n_workers=0``, the
in-process fallback that runs the very same construction code.  Which
worker happens to build a batch can never influence its contents.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import weakref

import numpy as np

from repro.data.batching import Batch
from repro.data.seen import SeenIndex
from repro.data.windows import SlidingWindowInstances
from repro.parallel.shm import ArenaLayout, SharedArena
from repro.training.negative_sampling import NegativeSampler

__all__ = ["ParallelBatchLoader"]

#: Domain-separation tags so the permutation stream and the negative
#: stream can never collide even for equal (seed, epoch, batch) tuples.
_PERM_TAG = 0x5EED
_NEG_TAG = 0x7E64


def _epoch_permutation(seed: int, epoch: int, total: int, shuffle: bool) -> np.ndarray:
    if not shuffle:
        return np.arange(total, dtype=np.int64)
    return np.random.default_rng([_PERM_TAG, seed, epoch]).permutation(total)


def _batch_rng(seed: int, epoch: int, batch_index: int) -> np.random.Generator:
    return np.random.default_rng([_NEG_TAG, seed, epoch, batch_index])


def _build_batch(users: np.ndarray, inputs: np.ndarray, targets: np.ndarray,
                 rows: np.ndarray, sampler: NegativeSampler,
                 num_negatives: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Gather one batch and draw its negatives (shared by both paths)."""
    batch_users = users[rows]
    batch_inputs = inputs[rows]
    batch_targets = targets[rows]
    negatives = sampler.sample(
        batch_users,
        (batch_users.shape[0], batch_targets.shape[1] * num_negatives),
    )
    return batch_users, batch_inputs, batch_targets, negatives


def _loader_worker_main(layout: ArenaLayout, options: dict,
                        task_queue, result_queue) -> None:
    arena = SharedArena.attach(layout)
    try:
        users = arena.array("users")
        inputs = arena.array("inputs")
        targets = arena.array("targets")
        seen = SeenIndex(arena.array("seen_indptr"), arena.array("seen_items"),
                         options["num_items"])
        sampler = NegativeSampler(options["num_items"], seen_index=seen,
                                  max_resample=options["max_resample"],
                                  vectorized=options["vectorized"])
        batch_size = options["batch_size"]
        seed = options["seed"]
        shuffle = options["shuffle"]
        total = users.shape[0]
        perm_epoch, perm = -1, None
        while True:
            message = task_queue.get()
            if message is None:
                break
            epoch, batch_index = message
            if epoch != perm_epoch:
                perm = _epoch_permutation(seed, epoch, total, shuffle)
                perm_epoch = epoch
            rows = perm[batch_index * batch_size:(batch_index + 1) * batch_size]
            sampler.rng = _batch_rng(seed, epoch, batch_index)
            payload = _build_batch(users, inputs, targets, rows, sampler,
                                   options["num_negatives"])
            result_queue.put((epoch, batch_index, payload))
    finally:
        arena.close()


class ParallelBatchLoader:
    """Deterministic batch stream with optional worker-pool prefetching.

    Parameters
    ----------
    instances:
        The sliding-window training instances (built once by the trainer).
    num_items:
        Catalogue size (negatives are drawn from ``[0, num_items)``).
    seen_index:
        CSR index of each user's interacted items; negatives avoid them.
    batch_size / num_negatives:
        As in the trainer: instances per batch and sampled negatives per
        positive target.
    seed:
        Root seed of the permutation and negative streams.
    n_workers:
        Worker processes; ``0`` builds batches in-process (same output).
    prefetch_batches:
        Bound of the ready-batch queue — how far the pool may run ahead
        of the optimizer loop.
    shuffle:
        Permute instances every epoch (disable for diagnostic runs).
    """

    def __init__(self, instances: SlidingWindowInstances, num_items: int,
                 seen_index: SeenIndex, batch_size: int, num_negatives: int = 1,
                 seed: int = 0, n_workers: int = 0, prefetch_batches: int = 4,
                 shuffle: bool = True, max_resample: int = 20,
                 vectorized: bool = True, start_method: str | None = None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if num_negatives < 1:
            raise ValueError("num_negatives must be positive")
        if prefetch_batches < 1:
            raise ValueError("prefetch_batches must be positive")
        self.instances = instances
        self.num_items = num_items
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self.seed = seed
        self.n_workers = max(int(n_workers), 0)
        self.prefetch_batches = prefetch_batches
        self.shuffle = shuffle
        self.max_resample = max_resample
        self.vectorized = vectorized
        self.pad_id = instances.pad_id

        self._closed = False
        self._workers: list = []
        self._task_queue = None
        self._result_queue = None
        self._arena: SharedArena | None = None
        self._finalizer = None
        self._seen_index = seen_index

        if self.n_workers == 0:
            self._sampler = NegativeSampler(num_items, seen_index=seen_index,
                                            max_resample=max_resample,
                                            vectorized=vectorized)
            return

        self._arena = SharedArena.publish({
            "users": instances.users,
            "inputs": instances.inputs,
            "targets": instances.targets,
            "seen_indptr": seen_index.indptr,
            "seen_items": seen_index.items,
        })
        options = {
            "num_items": num_items,
            "batch_size": batch_size,
            "num_negatives": num_negatives,
            "seed": seed,
            "shuffle": shuffle,
            "max_resample": max_resample,
            "vectorized": vectorized,
        }
        from repro.parallel.sharded import default_start_method

        ctx = mp.get_context(start_method or default_start_method())
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue(maxsize=prefetch_batches)
        try:
            for _ in range(self.n_workers):
                worker = ctx.Process(
                    target=_loader_worker_main,
                    args=(self._arena.layout, options, self._task_queue,
                          self._result_queue),
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        except Exception:
            self.close()
            raise
        self._finalizer = weakref.finalize(
            self, _cleanup, self._arena, list(self._workers),
            self._task_queue, self._result_queue)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Batches per epoch."""
        total = len(self.instances)
        return (total + self.batch_size - 1) // self.batch_size

    @property
    def num_instances(self) -> int:
        """Training instances per epoch (before batching)."""
        return len(self.instances)

    @property
    def is_parallel(self) -> bool:
        """Whether batches are built by worker processes."""
        return self.n_workers > 0

    # ------------------------------------------------------------------ #
    # The batch stream
    # ------------------------------------------------------------------ #
    def epoch(self, epoch_index: int):
        """Yield the batches of ``epoch_index`` in deterministic order.

        Every yielded :class:`~repro.data.batching.Batch` arrives with its
        ``negatives`` already drawn.
        """
        if self._closed:
            raise RuntimeError("loader is closed")
        if self.n_workers == 0:
            yield from self._epoch_serial(epoch_index)
        else:
            yield from self._epoch_parallel(epoch_index)

    def _epoch_serial(self, epoch_index: int):
        data = self.instances
        perm = _epoch_permutation(self.seed, epoch_index, len(data), self.shuffle)
        for batch_index in range(len(self)):
            rows = perm[batch_index * self.batch_size:
                        (batch_index + 1) * self.batch_size]
            self._sampler.rng = _batch_rng(self.seed, epoch_index, batch_index)
            users, inputs, targets, negatives = _build_batch(
                data.users, data.inputs, data.targets, rows, self._sampler,
                self.num_negatives)
            yield Batch(users=users, inputs=inputs, targets=targets,
                        pad_id=self.pad_id, negatives=negatives)

    def _check_workers(self) -> None:
        for worker in self._workers:
            if not worker.is_alive():
                raise RuntimeError(
                    f"loader worker pid={worker.pid} died "
                    f"(exitcode {worker.exitcode})"
                )

    def _epoch_parallel(self, epoch_index: int):
        num_batches = len(self)
        self._check_workers()
        # Tasks are released in a bounded window rather than all at once:
        # together with the bounded result queue this caps the batches
        # alive at any moment (queued + reordered) near prefetch_batches
        # even when the next-expected batch happens to be the slowest.
        window = self.prefetch_batches + self.n_workers
        next_task = 0
        reorder: dict[int, tuple] = {}
        for expected in range(num_batches):
            while expected not in reorder:
                # next_task - expected counts every undelivered batch,
                # whether queued, in a worker, or parked in reorder.
                while next_task < num_batches and next_task - expected < window:
                    self._task_queue.put((epoch_index, next_task))
                    next_task += 1
                try:
                    epoch, batch_index, payload = self._result_queue.get(timeout=60.0)
                except queue_module.Empty:
                    self._check_workers()
                    continue
                if epoch != epoch_index:
                    # Stale result of an abandoned epoch — drop it; the
                    # deterministic stream only ever serves the epoch the
                    # consumer asked for.
                    continue
                reorder[batch_index] = payload
            users, inputs, targets, negatives = reorder.pop(expected)
            yield Batch(users=users, inputs=inputs, targets=targets,
                        pad_id=self.pad_id, negatives=negatives)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers and release the shared segment."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer.detach()
        _cleanup(self._arena, self._workers, self._task_queue, self._result_queue)
        self._workers = []
        self._arena = None
        self._task_queue = None
        self._result_queue = None

    def __enter__(self) -> "ParallelBatchLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _cleanup(arena, workers, task_queue, result_queue) -> None:
    """Shutdown shared by close() and the GC finalizer.

    Workers may be blocked on a full result queue (e.g. the consumer
    abandoned an epoch mid-way), so the parent drains results while the
    sentinels propagate.
    """
    if task_queue is not None:
        for _ in workers:
            try:
                task_queue.put(None)
            except Exception:
                pass
    deadline = 50  # ~10 s of 0.2 s drain rounds
    while deadline and any(worker.is_alive() for worker in workers):
        if result_queue is not None:
            try:
                result_queue.get(timeout=0.2)
            except queue_module.Empty:
                deadline -= 1
            except Exception:
                break
        else:
            deadline -= 1
    for worker in workers:
        worker.join(timeout=1.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)
    for q in (task_queue, result_queue):
        if q is not None:
            try:
                q.close()
                q.join_thread()
            except Exception:
                pass
    if arena is not None:
        arena.close()
