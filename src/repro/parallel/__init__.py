"""Multi-process execution substrate.

Parallelizes both ends of the pipeline across worker processes while
keeping the single-process results bit-for-bit reproducible:

* :class:`~repro.parallel.shm.SharedArena` — publish a set of read-only
  numpy arrays into one ``multiprocessing.shared_memory`` segment;
  workers attach zero-copy views.
* :class:`~repro.parallel.sharded.ShardedScoringEngine` — the serving /
  evaluation half: the frozen candidate table, cached padded inputs and
  CSR seen-item arrays are shared once, and ``score_all`` /
  ``masked_scores`` / ``top_k`` requests fan out to persistent workers
  by user-range shard, bit-identical to the serial
  :class:`~repro.serving.engine.ScoringEngine`; ``observe()`` routes
  incremental updates to the owning worker (no snapshot rebuild).
* :class:`~repro.parallel.loader.ParallelBatchLoader` — the training
  half: batch gathering and vectorized negative sampling run in worker
  processes attached to the shared ``SeenIndex``, feeding the optimizer
  loop through a bounded prefetch queue with deterministic per-batch
  seeding (same stream for any worker count).
* :func:`~repro.parallel.bench.run_parallel_benchmark` — the
  workers=1-vs-N throughput harness behind ``BENCH_parallel.json`` and
  ``repro-ham bench-parallel``.
* Fault tolerance (``docs/robustness.md``):
  :class:`~repro.parallel.supervisor.ShardSupervisor` +
  :class:`~repro.parallel.supervisor.RestartPolicy` respawn dead shard
  workers against the already-published arena (bounded budget,
  exponential-backoff circuit breaker) and degrade exhausted shards to
  an in-process serial fallback;
  :class:`~repro.parallel.faults.FaultPlan` injects deterministic
  worker crashes/delays/stalls for the chaos suite and
  :func:`~repro.parallel.resilience_bench.run_resilience_benchmark`
  (``BENCH_resilience.json``, ``repro-ham bench-resilience``).
"""

from repro.parallel.shm import ArenaLayout, SharedArena, SharedArraySpec
from repro.parallel.sharded import (
    DEFAULT_REQUEST_TIMEOUT_S,
    ShardedScoringEngine,
    default_start_method,
    make_scoring_engine,
    shard_bounds,
)
from repro.parallel.supervisor import (
    RestartPolicy,
    ShardCircuitOpenError,
    ShardHealth,
    ShardSupervisor,
)
from repro.parallel.faults import FaultInjector, FaultPlan, ShardFault
from repro.parallel.loader import ParallelBatchLoader

__all__ = [
    "ArenaLayout",
    "SharedArena",
    "SharedArraySpec",
    "ShardedScoringEngine",
    "ParallelBatchLoader",
    "DEFAULT_REQUEST_TIMEOUT_S",
    "default_start_method",
    "make_scoring_engine",
    "shard_bounds",
    "RestartPolicy",
    "ShardCircuitOpenError",
    "ShardHealth",
    "ShardSupervisor",
    "FaultInjector",
    "FaultPlan",
    "ShardFault",
]
