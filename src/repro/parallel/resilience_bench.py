"""Resilience harness: worker-kill recovery time and post-crash parity.

The parallel bench (``BENCH_parallel.json``) measures the substrate's
happy path; this harness measures its failure path, driving the
supervision machinery of :mod:`repro.parallel.sharded` with a
deterministic :class:`~repro.parallel.faults.FaultPlan`:

* **baseline** — repeated full-catalogue ``top_k`` sweeps on a healthy
  sharded engine (the steady state every recovery is compared against);
* **kill + respawn** — a fresh engine whose shard-0 worker SIGKILLs
  itself mid-stream; the harness records how much longer the interrupted
  sweep took than the baseline p50 (**recovery overhead**) and checks
  that every sweep after the respawn is **bit-identical** to the serial
  engine at baseline throughput;
* **degraded mode** — an engine whose shard-0 worker dies in *every*
  incarnation under a small restart budget, forcing the
  degrade-to-serial fallback; the harness records that the answers stay
  bit-identical and how much the degraded sweep costs.

Every scenario is single-process-observable and runs on a single-core
machine (recovery correctness, unlike speedup, does not need real
cores).  :func:`write_resilience_report` persists the result as
``benchmarks/results/BENCH_resilience.json`` under the unified
:mod:`repro.bench_schema` envelope; ``repro-ham bench-resilience`` is
the CLI entry point and ``benchmarks/test_resilience_recovery.py`` regenerates
and guards the artifact (``chaos`` tier, see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.bench_schema import write_bench_report
from repro.models.registry import create_model
from repro.parallel.faults import FaultPlan
from repro.parallel.sharded import ShardedScoringEngine
from repro.parallel.supervisor import RestartPolicy
from repro.serving.engine import ScoringEngine
from repro.training.bench import synthetic_training_histories

__all__ = ["ResilienceBenchReport", "run_resilience_benchmark",
           "write_resilience_report"]


@dataclass(frozen=True)
class ResilienceBenchReport:
    """Recovery-time / post-crash-parity measurements of one workload."""

    model_name: str
    num_users: int
    num_items: int
    k: int
    n_workers: int
    cpu_count: int
    repeats: int
    #: Healthy-engine p50 sweep seconds (the recovery reference).
    baseline_p50_s: float
    baseline_users_per_sec: float
    #: Wall seconds of the sweep during which the worker was SIGKILLed
    #: (includes death detection, respawn and re-dispatch).
    killed_sweep_s: float
    #: ``killed_sweep_s - baseline_p50_s`` — what the crash cost.
    recovery_overhead_s: float
    #: Post-respawn p50 sweep seconds (should track the baseline).
    post_recovery_p50_s: float
    post_recovery_users_per_sec: float
    #: Post-respawn sweeps compared bit-for-bit against the serial engine.
    post_recovery_bit_identical: bool
    #: Respawns/deaths/re-dispatches recorded by the kill scenario.
    restarts: int
    worker_deaths: int
    redispatched: int
    stale_results_dropped: int
    #: Budget-exhaustion scenario: sweep seconds once the shard runs the
    #: in-process serial fallback, and its parity with the serial engine.
    degraded_sweep_s: float
    degraded_bit_identical: bool
    degraded_shards: int

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"{self.model_name} resilience over {self.num_users} users x "
            f"{self.num_items} items ({self.n_workers} shards, "
            f"{self.cpu_count} cores): baseline p50 "
            f"{self.baseline_p50_s * 1e3:.1f} ms; SIGKILL mid-sweep -> "
            f"recovered in +{self.recovery_overhead_s * 1e3:.1f} ms "
            f"({self.restarts} respawn(s), {self.redispatched} re-dispatched, "
            f"post-recovery bit-identical: {self.post_recovery_bit_identical}, "
            f"post-recovery p50 {self.post_recovery_p50_s * 1e3:.1f} ms); "
            f"budget exhaustion -> {self.degraded_shards} degraded shard(s), "
            f"sweep {self.degraded_sweep_s * 1e3:.1f} ms, bit-identical: "
            f"{self.degraded_bit_identical}"
        )


def _timed_sweeps(engine, users: np.ndarray, k: int, repeats: int) -> list[float]:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.top_k(users, k)
        times.append(time.perf_counter() - start)
    return times


def run_resilience_benchmark(num_users: int = 400, num_items: int = 2000,
                             max_history: int = 60, k: int = 10,
                             n_workers: int = 2, repeats: int = 5,
                             model_name: str = "HAMm", seed: int = 0,
                             embedding_dim: int = 32,
                             request_timeout_s: float = 60.0,
                             ) -> ResilienceBenchReport:
    """Measure crash recovery: kill a shard worker mid-stream, time it.

    Uses the synthetic HAM workload of the other benches.  Three engines
    are built over the same model/histories: a healthy one (baseline
    sweeps), one whose shard-0 worker kills itself on its second sweep
    (respawn scenario), and one whose shard-0 worker dies in every
    incarnation under a two-restart budget (degraded scenario).  All
    answers are checked bit-for-bit against the serial engine.
    """
    if n_workers < 2:
        raise ValueError("n_workers must be at least 2 to have shards to kill")
    if repeats < 1:
        raise ValueError("repeats must be positive")

    model_kwargs = dict(embedding_dim=embedding_dim)
    if model_name.startswith("HAM"):
        model_kwargs.update(n_h=10, n_l=2)
    model = create_model(model_name, num_users, num_items,
                         rng=np.random.default_rng(seed), **model_kwargs)
    histories = synthetic_training_histories(num_users, num_items, max_history,
                                             seed=seed)
    users = np.arange(num_users, dtype=np.int64)

    serial = ScoringEngine(model, histories, exclude_seen=True, precompute=True)
    reference = serial.top_k(users, k)

    # ---- baseline: healthy engine --------------------------------------- #
    with ShardedScoringEngine(model, histories, n_workers=n_workers,
                              exclude_seen=True, precompute=True,
                              request_timeout_s=request_timeout_s) as engine:
        engine.top_k(users, k)  # warm-up, untimed
        baseline_times = _timed_sweeps(engine, users, k, repeats)
    baseline = np.asarray(baseline_times, dtype=np.float64)
    baseline_p50 = float(np.percentile(baseline, 50))

    # ---- kill + respawn mid-stream -------------------------------------- #
    # Request 1 on shard 0 is the warm sweep; request 2 — the first timed
    # sweep — kills the worker after it consumed the sub-request, i.e.
    # with the request in flight (the supervisor's worst case).
    plan = FaultPlan.kill_worker(shard=0, at_request=2)
    with ShardedScoringEngine(model, histories, n_workers=n_workers,
                              exclude_seen=True, fault_plan=plan,
                              request_timeout_s=request_timeout_s) as engine:
        engine.top_k(users, k)  # warm sweep (request 1: survives)
        start = time.perf_counter()
        killed_ranked = engine.top_k(users, k)  # request 2: SIGKILL + recover
        killed_sweep_s = time.perf_counter() - start
        post_times = _timed_sweeps(engine, users, k, repeats)
        post_ranked = engine.top_k(users, k)
        stats = engine.stats()
        restarts = engine.health()["shards"][0]["restarts"]
    post = np.asarray(post_times, dtype=np.float64)
    post_p50 = float(np.percentile(post, 50))
    post_identical = bool(np.array_equal(killed_ranked, reference)
                          and np.array_equal(post_ranked, reference))

    # ---- budget exhaustion -> degraded serial fallback ------------------- #
    plan = FaultPlan.kill_worker(shard=0, at_request=1, every_incarnation=True)
    policy = RestartPolicy(max_restarts=2, backoff_base_s=0.01,
                           backoff_max_s=0.05)
    with ShardedScoringEngine(model, histories, n_workers=n_workers,
                              exclude_seen=True, fault_plan=plan,
                              restart_policy=policy,
                              request_timeout_s=request_timeout_s) as engine:
        start = time.perf_counter()
        degraded_ranked = engine.top_k(users, k)
        degraded_sweep_s = time.perf_counter() - start
        degraded_shards = len(engine.health()["degraded_shards"])
    degraded_identical = bool(np.array_equal(degraded_ranked, reference))

    return ResilienceBenchReport(
        model_name=model_name,
        num_users=num_users,
        num_items=num_items,
        k=k,
        n_workers=n_workers,
        cpu_count=os.cpu_count() or 1,
        repeats=repeats,
        baseline_p50_s=baseline_p50,
        baseline_users_per_sec=float(num_users / baseline_p50)
        if baseline_p50 > 0 else float("inf"),
        killed_sweep_s=killed_sweep_s,
        recovery_overhead_s=killed_sweep_s - baseline_p50,
        post_recovery_p50_s=post_p50,
        post_recovery_users_per_sec=float(num_users / post_p50)
        if post_p50 > 0 else float("inf"),
        post_recovery_bit_identical=post_identical,
        restarts=int(restarts),
        worker_deaths=int(stats["worker_deaths"]),
        redispatched=int(stats["redispatched"]),
        stale_results_dropped=int(stats["stale_results_dropped"]),
        degraded_sweep_s=degraded_sweep_s,
        degraded_bit_identical=degraded_identical,
        degraded_shards=int(degraded_shards),
    )


def write_resilience_report(report: ResilienceBenchReport, path) -> None:
    """Persist a report as the ``BENCH_resilience.json`` artifact."""
    write_bench_report(path, "resilience", report.as_dict(), headline={
        "recovery_overhead_s": report.recovery_overhead_s,
        "post_recovery_bit_identical": report.post_recovery_bit_identical,
        "degraded_bit_identical": report.degraded_bit_identical,
        "restarts": report.restarts,
        "n_workers": report.n_workers,
        "cpu_count": report.cpu_count,
    })
