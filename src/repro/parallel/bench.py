"""Parallel throughput harness: workers=1 vs workers=N on both pipeline ends.

The serving/training benches quantified single-process hot-path wins;
this harness quantifies what the multi-process substrate adds on top:

* **eval sweep** — a full-catalogue ``top_k`` sweep over every user
  (the shape of a ``RankingEvaluator`` pass), answered by the serial
  :class:`~repro.serving.engine.ScoringEngine` and by the
  :class:`~repro.parallel.sharded.ShardedScoringEngine` with
  ``n_workers`` shards.  Both paths are warmed (representations
  materialized, one untimed sweep) so the comparison isolates the
  steady-state sweep cost; the sharded result is also checked
  bit-for-bit against the serial one and the verdict is recorded in the
  artifact.
* **training epochs** — the same synthetic BPR workload trained with the
  in-process batch path and with the worker-pool
  :class:`~repro.parallel.loader.ParallelBatchLoader` feeding the
  optimizer loop.

:func:`write_parallel_report` persists the result as
``benchmarks/results/BENCH_parallel.json`` under the unified
:mod:`repro.bench_schema` envelope; ``repro-ham bench-parallel`` is the
CLI entry point.  On single-core machines the numbers are still written
(the regression guard keys off the recorded ``cpu_count``) — real
speedups need real cores.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.bench_schema import write_bench_report
from repro.models.registry import create_model
from repro.parallel.sharded import ShardedScoringEngine
from repro.serving.engine import ScoringEngine
from repro.training.bench import synthetic_training_histories
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer

__all__ = [
    "SweepStats",
    "EpochStats",
    "ParallelBenchReport",
    "run_parallel_benchmark",
    "write_parallel_report",
]


@dataclass(frozen=True)
class SweepStats:
    """Timing distribution of repeated full-catalogue top-k sweeps."""

    n_workers: int
    repeats: int
    p50_s: float
    mean_s: float
    users_per_sec: float

    @staticmethod
    def from_seconds(times: list[float], n_workers: int, num_users: int) -> "SweepStats":
        values = np.asarray(times, dtype=np.float64)
        p50 = float(np.percentile(values, 50))
        return SweepStats(
            n_workers=n_workers,
            repeats=len(times),
            p50_s=p50,
            mean_s=float(values.mean()),
            users_per_sec=float(num_users / p50) if p50 > 0 else float("inf"),
        )


@dataclass(frozen=True)
class EpochStats:
    """Timing distribution of BPR training epochs for one loader mode."""

    loader_workers: int
    epochs: int
    p50_s: float
    mean_s: float
    final_loss: float

    @staticmethod
    def from_result(epoch_seconds: list[float], loader_workers: int,
                    final_loss: float) -> "EpochStats":
        values = np.asarray(epoch_seconds, dtype=np.float64)
        return EpochStats(
            loader_workers=loader_workers,
            epochs=len(epoch_seconds),
            p50_s=float(np.percentile(values, 50)),
            mean_s=float(values.mean()),
            final_loss=final_loss,
        )


@dataclass(frozen=True)
class ParallelBenchReport:
    """Workers=1 vs workers=N comparison on the synthetic HAM workload."""

    model_name: str
    num_users: int
    num_items: int
    k: int
    n_workers: int
    cpu_count: int
    eval_serial: SweepStats
    eval_sharded: SweepStats
    #: p50 sweep-time ratio (serial / sharded); > 1 means the shards win.
    eval_sweep_speedup: float
    #: Sharded top_k compared bit-for-bit against the serial engine.
    topk_bit_identical: bool
    train_serial: EpochStats
    train_loader: EpochStats
    #: p50 epoch-time ratio (in-process / worker-pool loader).
    epoch_speedup: float

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"{self.model_name} sweep over {self.num_users} users x "
            f"{self.num_items} items (top-{self.k}, {self.cpu_count} cores): "
            f"serial p50 {self.eval_serial.p50_s * 1e3:.1f} ms vs "
            f"{self.n_workers}-shard p50 {self.eval_sharded.p50_s * 1e3:.1f} ms "
            f"-> {self.eval_sweep_speedup:.2f}x "
            f"(top-k bit-identical: {self.topk_bit_identical}); "
            f"epochs: in-process p50 {self.train_serial.p50_s:.3f} s vs "
            f"loader p50 {self.train_loader.p50_s:.3f} s "
            f"-> {self.epoch_speedup:.2f}x"
        )


def _timed_sweeps(engine, users: np.ndarray, k: int, repeats: int) -> list[float]:
    engine.top_k(users, k)  # warm-up, untimed
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.top_k(users, k)
        times.append(time.perf_counter() - start)
    return times


def run_parallel_benchmark(num_users: int = 1200, num_items: int = 6000,
                           max_history: int = 60, k: int = 10,
                           n_workers: int = 4, repeats: int = 5,
                           train_users: int = 64, train_items: int = 2000,
                           train_epochs: int = 3, batch_size: int = 256,
                           model_name: str = "HAMm", seed: int = 0,
                           embedding_dim: int = 48) -> ParallelBenchReport:
    """Measure sweep and epoch throughput, workers=1 vs ``n_workers``.

    Both sides use the synthetic HAM workload of the earlier benches.
    The scoring model is used as constructed (training would not change
    a single flop of the timed sweep); the training side runs real BPR
    epochs on a smaller catalogue so the harness stays tractable in CI.
    """
    if n_workers < 2:
        raise ValueError("n_workers must be at least 2 to compare against serial")
    if repeats < 1 or train_epochs < 1:
        raise ValueError("repeats and train_epochs must be positive")

    model_kwargs = dict(embedding_dim=embedding_dim)
    if model_name.startswith("HAM"):
        model_kwargs.update(n_h=10, n_l=2)

    # ---- eval-sweep side ---------------------------------------------- #
    model = create_model(model_name, num_users, num_items,
                         rng=np.random.default_rng(seed), **model_kwargs)
    histories = synthetic_training_histories(num_users, num_items, max_history,
                                             seed=seed)
    users = np.arange(num_users, dtype=np.int64)

    serial = ScoringEngine(model, histories, exclude_seen=True, precompute=True)
    serial_times = _timed_sweeps(serial, users, k, repeats)
    serial_ranked = serial.top_k(users, k)

    with ShardedScoringEngine(model, histories, n_workers=n_workers,
                              exclude_seen=True, precompute=True) as sharded:
        sharded_times = _timed_sweeps(sharded, users, k, repeats)
        sharded_ranked = sharded.top_k(users, k)
    bit_identical = bool(np.array_equal(serial_ranked, sharded_ranked))

    eval_serial = SweepStats.from_seconds(serial_times, 1, num_users)
    eval_sharded = SweepStats.from_seconds(sharded_times, n_workers, num_users)

    # ---- training-epoch side ------------------------------------------ #
    train_histories = synthetic_training_histories(train_users, train_items,
                                                   max_history, seed=seed + 1)
    base = TrainingConfig(num_epochs=train_epochs, batch_size=batch_size,
                          seed=seed, keep_best=False)

    def timed_fit(loader_workers: int) -> EpochStats:
        m = create_model(model_name, train_users, train_items,
                         rng=np.random.default_rng(seed), **model_kwargs)
        result = Trainer(m, base.with_overrides(loader_workers=loader_workers)).fit(
            train_histories)
        return EpochStats.from_result(result.epoch_seconds, loader_workers,
                                      result.final_loss)

    train_serial = timed_fit(0)
    train_loader = timed_fit(n_workers)

    return ParallelBenchReport(
        model_name=model_name,
        num_users=num_users,
        num_items=num_items,
        k=k,
        n_workers=n_workers,
        cpu_count=os.cpu_count() or 1,
        eval_serial=eval_serial,
        eval_sharded=eval_sharded,
        eval_sweep_speedup=eval_serial.p50_s / eval_sharded.p50_s
        if eval_sharded.p50_s > 0 else float("inf"),
        topk_bit_identical=bit_identical,
        train_serial=train_serial,
        train_loader=train_loader,
        epoch_speedup=train_serial.p50_s / train_loader.p50_s
        if train_loader.p50_s > 0 else float("inf"),
    )


def write_parallel_report(report: ParallelBenchReport, path) -> None:
    """Persist a report as the ``BENCH_parallel.json`` artifact."""
    write_bench_report(path, "parallel", report.as_dict(), headline={
        "eval_sweep_speedup": report.eval_sweep_speedup,
        "epoch_speedup": report.epoch_speedup,
        "n_workers": report.n_workers,
        "cpu_count": report.cpu_count,
        "topk_bit_identical": report.topk_bit_identical,
    })
