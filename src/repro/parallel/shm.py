"""Shared-memory publication of read-only numpy arrays.

The multi-process substrate rests on one observation: everything a
scoring or data-loading worker needs is a set of *read-only* arrays — the
frozen candidate table, the padded per-user inputs, the CSR
``SeenIndex`` arrays, the sliding-window training instances.  Instead of
pickling those arrays into every worker (linear cost per worker, double
memory), the parent publishes them **once** into a single
``multiprocessing.shared_memory`` segment and workers attach zero-copy
views.

:class:`SharedArena` packs any ``{key: ndarray}`` mapping back-to-back
(64-byte aligned) into one segment, so there is exactly one OS object to
create, attach and unlink per engine/loader — leaked-segment accounting
stays trivial and the shutdown fixture in the tests can assert that
``/dev/shm`` is clean afterwards.

The picklable :class:`ArenaLayout` is the hand-off token: the parent
sends it to workers (cheap — names, shapes and dtypes only) and each
worker rebuilds the identical views with :meth:`SharedArena.attach`.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArraySpec", "ArenaLayout", "SharedArena", "SHM_PREFIX"]

#: Prefix of every segment this module creates; tests use it to check for
#: leaked segments in /dev/shm.
SHM_PREFIX = "repro-shm"

_ALIGNMENT = 64  # cache-line alignment for each packed array


@dataclass(frozen=True)
class SharedArraySpec:
    """Location of one array inside a shared segment (picklable).

    ``writable`` marks the array as mutable from attached workers —
    the exception to the arena's read-only rule, used for state that is
    owned exclusively by one worker (e.g. the sharded engine's padded
    input rows, evolved by shard-routed ``observe()`` calls).
    """

    offset: int
    shape: tuple[int, ...]
    dtype: str
    writable: bool = False

    @property
    def nbytes(self) -> int:
        """Payload size of the array in bytes (alignment padding excluded)."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class ArenaLayout:
    """Everything a worker needs to attach to a published arena."""

    segment_name: str
    specs: dict[str, SharedArraySpec]


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


class SharedArena:
    """One shared-memory segment holding a named set of read-only arrays.

    Parameters are not passed directly — use the two constructors:

    * :meth:`publish` (parent side): copy arrays into a fresh segment.
      The parent owns the segment and must call :meth:`unlink` (or
      :meth:`close` with ``unlink=True``) when the consumers are gone.
    * :meth:`attach` (worker side): map an existing segment from its
      :class:`ArenaLayout`.  Workers only ever :meth:`close`.
    """

    def __init__(self, segment: shared_memory.SharedMemory,
                 layout: ArenaLayout, owner: bool):
        self._segment = segment
        self.layout = layout
        self._owner = owner
        self._closed = False
        self._arrays: dict[str, np.ndarray] = {}
        for key, spec in layout.specs.items():
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                              buffer=segment.buf, offset=spec.offset)
            if not owner and not spec.writable:
                view.flags.writeable = False
            self._arrays[key] = view
        # Crashed-owner insurance: if the owning process exits (normally
        # or via an unhandled exception unwinding the stack) without
        # close(), the finalizer unlinks the segment so /dev/shm cannot
        # accumulate leaked arenas.  weakref.finalize runs both on GC and
        # at interpreter shutdown, unlike __del__ alone.  Deliberately
        # bound to the raw segment, not self, so it cannot keep the arena
        # alive.
        self._segment_finalizer = None
        if owner:
            self._segment_finalizer = weakref.finalize(
                self, _unlink_segment, segment)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def publish(cls, arrays: dict[str, np.ndarray],
                writable_keys: frozenset[str] | set[str] = frozenset()) -> "SharedArena":
        """Copy ``arrays`` into one new shared segment (parent side).

        Keys listed in ``writable_keys`` stay writable in attached
        workers (see :class:`SharedArraySpec`); everything else is
        mapped read-only on the worker side.
        """
        unknown = set(writable_keys) - set(arrays)
        if unknown:
            raise KeyError(f"writable_keys not in arrays: {sorted(unknown)}")
        specs: dict[str, SharedArraySpec] = {}
        offset = 0
        contiguous = {key: np.ascontiguousarray(value) for key, value in arrays.items()}
        for key, value in contiguous.items():
            offset = _aligned(offset)
            specs[key] = SharedArraySpec(offset=offset, shape=tuple(value.shape),
                                         dtype=value.dtype.str,
                                         writable=key in writable_keys)
            offset += value.nbytes
        name = f"{SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
        layout = ArenaLayout(segment_name=segment.name, specs=specs)
        arena = cls(segment, layout, owner=True)
        for key, value in contiguous.items():
            arena._arrays[key][...] = value
        return arena

    @classmethod
    def attach(cls, layout: ArenaLayout) -> "SharedArena":
        """Map an already-published segment (worker side)."""
        segment = shared_memory.SharedMemory(name=layout.segment_name)
        return cls(segment, layout, owner=False)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def array(self, key: str) -> np.ndarray:
        """Zero-copy view of the published array ``key``."""
        if self._closed:
            raise RuntimeError("arena is closed")
        return self._arrays[key]

    def keys(self):
        """The published array names."""
        return self._arrays.keys()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping; owners also unlink the segment."""
        if self._closed:
            return
        self._closed = True
        self._arrays = {}
        if self._segment_finalizer is not None:
            self._segment_finalizer.detach()
        self._segment.close()
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best effort; explicit close() is the contract
        try:
            self.close()
        except Exception:
            pass


def _unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Owner-death cleanup: close the mapping and unlink the OS object."""
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except Exception:
        pass
