"""Deterministic fault injection for the multi-process substrate.

Chaos testing a multi-process engine is only useful when the chaos is
*reproducible*: a test that kills a worker "sometimes around request 10"
cannot assert recovery behaviour bit-for-bit.  This module makes faults
first-class, seedable configuration instead of ad-hoc monkeypatching:

* :class:`ShardFault` describes what goes wrong on one shard — die with
  ``SIGKILL`` upon receiving the N-th request, delay every response by a
  fixed amount (plus seeded jitter), or stall outright (stop answering
  while staying alive, the shape of a wedged queue).
* :class:`FaultPlan` bundles the per-shard faults with a seed.  The plan
  is a picklable frozen dataclass, so it travels to workers through the
  normal ``multiprocessing`` start-up path — injection requires no
  cooperation from the code under test beyond accepting the plan.
* :class:`FaultInjector` is the worker-side executor: it counts the
  requests its shard receives and applies the configured fault at the
  exact, deterministic point.

Kills happen *after* a request has been consumed from the task queue and
*before* it is answered — the worst case for the supervisor, which must
re-dispatch the in-flight request to the respawned worker.  By default a
kill/stall fires only in the worker's first incarnation so a respawned
worker recovers cleanly; ``every_incarnation=True`` makes the fault
permanent, which is how the restart-budget-exhaustion path is driven.

The chaos test suite (``tests/test_resilience.py``, ``make chaos``) and
the ``BENCH_resilience.json`` harness are built on these plans.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShardFault", "FaultPlan", "FaultInjector", "fault_rng"]

#: How long a stalled worker sleeps per stall round (it never answers
#: again, but stays interruptible for terminate()).
_STALL_NAP_S = 0.5


def fault_rng(seed: int, *key: int) -> np.random.Generator:
    """The fault-schedule RNG for one ``(seed, *key)`` stream.

    Every fault injector in the repo — the shard-worker
    :class:`FaultInjector` here and the per-connection network injector
    in :mod:`repro.cluster.faults` — derives its random decisions from
    this one helper, so a chaos schedule is reproducible from the plan
    seed plus the injector's coordinates alone.  The integer tuple seeds
    ``numpy``'s ``SeedSequence``, whose spawning arithmetic is fixed by
    the numpy API (platform- and run-independent); the golden-value
    tests in the chaos tier pin exactly that stability.
    """
    return np.random.default_rng(
        (int(seed),) + tuple(int(part) for part in key))


@dataclass(frozen=True)
class ShardFault:
    """The fault configuration of one shard worker (picklable).

    Parameters
    ----------
    shard:
        Index of the shard worker this fault applies to.
    kill_at_request:
        Send ``SIGKILL`` to the worker's own process upon *receiving*
        its N-th request (1-based), i.e. after the request left the task
        queue but before any result is produced.  ``None`` disables.
    stall_at_request:
        Upon receiving the N-th request, stop answering forever while
        staying alive — the queue-wedge scenario that only request
        deadlines can unblock.  ``None`` disables.
    delay_response_s:
        Sleep this long before answering every request (a slow shard).
    delay_jitter_s:
        Add a seeded uniform ``[0, jitter)`` component to each delay;
        deterministic for a fixed ``FaultPlan.seed`` and shard.
    every_incarnation:
        Apply ``kill_at_request`` / ``stall_at_request`` in every worker
        incarnation (respawns included) instead of only the first.
        Response delays always apply to every incarnation.
    """

    shard: int
    kill_at_request: int | None = None
    stall_at_request: int | None = None
    delay_response_s: float = 0.0
    delay_jitter_s: float = 0.0
    every_incarnation: bool = False


@dataclass(frozen=True)
class FaultPlan:
    """A seedable, picklable set of per-shard faults.

    Pass a plan to :class:`~repro.parallel.sharded.ShardedScoringEngine`
    (``fault_plan=...``) and every worker builds a
    :class:`FaultInjector` for its own shard at start-up.  Shards
    without a configured fault run normally.
    """

    faults: tuple[ShardFault, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        shards = [fault.shard for fault in self.faults]
        if len(shards) != len(set(shards)):
            raise ValueError("at most one ShardFault per shard")

    def for_shard(self, shard: int) -> ShardFault | None:
        """The fault configured for ``shard``, or ``None``."""
        for fault in self.faults:
            if fault.shard == shard:
                return fault
        return None

    # ------------------------------------------------------------------ #
    # Convenience constructors for the common single-fault plans
    # ------------------------------------------------------------------ #
    @classmethod
    def kill_worker(cls, shard: int, at_request: int = 1,
                    every_incarnation: bool = False, seed: int = 0) -> "FaultPlan":
        """Plan that SIGKILLs ``shard``'s worker at its N-th request."""
        return cls(faults=(ShardFault(shard=shard, kill_at_request=at_request,
                                      every_incarnation=every_incarnation),),
                   seed=seed)

    @classmethod
    def delay_shard(cls, shard: int, delay_s: float,
                    jitter_s: float = 0.0, seed: int = 0) -> "FaultPlan":
        """Plan that delays every response of ``shard`` by ``delay_s``."""
        return cls(faults=(ShardFault(shard=shard, delay_response_s=delay_s,
                                      delay_jitter_s=jitter_s),),
                   seed=seed)

    @classmethod
    def stall_worker(cls, shard: int, at_request: int = 1,
                     every_incarnation: bool = False, seed: int = 0) -> "FaultPlan":
        """Plan that wedges ``shard``'s worker at its N-th request."""
        return cls(faults=(ShardFault(shard=shard, stall_at_request=at_request,
                                      every_incarnation=every_incarnation),),
                   seed=seed)


class FaultInjector:
    """Worker-side executor of a :class:`FaultPlan`.

    Built once per worker process; :meth:`on_request` is called after a
    request is consumed from the task queue and :meth:`before_reply`
    just before its result is enqueued.  Both are no-ops for shards the
    plan does not target.
    """

    def __init__(self, plan: FaultPlan, shard: int, incarnation: int = 0):
        self._fault = plan.for_shard(shard)
        self._incarnation = incarnation
        self._requests = 0
        # Seeded per (plan seed, shard, incarnation): jittered delays are
        # reproducible for a fixed plan, and differ across respawns only
        # through the incarnation component.
        self._rng = fault_rng(plan.seed, shard, incarnation)

    @property
    def active(self) -> bool:
        """Whether this worker's shard has a configured fault."""
        return self._fault is not None

    def _terminal_faults_apply(self) -> bool:
        return self._fault.every_incarnation or self._incarnation == 0

    def on_request(self) -> None:
        """Apply receipt-time faults (kill/stall) for the next request."""
        if self._fault is None:
            return
        self._requests += 1
        if not self._terminal_faults_apply():
            return
        fault = self._fault
        if (fault.kill_at_request is not None
                and self._requests >= fault.kill_at_request):
            # SIGKILL ourselves mid-request: the request has been taken
            # off the queue but will never be answered — exactly the
            # in-flight loss the supervisor must re-dispatch.
            os.kill(os.getpid(), signal.SIGKILL)
        if (fault.stall_at_request is not None
                and self._requests >= fault.stall_at_request):
            while True:  # pragma: no cover - terminated by the parent
                time.sleep(_STALL_NAP_S)

    def before_reply(self) -> None:
        """Apply the configured response delay (plus seeded jitter)."""
        if self._fault is None:
            return
        delay = self._fault.delay_response_s
        if self._fault.delay_jitter_s > 0.0:
            delay += float(self._rng.uniform(0.0, self._fault.delay_jitter_s))
        if delay > 0.0:
            time.sleep(delay)
