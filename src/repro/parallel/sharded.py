"""Multi-process sharded scoring engine.

The serial :class:`~repro.serving.engine.ScoringEngine` made a single
request cheap; this module makes a *sweep* fast by fanning requests out
over persistent worker processes, each owning a contiguous user-range
shard.  The expensive, read-only state — padded per-user inputs, the CSR
seen-item arrays and the frozen candidate table — is published exactly
once into a :class:`~repro.parallel.shm.SharedArena`; each worker
attaches zero-copy views and wires them into a regular
:meth:`ScoringEngine.from_snapshot` engine.  Because every worker runs
the serial engine's own code on identical arrays, sharded ``score_all``
/ ``masked_scores`` / ``top_k`` results are **bit-for-bit identical** to
the single-process engine (asserted by the test suite and the
``BENCH_parallel.json`` harness).

Request flow::

    parent                          worker i (users [s_i, e_i))
    ------                          ----------------------------
    partition users by shard  --->  task queue: (rid, method, users, kw)
    scatter result rows       <---  result queue: (rid, rows)

Workers cache the representations of their shard lazily, exactly like
the serial engine, so repeated sweeps cost one matmul + mask +
``argpartition`` per shard — spread over ``n_workers`` cores.

``n_workers <= 1`` degrades to a plain in-process engine with the same
API, so callers can thread an ``n_workers`` knob through without
special-casing single-core machines.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import traceback
import weakref

import numpy as np

from repro.data.seen import SeenIndex
from repro.data.windows import pad_histories, pad_id_for
from repro.models.base import FrozenScorer, SequentialRecommender
from repro.parallel.shm import ArenaLayout, SharedArena
from repro.serving.engine import ScoringEngine

__all__ = ["ShardedScoringEngine", "make_scoring_engine", "shard_bounds",
           "default_start_method"]

_RESULT_TIMEOUT_S = 120.0


def make_scoring_engine(model, histories, n_workers: int = 0,
                        exclude_seen: bool = True, micro_batch_size: int = 1024,
                        copy_weights: bool = True, precompute: bool = False):
    """The one ``n_workers``-aware engine factory.

    ``n_workers > 1`` builds a :class:`ShardedScoringEngine`; anything
    else the serial :class:`~repro.serving.engine.ScoringEngine`
    (``copy_weights`` applies to the serial branch only — sharded
    workers always hold a copied snapshot).  Both results expose
    ``close()``, so callers can tear down unconditionally.
    """
    if n_workers and n_workers > 1:
        return ShardedScoringEngine(model, histories, n_workers=n_workers,
                                    exclude_seen=exclude_seen,
                                    micro_batch_size=micro_batch_size,
                                    precompute=precompute)
    return ScoringEngine(model, histories, exclude_seen=exclude_seen,
                         micro_batch_size=micro_batch_size,
                         copy_weights=copy_weights, precompute=precompute)


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the model), else ``spawn``."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def shard_bounds(num_users: int, n_shards: int) -> np.ndarray:
    """Contiguous user-range shard boundaries, shape ``(n_shards + 1,)``.

    Users are split as evenly as possible; the first ``num_users %
    n_shards`` shards get one extra user.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    base, extra = divmod(num_users, n_shards)
    sizes = np.full(n_shards, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(n_shards + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def _seen_views(indptr: np.ndarray, items: np.ndarray) -> list[np.ndarray]:
    """Per-user item views into the shared CSR arrays."""
    return [items[indptr[user]:indptr[user + 1]]
            for user in range(indptr.shape[0] - 1)]


def _shard_worker_main(layout: ArenaLayout, model: SequentialRecommender,
                       options: dict, task_queue, result_queue) -> None:
    """Worker loop: attach shared state, serve requests until sentinel."""
    arena = SharedArena.attach(layout)
    try:
        frozen = None
        if options["has_frozen"]:
            bias = arena.array("item_bias") if options["has_bias"] else None
            frozen = FrozenScorer(num_items=model.num_items,
                                  candidate_embeddings=arena.array("candidates"),
                                  item_bias=bias)
        engine = ScoringEngine.from_snapshot(
            model,
            inputs=arena.array("inputs"),
            seen_items=_seen_views(arena.array("seen_indptr"),
                                   arena.array("seen_items")),
            frozen=frozen,
            exclude_seen=options["exclude_seen"],
            micro_batch_size=options["micro_batch_size"],
            observable=True,
        )
        while True:
            message = task_queue.get()
            if message is None:
                break
            request_id, method, users, kwargs = message
            try:
                if method == "score_all":
                    payload = engine.score_all(users)
                elif method == "masked_scores":
                    payload = engine.masked_scores(users)
                elif method == "top_k":
                    payload = engine.top_k(users, **kwargs)
                elif method == "recommend_batch":
                    payload = engine.recommend_batch(users, **kwargs)
                elif method == "observe":
                    # Shard-local incremental update: shifts the user's
                    # padded input row (writable shm), extends their
                    # seen array and invalidates one cached
                    # representation — no snapshot rebuild anywhere.
                    engine.observe(int(users[0]), int(kwargs["item"]))
                    payload = True
                elif method == "materialize":
                    shard_users = np.arange(users[0], users[1], dtype=np.int64)
                    if engine._rep_valid is not None:
                        engine._ensure_representations(shard_users)
                    payload = True
                else:  # pragma: no cover - protocol error
                    raise ValueError(f"unknown request method {method!r}")
                result_queue.put((request_id, payload, None))
            except Exception:
                result_queue.put((request_id, None, traceback.format_exc()))
    finally:
        arena.close()


class ShardedScoringEngine:
    """Scoring engine sharded by user range over worker processes.

    Parameters
    ----------
    model:
        Any trained model of the study.  The model is shipped to each
        worker once at startup (by fork inheritance or one pickle);
        afterwards only user-id arrays and result rows cross the process
        boundary.
    histories:
        Per-user interaction histories, as for the serial engine.
    n_workers:
        Worker processes.  Values ``<= 1`` select the in-process serial
        fallback (no processes, no shared memory).
    exclude_seen / micro_batch_size:
        As for :class:`~repro.serving.engine.ScoringEngine`.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it.
    precompute:
        Materialize every shard's representations eagerly (in parallel)
        at construction.
    """

    def __init__(self, model: SequentialRecommender, histories: list[list[int]],
                 n_workers: int = 2, exclude_seen: bool = True,
                 micro_batch_size: int = 1024, start_method: str | None = None,
                 precompute: bool = False):
        if len(histories) < model.num_users:
            raise ValueError(
                f"histories cover {len(histories)} users but the model expects "
                f"{model.num_users}"
            )
        if micro_batch_size < 1:
            raise ValueError("micro_batch_size must be positive")
        model.eval()
        self.model = model
        self.num_users = model.num_users
        self.num_items = model.num_items
        self.input_length = model.input_length
        self.pad_id = pad_id_for(model.num_items)
        self.exclude_seen = exclude_seen
        self.micro_batch_size = micro_batch_size
        self.n_workers = max(int(n_workers), 1)

        self._serial: ScoringEngine | None = None
        self._arena: SharedArena | None = None
        self._workers: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._request_counter = 0
        self._closed = False
        self._finalizer = None

        if self.n_workers == 1:
            self._serial = ScoringEngine(model, histories, exclude_seen=exclude_seen,
                                         micro_batch_size=micro_batch_size,
                                         precompute=precompute)
            self._histories = None  # the serial engine owns the lists
            self._bounds = shard_bounds(self.num_users, 1)
            return

        # Parent-side history bookkeeping (history() parity with the
        # serial engine); the scoring state itself lives in the workers.
        self._histories = [list(histories[user]) for user in range(self.num_users)]

        # ---- materialize the shared, read-only state once ------------- #
        # Like the serial engine, only the first num_users histories are
        # part of the snapshot (callers may pass a longer list).  The
        # seen arrays are published even for exclude_seen=False engines:
        # unlike the serial engine, workers cannot build them lazily (no
        # histories), and top_k(..., exclude_seen=True) must keep working
        # per request.  The cost is one pass over the histories — the
        # same order as the pad_histories call above.
        inputs = pad_histories(histories, self.input_length, self.pad_id,
                               users=np.arange(self.num_users, dtype=np.int64))
        seen = SeenIndex.from_histories(histories[:self.num_users], self.num_items)
        try:
            frozen = model.freeze(copy=True)
        except NotImplementedError:
            frozen = None

        arrays = {
            "inputs": inputs,
            "seen_indptr": seen.indptr,
            "seen_items": seen.items,
        }
        if frozen is not None:
            arrays["candidates"] = frozen.candidate_embeddings
            if frozen.item_bias is not None:
                arrays["item_bias"] = frozen.item_bias
        # "inputs" stays worker-writable: each padded row is owned by
        # exactly one shard, whose task queue serializes the observe()
        # updates against that shard's scoring requests.
        self._arena = SharedArena.publish(arrays, writable_keys={"inputs"})

        self._bounds = shard_bounds(self.num_users, self.n_workers)
        options = {
            "exclude_seen": exclude_seen,
            "micro_batch_size": micro_batch_size,
            "has_frozen": frozen is not None,
            "has_bias": frozen is not None and frozen.item_bias is not None,
        }

        ctx = mp.get_context(start_method or default_start_method())
        self._result_queue = ctx.Queue()
        try:
            for _ in range(self.n_workers):
                task_queue = ctx.Queue()
                worker = ctx.Process(
                    target=_shard_worker_main,
                    args=(self._arena.layout, model, options, task_queue,
                          self._result_queue),
                    daemon=True,
                )
                worker.start()
                self._task_queues.append(task_queue)
                self._workers.append(worker)
        except Exception:
            self.close()
            raise
        # Belt-and-braces cleanup if the caller forgets close(): the
        # finalizer only touches OS resources, never the worker results.
        self._finalizer = weakref.finalize(
            self, _cleanup, self._arena, list(self._workers),
            list(self._task_queues), self._result_queue)
        if precompute:
            self.materialize()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_parallel(self) -> bool:
        """Whether requests actually fan out to worker processes."""
        return self._serial is None

    def shard_of(self, users: np.ndarray) -> np.ndarray:
        """Shard index of each user id."""
        users = np.asarray(users, dtype=np.int64)
        return np.searchsorted(self._bounds, users, side="right") - 1

    def history(self, user: int) -> list[int]:
        """Copy of the engine's current history of ``user``."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user id {user} outside [0, {self.num_users})")
        if self._serial is not None:
            return self._serial.history(user)
        return list(self._histories[user])

    def observe(self, user: int, item: int) -> None:
        """Record a ``(user, item)`` interaction, shard-aware.

        The update is routed to the worker owning ``user``'s range and
        applied there through the serial engine's own ``observe`` — one
        padded-row shift, one seen-array extension and one cached-
        representation invalidation.  No snapshot is rebuilt and the
        other shards are never touched.  The call returns once the
        owning worker acknowledged the update, so a subsequent request
        for the same user reflects it (per-shard task queues are FIFO).
        """
        if not 0 <= user < self.num_users:
            raise ValueError(f"user id {user} outside [0, {self.num_users})")
        if not 0 <= item < self.num_items:
            raise ValueError(f"item id {item} outside [0, {self.num_items})")
        if self._serial is not None:
            self._serial.observe(user, item)
            return
        self._check_open()
        shard = int(self.shard_of(np.asarray([user]))[0])
        self._request_counter += 1
        request_id = self._request_counter
        self._task_queues[shard].put(
            (request_id, "observe", np.asarray([user], dtype=np.int64),
             {"item": int(item)}))
        self._collect({request_id: shard})
        # Record the interaction only after the owning worker's ack, so
        # a failed/retried observe cannot leave history() diverged from
        # the shard's actual scoring state.
        self._histories[user].append(item)

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    def _as_user_array(self, users) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d sequence of user ids")
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            bad = users[(users < 0) | (users >= self.num_users)][0]
            raise ValueError(f"user id {bad} outside [0, {self.num_users})")
        return users

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")
        for worker in self._workers:
            if not worker.is_alive():
                raise RuntimeError(
                    f"shard worker pid={worker.pid} died "
                    f"(exitcode {worker.exitcode})"
                )

    def _collect(self, expected: dict[int, object]) -> dict[int, object]:
        """Drain results for the outstanding request ids in ``expected``."""
        results: dict[int, object] = {}
        while len(results) < len(expected):
            try:
                request_id, payload, error = self._result_queue.get(
                    timeout=_RESULT_TIMEOUT_S)
            except queue_module.Empty:
                # A slow shard is not an error: keep waiting as long as
                # every worker is alive (a dead one raises here).
                self._check_open()
                continue
            if request_id not in expected:
                # Stale result (success or error) of an earlier request
                # that failed part-way — drop it so it cannot poison
                # this merge.
                continue
            if error is not None:
                raise RuntimeError(f"shard worker request failed:\n{error}")
            results[request_id] = payload
        return results

    def _fan_out(self, method: str, users: np.ndarray,
                 kwargs: dict | None = None) -> list[tuple[np.ndarray, object]]:
        """Send per-shard subsets, return ``(positions, payload)`` pairs."""
        self._check_open()
        shard_ids = self.shard_of(users)
        pending: dict[int, np.ndarray] = {}
        for shard in np.unique(shard_ids):
            positions = np.nonzero(shard_ids == shard)[0]
            self._request_counter += 1
            request_id = self._request_counter
            self._task_queues[int(shard)].put(
                (request_id, method, users[positions], kwargs or {}))
            pending[request_id] = positions
        results = self._collect(pending)
        return [(positions, results[request_id])
                for request_id, positions in pending.items()]

    # ------------------------------------------------------------------ #
    # Scoring API (mirrors the serial engine)
    # ------------------------------------------------------------------ #
    def materialize(self) -> "ShardedScoringEngine":
        """Eagerly compute every shard's representation cache, in parallel."""
        if self._serial is not None:
            self._serial.materialize()
            return self
        self._check_open()
        pending: dict[int, object] = {}
        for shard in range(self.n_workers):
            self._request_counter += 1
            request_id = self._request_counter
            self._task_queues[shard].put(
                (request_id,
                 "materialize",
                 (int(self._bounds[shard]), int(self._bounds[shard + 1])),
                 {}))
            pending[request_id] = shard
        self._collect(pending)
        return self

    def score_all(self, users) -> np.ndarray:
        """Raw scores of every real item, ``(B, num_items)`` (bit-identical
        to the serial engine on the same users)."""
        if self._serial is not None:
            return self._serial.score_all(users)
        users = self._as_user_array(users)
        return self._merge_matrix("score_all", users, None)

    def masked_scores(self, users) -> np.ndarray:
        """Scores with each user's seen items pushed to ``-inf``."""
        if self._serial is not None:
            return self._serial.masked_scores(users)
        users = self._as_user_array(users)
        return self._merge_matrix("masked_scores", users, None)

    def top_k(self, users, k: int, exclude_seen: bool | None = None) -> np.ndarray:
        """Ranked ids of the top-``k`` items per user, best first."""
        if k < 1:
            raise ValueError("k must be positive")
        if self._serial is not None:
            return self._serial.top_k(users, k, exclude_seen=exclude_seen)
        users = self._as_user_array(users)
        width = min(k, self.num_items)
        out = np.empty((users.size, width), dtype=np.int64)
        if users.size == 0:
            return out
        for positions, rows in self._fan_out(
                "top_k", users, {"k": k, "exclude_seen": exclude_seen}):
            out[positions] = rows
        return out

    def recommend(self, user: int, k: int = 10) -> list:
        """Top-``k`` recommendations for one user."""
        return self.recommend_batch([user], k)[0]

    def recommend_batch(self, users, k: int = 10) -> list[list]:
        """Top-``k`` :class:`~repro.serving.engine.Recommendation` lists.

        Workers build their shard's recommendation entries locally and
        only the ``k`` (item, score, rank) triples per user cross the
        process boundary — never the full score matrix.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if self._serial is not None:
            return self._serial.recommend_batch(users, k)
        users = self._as_user_array(users)
        results: list = [None] * users.size
        for positions, payload in self._fan_out("recommend_batch", users,
                                                {"k": k}):
            for position, recommendations in zip(positions, payload):
                results[int(position)] = recommendations
        return results

    def _merge_matrix(self, method: str, users: np.ndarray,
                      dtype) -> np.ndarray:
        if users.size == 0:
            return np.zeros((0, self.num_items), dtype=dtype or np.float64)
        parts = self._fan_out(method, users)
        first = parts[0][1]
        out = np.empty((users.size, self.num_items), dtype=first.dtype)
        for positions, rows in parts:
            out[positions] = rows
        return out

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers, join them and release the shared segment."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer.detach()
        _cleanup(self._arena, self._workers, self._task_queues,
                 self._result_queue)
        self._workers = []
        self._task_queues = []
        self._result_queue = None
        self._arena = None

    def __enter__(self) -> "ShardedScoringEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _cleanup(arena: SharedArena | None, workers: list, task_queues: list,
             result_queue=None) -> None:
    """Shutdown path shared by close() and the GC finalizer.

    After an error a worker may still be flushing a large pending result
    into the queue, so the parent drains results while the sentinels
    propagate — otherwise the worker blocks at exit on a full pipe and
    ends up force-terminated.
    """
    for queue in task_queues:
        try:
            queue.put(None)
        except Exception:
            pass
    deadline = 50  # ~10 s of 0.2 s drain rounds
    while deadline and any(worker.is_alive() for worker in workers):
        if result_queue is not None:
            try:
                result_queue.get(timeout=0.2)
            except queue_module.Empty:
                deadline -= 1
            except Exception:
                break
        else:
            deadline -= 1
    for worker in workers:
        worker.join(timeout=1.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)
    for queue in task_queues:
        try:
            queue.close()
            queue.join_thread()
        except Exception:
            pass
    if arena is not None:
        arena.close()
