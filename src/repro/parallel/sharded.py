"""Multi-process sharded scoring engine with shard supervision.

The serial :class:`~repro.serving.engine.ScoringEngine` made a single
request cheap; this module makes a *sweep* fast by fanning requests out
over persistent worker processes, each owning a contiguous user-range
shard.  The expensive, read-only state — padded per-user inputs, the CSR
seen-item arrays and the frozen candidate table — is published exactly
once into a :class:`~repro.parallel.shm.SharedArena`; each worker
attaches zero-copy views and wires them into a regular
:meth:`ScoringEngine.from_snapshot` engine.  Because every worker runs
the serial engine's own code on identical arrays, sharded ``score_all``
/ ``masked_scores`` / ``top_k`` results are **bit-for-bit identical** to
the single-process engine (asserted by the test suite and the
``BENCH_parallel.json`` harness).

Request flow::

    parent                          worker i (users [s_i, e_i))
    ------                          ----------------------------
    partition users by shard  --->  task queue: (rid, method, users, kw)
    scatter result rows       <---  result queue: (rid, rows)

Workers cache the representations of their shard lazily, exactly like
the serial engine, so repeated sweeps cost one matmul + mask +
``argpartition`` per shard — spread over ``n_workers`` cores.

``n_workers <= 1`` degrades to a plain in-process engine with the same
API, so callers can thread an ``n_workers`` knob through without
special-casing single-core machines.

Fault tolerance
---------------
A dead shard worker no longer bricks the engine.  The parent supervises
its workers through a :class:`~repro.parallel.supervisor.ShardSupervisor`:

* **Respawn** — a dead worker is replaced by a fresh process that
  re-attaches to the already-published arena (the picklable
  ``ArenaLayout`` makes this one queue message, not a re-publication).
  Acknowledged ``observe`` interactions are replayed into the new
  incarnation (seen/representation state only — the shared input rows
  were already shifted in place), and the dead shard's in-flight
  *idempotent* sub-requests are re-dispatched onto a fresh task queue,
  so the merged answer stays bit-identical to the no-crash run.
* **Degrade** — after :class:`~repro.parallel.supervisor.RestartPolicy`
  exhausts the restart budget (exponential backoff between respawns,
  enforced as a per-shard circuit breaker), the shard falls back to an
  in-process serial engine built over the parent's own arena views.
  The service answers degraded instead of failing.
* **Deadlines** — every public call takes a ``timeout`` (defaulting to
  the constructor's ``request_timeout_s``); an expired deadline raises
  ``TimeoutError`` for *that* request and drops its late results as
  stale, without poisoning later requests.
* **At-most-once observe** — ``observe`` is the one non-idempotent
  request (re-applying it would double-shift the shared input row).  If
  the owning worker dies with an observe in flight, the call raises
  instead of re-dispatching; a deadline expiry on observe is likewise
  indeterminate (the worker may still apply it).  Scoring requests are
  pure reads and re-dispatch freely.

Deterministic failures for tests come from
:class:`~repro.parallel.faults.FaultPlan` (``fault_plan=`` constructor
parameter); ``health()`` / ``stats()`` expose per-shard liveness,
restart counts and the shed/stale/deadline counters.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
import traceback
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.data.seen import SeenIndex
from repro.data.windows import pad_histories, pad_id_for
from repro.models.base import FrozenScorer, SequentialRecommender
from repro.parallel.faults import FaultInjector, FaultPlan
from repro.parallel.shm import ArenaLayout, SharedArena
from repro.parallel.supervisor import RestartPolicy, ShardSupervisor
from repro.retrieval.index import ANN_PREFIX, ANNIndex, RetrievalConfig
from repro.serving.engine import ScoringEngine

__all__ = ["ShardedScoringEngine", "make_scoring_engine", "shard_bounds",
           "default_start_method", "DEFAULT_REQUEST_TIMEOUT_S"]

#: Default per-request deadline (seconds).  Overridable per engine via
#: ``request_timeout_s`` and per call via ``timeout=``; ``None`` waits
#: forever (the pre-deadline behaviour).
DEFAULT_REQUEST_TIMEOUT_S = 120.0

#: Result-queue poll interval while a request waits: short enough that
#: worker deaths and deadline expiries are noticed promptly, long enough
#: to stay off the profile.
_POLL_INTERVAL_S = 0.05


def make_scoring_engine(model, histories, n_workers: int = 0,
                        exclude_seen: bool = True, micro_batch_size: int = 1024,
                        copy_weights: bool = True, precompute: bool = False,
                        request_timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S,
                        restart_policy: RestartPolicy | None = None,
                        fault_plan: FaultPlan | None = None,
                        ann_config: RetrievalConfig | None = None):
    """The one ``n_workers``-aware engine factory.

    ``n_workers > 1`` builds a :class:`ShardedScoringEngine`; anything
    else the serial :class:`~repro.serving.engine.ScoringEngine`
    (``copy_weights`` applies to the serial branch only — sharded
    workers always hold a copied snapshot; ``request_timeout_s`` /
    ``restart_policy`` / ``fault_plan`` apply to the sharded branch
    only, as the serial engine never blocks on another process).  Both
    results expose ``close()``, so callers can tear down
    unconditionally.

    ``ann_config`` additionally trains an ANN candidate index over the
    frozen candidate table (enabling ``top_k(..., mode="ann")``); the
    sharded branch trains it once in the parent and publishes it through
    the arena so every worker attaches the same index zero-copy.
    """
    if n_workers and n_workers > 1:
        return ShardedScoringEngine(model, histories, n_workers=n_workers,
                                    exclude_seen=exclude_seen,
                                    micro_batch_size=micro_batch_size,
                                    precompute=precompute,
                                    request_timeout_s=request_timeout_s,
                                    restart_policy=restart_policy,
                                    fault_plan=fault_plan,
                                    ann_config=ann_config)
    engine = ScoringEngine(model, histories, exclude_seen=exclude_seen,
                           micro_batch_size=micro_batch_size,
                           copy_weights=copy_weights, precompute=precompute)
    if ann_config is not None:
        engine.build_ann_index(ann_config)
    return engine


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the model), else ``spawn``."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def shard_bounds(num_users: int, n_shards: int) -> np.ndarray:
    """Contiguous user-range shard boundaries, shape ``(n_shards + 1,)``.

    Users are split as evenly as possible; the first ``num_users %
    n_shards`` shards get one extra user.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    base, extra = divmod(num_users, n_shards)
    sizes = np.full(n_shards, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(n_shards + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def _seen_views(indptr: np.ndarray, items: np.ndarray) -> list[np.ndarray]:
    """Per-user item views into the shared CSR arrays."""
    return [items[indptr[user]:indptr[user + 1]]
            for user in range(indptr.shape[0] - 1)]


def _execute_request(engine: ScoringEngine, method: str, users,
                     kwargs: dict):
    """Run one shard sub-request against a serial engine.

    The single dispatch shared by the worker loop and the parent's
    degraded in-process fallback — both therefore run the exact same
    serial code path, which is what keeps degraded answers bit-identical
    to worker answers.
    """
    if method == "score_all":
        return engine.score_all(users)
    if method == "masked_scores":
        return engine.masked_scores(users)
    if method == "top_k":
        return engine.top_k(users, **kwargs)
    if method == "top_k_scored":
        return engine.top_k_scored(users, **kwargs)
    if method == "recommend_batch":
        return engine.recommend_batch(users, **kwargs)
    if method == "observe":
        # Shard-local incremental update: shifts the user's padded input
        # row (writable shm), extends their seen array and invalidates
        # one cached representation — no snapshot rebuild anywhere.
        engine.observe(int(users[0]), int(kwargs["item"]))
        return True
    if method == "materialize":
        shard_users = np.arange(users[0], users[1], dtype=np.int64)
        if engine._rep_valid is not None:
            engine._ensure_representations(shard_users)
        return True
    raise ValueError(f"unknown request method {method!r}")


def _shard_worker_main(layout: ArenaLayout, model: SequentialRecommender,
                       options: dict, task_queue, result_queue) -> None:
    """Worker loop: attach shared state, serve requests until sentinel."""
    arena = SharedArena.attach(layout)
    injector = None
    if options.get("fault_plan") is not None:
        injector = FaultInjector(options["fault_plan"], options["shard"],
                                 options.get("incarnation", 0))
    try:
        frozen = None
        if options["has_frozen"]:
            bias = arena.array("item_bias") if options["has_bias"] else None
            frozen = FrozenScorer(num_items=model.num_items,
                                  candidate_embeddings=arena.array("candidates"),
                                  item_bias=bias)
        engine = ScoringEngine.from_snapshot(
            model,
            inputs=arena.array("inputs"),
            seen_items=_seen_views(arena.array("seen_indptr"),
                                   arena.array("seen_items")),
            frozen=frozen,
            exclude_seen=options["exclude_seen"],
            micro_batch_size=options["micro_batch_size"],
            observable=True,
        )
        if options.get("has_ann"):
            # Zero-copy: the index arrays are read-only arena views, the
            # same bytes the parent trained — ANN candidates are
            # therefore identical across shards and worker counts.
            engine.attach_ann_index(ANNIndex.from_arrays(
                {key: arena.array(key) for key in arena.keys()
                 if key.startswith(ANN_PREFIX)}))
        while True:
            message = task_queue.get()
            if message is None:
                break
            request_id, method, users, kwargs = message
            if method == "replay_observes":
                # Recovery bootstrap of a respawned incarnation: re-mark
                # the acknowledged interactions seen and invalidate their
                # representations (the shm input rows are already
                # current).  Fire-and-forget — queued before any
                # re-dispatched request, so FIFO ordering guarantees the
                # state is rebuilt first.
                for user, item in kwargs["entries"]:
                    engine.replay_observe(int(user), int(item))
                if request_id is None:
                    continue
            if injector is not None:
                injector.on_request()
            try:
                payload = _execute_request(engine, method, users, kwargs)
                if injector is not None:
                    injector.before_reply()
                result_queue.put((request_id, payload, None))
            except Exception:
                result_queue.put((request_id, None, traceback.format_exc()))
    finally:
        arena.close()


@dataclass
class _PendingRequest:
    """Parent-side record of one dispatched shard sub-request.

    Carries everything needed to re-dispatch the request onto a
    respawned worker (or run it inline on a degraded shard) and to merge
    its result back into the caller's output (``tag`` is the caller's
    bookkeeping — output positions for fan-outs, the shard index for
    materialize).
    """

    shard: int
    method: str
    users: object
    kwargs: dict = field(default_factory=dict)
    tag: object = None


class ShardedScoringEngine:
    """Scoring engine sharded by user range over supervised workers.

    Parameters
    ----------
    model:
        Any trained model of the study.  The model is shipped to each
        worker once at startup (by fork inheritance or one pickle);
        afterwards only user-id arrays and result rows cross the process
        boundary.
    histories:
        Per-user interaction histories, as for the serial engine.
    n_workers:
        Worker processes.  Values ``<= 1`` select the in-process serial
        fallback (no processes, no shared memory).
    exclude_seen / micro_batch_size:
        As for :class:`~repro.serving.engine.ScoringEngine`.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it.
    precompute:
        Materialize every shard's representations eagerly (in parallel)
        at construction.
    request_timeout_s:
        Default per-request deadline in seconds for every scoring call
        (overridable per call via ``timeout=``).  ``None`` disables
        deadlines.  Replaces the old hard-coded module constant; the
        default keeps its value (120 s).
    restart_policy:
        :class:`~repro.parallel.supervisor.RestartPolicy` governing dead
        worker respawns, backoff and the degrade-to-serial fallback.
    fault_plan:
        Optional :class:`~repro.parallel.faults.FaultPlan` injected into
        the workers — deterministic crashes/delays/stalls for the chaos
        test suite and the resilience benchmark.  Production engines
        leave this ``None``.
    """

    def __init__(self, model: SequentialRecommender, histories: list[list[int]],
                 n_workers: int = 2, exclude_seen: bool = True,
                 micro_batch_size: int = 1024, start_method: str | None = None,
                 precompute: bool = False,
                 request_timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S,
                 restart_policy: RestartPolicy | None = None,
                 fault_plan: FaultPlan | None = None,
                 ann_config: RetrievalConfig | None = None):
        if len(histories) < model.num_users:
            raise ValueError(
                f"histories cover {len(histories)} users but the model expects "
                f"{model.num_users}"
            )
        if micro_batch_size < 1:
            raise ValueError("micro_batch_size must be positive")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive or None")
        model.eval()
        self.model = model
        self.num_users = model.num_users
        self.num_items = model.num_items
        self.input_length = model.input_length
        self.pad_id = pad_id_for(model.num_items)
        self.exclude_seen = exclude_seen
        self.micro_batch_size = micro_batch_size
        self.n_workers = max(int(n_workers), 1)
        self.request_timeout_s = request_timeout_s

        self._serial: ScoringEngine | None = None
        self._ann: ANNIndex | None = None
        self._arena: SharedArena | None = None
        self._workers: list = []
        self._task_queues: list = []
        self._result_queues: list = []
        self._request_counter = 0
        self._closed = False
        self._finalizer = None
        self._supervisor = ShardSupervisor(self.n_workers, restart_policy)
        self._fault_plan = fault_plan
        # Observability counters (see stats()).
        self._stale_results = 0
        self._deadline_timeouts = 0
        self._redispatched = 0
        # Degraded-mode state: a lazily built in-process engine over the
        # parent's own arena views, plus the per-shard log of
        # acknowledged observes (replayed into respawned workers and
        # into the degraded engine) and the per-shard watermark of how
        # much of each log the degraded engine has already applied.
        self._degraded_engine: ScoringEngine | None = None
        self._observed_log: list[list[tuple[int, int]]] = [
            [] for _ in range(self.n_workers)]
        self._replayed_upto = [0] * self.n_workers

        if self.n_workers == 1:
            self._serial = ScoringEngine(model, histories, exclude_seen=exclude_seen,
                                         micro_batch_size=micro_batch_size,
                                         precompute=precompute)
            if ann_config is not None:
                self._serial.build_ann_index(ann_config)
            self._histories = None  # the serial engine owns the lists
            self._bounds = shard_bounds(self.num_users, 1)
            return

        # Parent-side history bookkeeping (history() parity with the
        # serial engine); the scoring state itself lives in the workers.
        self._histories = [list(histories[user]) for user in range(self.num_users)]

        # ---- materialize the shared, read-only state once ------------- #
        # Like the serial engine, only the first num_users histories are
        # part of the snapshot (callers may pass a longer list).  The
        # seen arrays are published even for exclude_seen=False engines:
        # unlike the serial engine, workers cannot build them lazily (no
        # histories), and top_k(..., exclude_seen=True) must keep working
        # per request.  The cost is one pass over the histories — the
        # same order as the pad_histories call above.
        inputs = pad_histories(histories, self.input_length, self.pad_id,
                               users=np.arange(self.num_users, dtype=np.int64))
        seen = SeenIndex.from_histories(histories[:self.num_users], self.num_items)
        try:
            frozen = model.freeze(copy=True)
        except NotImplementedError:
            frozen = None

        arrays = {
            "inputs": inputs,
            "seen_indptr": seen.indptr,
            "seen_items": seen.items,
        }
        if frozen is not None:
            arrays["candidates"] = frozen.candidate_embeddings
            if frozen.item_bias is not None:
                arrays["item_bias"] = frozen.item_bias
        # The ANN index is trained once here and published alongside the
        # engine arrays — workers (and the degraded fallback) attach the
        # same read-only bytes, so candidate generation is identical in
        # every process.
        if ann_config is not None:
            if frozen is None:
                raise NotImplementedError(
                    f"{type(model).__name__} has no candidate-embedding "
                    "table; ANN retrieval needs the representation fast path"
                )
            self._ann = ANNIndex.build(
                np.ascontiguousarray(frozen.candidate_embeddings[:self.num_items]),
                ann_config)
            arrays.update(self._ann.to_arrays())
        # "inputs" stays worker-writable: each padded row is owned by
        # exactly one shard, whose task queue serializes the observe()
        # updates against that shard's scoring requests.
        self._arena = SharedArena.publish(arrays, writable_keys={"inputs"})

        self._bounds = shard_bounds(self.num_users, self.n_workers)
        self._options = {
            "exclude_seen": exclude_seen,
            "micro_batch_size": micro_batch_size,
            "has_frozen": frozen is not None,
            "has_bias": frozen is not None and frozen.item_bias is not None,
            "has_ann": self._ann is not None,
            "fault_plan": fault_plan,
        }

        self._ctx = mp.get_context(start_method or default_start_method())
        self._workers = [None] * self.n_workers
        self._task_queues = [None] * self.n_workers
        # One result queue per shard, recreated on every respawn: queue
        # locks are not robust to SIGKILL (a worker killed mid-reply
        # would hold a shared queue's write lock forever and starve the
        # healthy shards), so no queue is ever shared between workers.
        self._result_queues = [None] * self.n_workers
        try:
            for shard in range(self.n_workers):
                self._spawn_shard(shard, incarnation=0)
        except Exception:
            self.close()
            raise
        # Belt-and-braces cleanup if the caller forgets close().  The
        # worker/queue lists are passed *live* (not copied) so respawned
        # workers are still covered; the finalizer only touches OS
        # resources, never the worker results.
        self._finalizer = weakref.finalize(
            self, _cleanup, self._arena, self._workers,
            self._task_queues, self._result_queues)
        if precompute:
            self.materialize()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_parallel(self) -> bool:
        """Whether requests actually fan out to worker processes."""
        return self._serial is None

    @property
    def supports_deadlines(self) -> bool:
        """Whether scoring calls accept a per-request ``timeout=``.

        The capability probe the gateway uses before propagating its
        request deadlines into the engine.
        """
        return True

    def shard_of(self, users: np.ndarray) -> np.ndarray:
        """Shard index of each user id."""
        users = np.asarray(users, dtype=np.int64)
        return np.searchsorted(self._bounds, users, side="right") - 1

    def history(self, user: int) -> list[int]:
        """Copy of the engine's current history of ``user``."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user id {user} outside [0, {self.num_users})")
        if self._serial is not None:
            return self._serial.history(user)
        return list(self._histories[user])

    def health(self) -> dict:
        """Liveness snapshot: per-shard supervision state, JSON-ready.

        Keys: ``mode`` (``"serial"``/``"sharded"``), ``alive`` (engine
        open), ``degraded_shards`` and the per-shard ``shards`` records
        (liveness, restarts, incarnation, breaker window, exit codes)
        from the :class:`~repro.parallel.supervisor.ShardSupervisor`.
        """
        if self._serial is not None:
            return {"mode": "serial", "alive": not self._closed,
                    "degraded_shards": [], "shards": []}
        return {
            "mode": "sharded",
            "alive": not self._closed,
            "n_workers": self.n_workers,
            "degraded_shards": self._supervisor.degraded_shards,
            "shards": self._supervisor.snapshot(),
        }

    def stats(self) -> dict:
        """Request/fault counters since construction, JSON-ready.

        ``stale_results_dropped`` counts results discarded in the merge
        because their request was re-dispatched, timed out or abandoned
        — silent before, observable now so retry correctness can be
        audited.  ``redispatched`` counts sub-requests re-sent to a
        respawned worker; ``deadline_timeouts`` counts requests failed
        by an expired deadline.
        """
        return {
            "requests": self._request_counter,
            "stale_results_dropped": self._stale_results,
            "deadline_timeouts": self._deadline_timeouts,
            "redispatched": self._redispatched,
            "worker_deaths": self._supervisor.total_deaths if self.is_parallel else 0,
            "restarts": self._supervisor.total_restarts if self.is_parallel else 0,
            "degraded_shards": len(self._supervisor.degraded_shards) if self.is_parallel else 0,
            "observed_interactions": sum(len(log) for log in self._observed_log),
        }

    def observe(self, user: int, item: int, timeout: float | None = None) -> None:
        """Record a ``(user, item)`` interaction, shard-aware.

        The update is routed to the worker owning ``user``'s range and
        applied there through the serial engine's own ``observe`` — one
        padded-row shift, one seen-array extension and one cached-
        representation invalidation.  No snapshot is rebuilt and the
        other shards are never touched.  The call returns once the
        owning worker acknowledged the update, so a subsequent request
        for the same user reflects it (per-shard task queues are FIFO).

        Observe is the engine's only non-idempotent request: if the
        owning worker dies while one is in flight, the call raises
        ``RuntimeError`` instead of re-dispatching (a replay would
        double-shift the input row), and a ``TimeoutError`` here is
        indeterminate — the worker may still apply the update after the
        deadline.  Both leave the engine serving.
        """
        if not 0 <= user < self.num_users:
            raise ValueError(f"user id {user} outside [0, {self.num_users})")
        if not 0 <= item < self.num_items:
            raise ValueError(f"item id {item} outside [0, {self.num_items})")
        if self._serial is not None:
            self._serial.observe(user, item)
            return
        self._check_open()
        deadline = self._deadline_for(timeout)
        shard = int(self.shard_of(np.asarray([user]))[0])
        if not self._is_degraded(shard):
            self._ensure_shard_ready(shard, deadline)
        if self._is_degraded(shard):
            engine = self._degraded_engine_for(shard)
            engine.observe(user, item)
            self._observed_log[shard].append((user, item))
            self._replayed_upto[shard] = len(self._observed_log[shard])
            self._histories[user].append(item)
            return
        self._request_counter += 1
        request_id = self._request_counter
        users = np.asarray([user], dtype=np.int64)
        kwargs = {"item": int(item)}
        self._task_queues[shard].put((request_id, "observe", users, kwargs))
        self._collect({request_id: _PendingRequest(shard, "observe", users,
                                                   kwargs)}, deadline)
        # Record the interaction only after the owning worker's ack, so
        # a failed/retried observe cannot leave history() diverged from
        # the shard's actual scoring state.
        self._histories[user].append(item)
        self._observed_log[shard].append((user, item))

    # ------------------------------------------------------------------ #
    # Supervision: respawn, degrade, deadlines
    # ------------------------------------------------------------------ #
    def _deadline_for(self, timeout: float | None) -> float | None:
        """Monotonic-clock deadline of a call (``None`` = wait forever)."""
        effective = self.request_timeout_s if timeout is None else timeout
        if effective is None:
            return None
        if effective <= 0:
            raise ValueError("timeout must be positive or None")
        return time.monotonic() + float(effective)

    def _is_degraded(self, shard: int) -> bool:
        return self._supervisor.health_of(shard).degraded

    def _spawn_shard(self, shard: int, incarnation: int) -> None:
        """Start (or restart) the worker process of ``shard``.

        Each incarnation gets a *fresh* task queue: messages left on a
        dead incarnation's queue are deliberately abandoned, so a
        request can never execute both from the old queue and from its
        re-dispatch (which matters for the non-idempotent observe).
        Respawns replay the shard's acknowledged observes before any
        re-dispatched request (FIFO).
        """
        options = dict(self._options, shard=shard, incarnation=incarnation)
        task_queue = self._ctx.Queue()
        result_queue = self._ctx.Queue()
        if incarnation and self._observed_log[shard]:
            entries = [(int(user), int(item))
                       for user, item in self._observed_log[shard]]
            task_queue.put((None, "replay_observes", None, {"entries": entries}))
        worker = self._ctx.Process(
            target=_shard_worker_main,
            args=(self._arena.layout, self.model, options, task_queue,
                  result_queue),
            daemon=True,
        )
        worker.start()
        self._task_queues[shard] = task_queue
        self._result_queues[shard] = result_queue
        self._workers[shard] = worker

    def _retire_worker(self, shard: int) -> None:
        """Reap a dead worker and abandon both of its queues.

        The dead incarnation's result queue may be corrupt (the worker
        could have been killed mid-reply), so it is never read again —
        re-dispatch onto the fresh incarnation recomputes anything lost.
        """
        worker = self._workers[shard]
        if worker is not None:
            worker.join(timeout=1.0)
        for old_queue in (self._task_queues[shard], self._result_queues[shard]):
            if old_queue is None:
                continue
            try:
                old_queue.cancel_join_thread()
                old_queue.close()
            except Exception:
                pass
        self._workers[shard] = None
        self._task_queues[shard] = None
        self._result_queues[shard] = None

    def _degraded_engine_for(self, shard: int) -> ScoringEngine:
        """The in-process fallback engine, caught up on observed state.

        Built lazily over the parent's *own* arena views (the owner
        mapping is writable, so observes keep working), then brought up
        to date by replaying every shard's acknowledged observes past
        its watermark — the shared input rows already hold them, only
        the seen/representation state needs the replay.  One engine
        serves all degraded shards; requests for live shards never touch
        it, so per-shard catch-up on later degradations stays correct.
        """
        engine = self._degraded_engine
        if engine is None:
            frozen = None
            if self._options["has_frozen"]:
                bias = (self._arena.array("item_bias")
                        if self._options["has_bias"] else None)
                frozen = FrozenScorer(
                    num_items=self.model.num_items,
                    candidate_embeddings=self._arena.array("candidates"),
                    item_bias=bias)
            engine = ScoringEngine.from_snapshot(
                self.model,
                inputs=self._arena.array("inputs"),
                seen_items=_seen_views(self._arena.array("seen_indptr"),
                                       self._arena.array("seen_items")),
                frozen=frozen,
                exclude_seen=self.exclude_seen,
                micro_batch_size=self.micro_batch_size,
                observable=True,
            )
            if self._ann is not None:
                engine.attach_ann_index(self._ann)
            self._degraded_engine = engine
        for other in range(self.n_workers):
            log = self._observed_log[other]
            for user, item in log[self._replayed_upto[other]:]:
                engine.replay_observe(user, item)
            self._replayed_upto[other] = len(log)
        return engine

    def _execute_inline(self, shard: int, method: str, users, kwargs: dict):
        """Serve one sub-request of a degraded shard in-process."""
        return _execute_request(self._degraded_engine_for(shard), method,
                                users, kwargs)

    def _ensure_shard_ready(self, shard: int, deadline: float | None) -> None:
        """Pre-dispatch gate: recover a dead worker, honour the breaker.

        May leave the shard degraded (caller re-checks) and raises
        :class:`~repro.parallel.supervisor.ShardCircuitOpenError` when
        the shard's post-respawn backoff window outlives ``deadline``.
        """
        worker = self._workers[shard]
        if worker is not None and not worker.is_alive():
            self._recover({}, {}, deadline)
        if self._is_degraded(shard):
            return
        self._supervisor.wait_for_breaker(shard, deadline)

    def _recover(self, pending: dict[int, _PendingRequest],
                 results: dict[int, object], deadline: float | None) -> None:
        """Handle every dead worker: respawn + re-dispatch, or degrade.

        Called whenever a result wait comes up empty (and before
        dispatching to a shard found dead).  Idempotent in-flight
        sub-requests of a dead shard are re-dispatched onto the fresh
        incarnation — or, once the restart budget is spent, answered
        inline by the degraded fallback (into ``results``).  An
        in-flight observe aborts with ``RuntimeError`` *after* the shard
        has been recovered, so the engine stays serving.
        """
        aborted_observe: tuple[int, int | None] | None = None
        for shard in range(self.n_workers):
            worker = self._workers[shard]
            if worker is None or worker.is_alive():
                continue
            exitcode = worker.exitcode
            self._supervisor.record_death(shard, exitcode)
            self._retire_worker(shard)
            inflight = {rid: request for rid, request in pending.items()
                        if request.shard == shard and rid not in results}
            observes = [rid for rid, request in inflight.items()
                        if request.method == "observe"]
            if observes:
                self._supervisor.record_aborted(shard, len(observes))
                aborted_observe = (shard, exitcode)
            if self._supervisor.should_respawn(shard):
                self._supervisor.record_respawn(shard)
                incarnation = self._supervisor.health_of(shard).incarnation
                self._spawn_shard(shard, incarnation)
                for rid, request in inflight.items():
                    if request.method == "observe":
                        continue
                    self._task_queues[shard].put(
                        (rid, request.method, request.users, request.kwargs))
                    self._redispatched += 1
            else:
                self._supervisor.record_degraded(shard)
                for rid, request in inflight.items():
                    if request.method == "observe":
                        continue
                    results[rid] = self._execute_inline(
                        shard, request.method, request.users, request.kwargs)
        if aborted_observe is not None:
            shard, exitcode = aborted_observe
            raise RuntimeError(
                f"shard {shard} worker died (exitcode {exitcode}) with an "
                f"observe in flight; the interaction was not recorded — "
                f"the shard has been recovered, retry observe()"
            )

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    def _as_user_array(self, users) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d sequence of user ids")
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            bad = users[(users < 0) | (users >= self.num_users)][0]
            raise ValueError(f"user id {bad} outside [0, {self.num_users})")
        return users

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")

    def _collect(self, pending: dict[int, _PendingRequest],
                 deadline: float | None) -> dict[int, object]:
        """Drain results for the outstanding request ids in ``pending``.

        Polls the per-shard result queues in short intervals so worker
        deaths (→ :meth:`_recover`) and deadline expiries (→
        ``TimeoutError``) are noticed within ``_POLL_INTERVAL_S``.
        Results of requests this merge no longer expects — late answers
        of timed-out or re-dispatched requests — are dropped and counted
        in ``stats()['stale_results_dropped']``.
        """
        results: dict[int, object] = {}
        while len(results) < len(pending):
            timeout = _POLL_INTERVAL_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    self._deadline_timeouts += 1
                    outstanding = len(pending) - len(results)
                    raise TimeoutError(
                        f"request deadline expired with {outstanding} shard "
                        f"sub-request(s) outstanding"
                    )
                timeout = min(timeout, remaining)
            shards = sorted({request.shard
                             for request_id, request in pending.items()
                             if request_id not in results})
            received = False
            for index, shard in enumerate(shards):
                result_queue = self._result_queues[shard]
                if result_queue is None:
                    continue  # respawn/degrade already answered via _recover
                try:
                    if not received and index == len(shards) - 1:
                        # Nothing drained so far and this is the last
                        # outstanding shard: block for one poll interval
                        # instead of spinning.
                        message = result_queue.get(timeout=timeout)
                    else:
                        message = result_queue.get_nowait()
                except queue_module.Empty:
                    continue
                received = True
                request_id, payload, error = message
                if request_id not in pending or request_id in results:
                    self._stale_results += 1
                    continue
                if error is not None:
                    raise RuntimeError(
                        f"shard worker request failed:\n{error}")
                results[request_id] = payload
            if not received:
                # A slow shard is not an error: check for dead workers
                # (respawn/degrade as budget allows) and keep waiting
                # until the deadline says otherwise.
                self._recover(pending, results, deadline)
        return results

    def _fan_out(self, method: str, users: np.ndarray,
                 kwargs: dict | None = None,
                 timeout: float | None = None) -> list[tuple[np.ndarray, object]]:
        """Send per-shard subsets, return ``(positions, payload)`` pairs.

        Degraded shards are served inline by the in-process fallback;
        live shards go through the breaker gate, the task queues and the
        deadline-aware collect.
        """
        self._check_open()
        deadline = self._deadline_for(timeout)
        kwargs = kwargs or {}
        shard_ids = self.shard_of(users)
        merged: list[tuple[np.ndarray, object]] = []
        pending: dict[int, _PendingRequest] = {}
        for shard in np.unique(shard_ids):
            shard = int(shard)
            positions = np.nonzero(shard_ids == shard)[0]
            shard_users = users[positions]
            if not self._is_degraded(shard):
                self._ensure_shard_ready(shard, deadline)
            if self._is_degraded(shard):
                merged.append((positions,
                               self._execute_inline(shard, method, shard_users,
                                                    kwargs)))
                continue
            self._request_counter += 1
            request_id = self._request_counter
            self._task_queues[shard].put(
                (request_id, method, shard_users, dict(kwargs)))
            pending[request_id] = _PendingRequest(shard, method, shard_users,
                                                 dict(kwargs), positions)
        if pending:
            results = self._collect(pending, deadline)
            merged.extend((request.tag, results[request_id])
                          for request_id, request in pending.items())
        return merged

    # ------------------------------------------------------------------ #
    # Scoring API (mirrors the serial engine)
    # ------------------------------------------------------------------ #
    def materialize(self, timeout: float | None = None) -> "ShardedScoringEngine":
        """Eagerly compute every shard's representation cache, in parallel."""
        if self._serial is not None:
            self._serial.materialize()
            return self
        self._check_open()
        deadline = self._deadline_for(timeout)
        pending: dict[int, _PendingRequest] = {}
        for shard in range(self.n_workers):
            span = (int(self._bounds[shard]), int(self._bounds[shard + 1]))
            if not self._is_degraded(shard):
                self._ensure_shard_ready(shard, deadline)
            if self._is_degraded(shard):
                self._execute_inline(shard, "materialize", span, {})
                continue
            self._request_counter += 1
            request_id = self._request_counter
            self._task_queues[shard].put((request_id, "materialize", span, {}))
            pending[request_id] = _PendingRequest(shard, "materialize", span,
                                                 {}, shard)
        if pending:
            self._collect(pending, deadline)
        return self

    def score_all(self, users, timeout: float | None = None) -> np.ndarray:
        """Raw scores of every real item, ``(B, num_items)`` (bit-identical
        to the serial engine on the same users)."""
        if self._serial is not None:
            return self._serial.score_all(users)
        users = self._as_user_array(users)
        return self._merge_matrix("score_all", users, None, timeout)

    def masked_scores(self, users, timeout: float | None = None) -> np.ndarray:
        """Scores with each user's seen items pushed to ``-inf``."""
        if self._serial is not None:
            return self._serial.masked_scores(users)
        users = self._as_user_array(users)
        return self._merge_matrix("masked_scores", users, None, timeout)

    @property
    def ann_index(self):
        """The shared ANN candidate index, or ``None`` (exact only)."""
        if self._serial is not None:
            return self._serial.ann_index
        return self._ann

    def top_k(self, users, k: int, exclude_seen: bool | None = None,
              timeout: float | None = None, mode: str | None = None,
              n_probe: int | None = None,
              candidate_multiplier: int | None = None) -> np.ndarray:
        """Ranked ids of the top-``k`` items per user, best first.

        ``mode`` / ``n_probe`` / ``candidate_multiplier`` select and
        tune the ANN candidate stage exactly as on the serial
        :meth:`~repro.serving.engine.ScoringEngine.top_k`; each worker
        serves its shard through the same attached index, so sharded
        ANN answers match the serial engine's on the same snapshot.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if self._serial is not None:
            return self._serial.top_k(users, k, exclude_seen=exclude_seen,
                                      mode=mode, n_probe=n_probe,
                                      candidate_multiplier=candidate_multiplier)
        users = self._as_user_array(users)
        width = min(k, self.num_items)
        out = np.empty((users.size, width), dtype=np.int64)
        if users.size == 0:
            return out
        for positions, rows in self._fan_out(
                "top_k", users,
                {"k": k, "exclude_seen": exclude_seen, "mode": mode,
                 "n_probe": n_probe,
                 "candidate_multiplier": candidate_multiplier},
                timeout):
            out[positions] = rows
        return out

    def top_k_scored(self, users, k: int, exclude_seen: bool | None = None,
                     timeout: float | None = None, mode: str | None = None,
                     n_probe: int | None = None,
                     candidate_multiplier: int | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`top_k` plus the (float64) scores of the returned items."""
        if k < 1:
            raise ValueError("k must be positive")
        if self._serial is not None:
            return self._serial.top_k_scored(
                users, k, exclude_seen=exclude_seen, mode=mode,
                n_probe=n_probe, candidate_multiplier=candidate_multiplier)
        users = self._as_user_array(users)
        width = min(k, self.num_items)
        ranked = np.empty((users.size, width), dtype=np.int64)
        scores = np.empty((users.size, width), dtype=np.float64)
        if users.size == 0:
            return ranked, scores
        for positions, payload in self._fan_out(
                "top_k_scored", users,
                {"k": k, "exclude_seen": exclude_seen, "mode": mode,
                 "n_probe": n_probe,
                 "candidate_multiplier": candidate_multiplier},
                timeout):
            ranked[positions] = payload[0]
            scores[positions] = payload[1]
        return ranked, scores

    def recommend(self, user: int, k: int = 10,
                  timeout: float | None = None) -> list:
        """Top-``k`` recommendations for one user."""
        return self.recommend_batch([user], k, timeout=timeout)[0]

    def recommend_batch(self, users, k: int = 10,
                        timeout: float | None = None) -> list[list]:
        """Top-``k`` :class:`~repro.serving.engine.Recommendation` lists.

        Workers build their shard's recommendation entries locally and
        only the ``k`` (item, score, rank) triples per user cross the
        process boundary — never the full score matrix.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if self._serial is not None:
            return self._serial.recommend_batch(users, k)
        users = self._as_user_array(users)
        results: list = [None] * users.size
        for positions, payload in self._fan_out("recommend_batch", users,
                                                {"k": k}, timeout):
            for position, recommendations in zip(positions, payload):
                results[int(position)] = recommendations
        return results

    def _merge_matrix(self, method: str, users: np.ndarray,
                      dtype, timeout: float | None = None) -> np.ndarray:
        if users.size == 0:
            return np.zeros((0, self.num_items), dtype=dtype or np.float64)
        parts = self._fan_out(method, users, None, timeout)
        first = parts[0][1]
        out = np.empty((users.size, self.num_items), dtype=first.dtype)
        for positions, rows in parts:
            out[positions] = rows
        return out

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers, join them and release the shared segment."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer.detach()
        _cleanup(self._arena, self._workers, self._task_queues,
                 self._result_queues)
        self._workers = []
        self._task_queues = []
        self._result_queues = []
        self._arena = None
        self._degraded_engine = None

    def __enter__(self) -> "ShardedScoringEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _cleanup(arena: SharedArena | None, workers: list, task_queues: list,
             result_queues: list = ()) -> None:
    """Shutdown path shared by close() and the GC finalizer.

    After an error a worker may still be flushing a large pending result
    into its queue, so the parent drains results while the sentinels
    propagate — otherwise the worker blocks at exit on a full pipe and
    ends up force-terminated.  Entries may be ``None`` (degraded shards
    have no worker/queue).
    """
    for queue in task_queues:
        if queue is None:
            continue
        try:
            queue.put(None)
        except Exception:
            pass
    live = [worker for worker in workers if worker is not None]
    deadline = 50  # ~10 s of 0.2 s drain rounds
    while deadline and any(worker.is_alive() for worker in live):
        drained = False
        for queue in result_queues:
            if queue is None:
                continue
            try:
                queue.get_nowait()
                drained = True
            except queue_module.Empty:
                continue
            except Exception:
                pass
        if not drained:
            time.sleep(0.2)
            deadline -= 1
    for worker in live:
        worker.join(timeout=1.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)
    for queue in list(task_queues) + list(result_queues):
        if queue is None:
            continue
        try:
            queue.cancel_join_thread()
            queue.close()
        except Exception:
            pass
    if arena is not None:
        arena.close()
