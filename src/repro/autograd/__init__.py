"""Minimal reverse-mode automatic differentiation over NumPy arrays.

The HAM paper implements its models in PyTorch.  PyTorch is not available
in this environment, so this subpackage provides the substrate the models
are built on: a small, well-tested autodiff engine with the tensor
operations, neural-network layers and optimizers the reproduction needs.

The public surface mirrors the shape of the PyTorch APIs the original code
relies on (tensors with ``.backward()``, ``Module``/``Parameter``,
``Embedding``/``Linear``/``LayerNorm`` layers, ``Adam``), so the model code
in :mod:`repro.models` reads like the original implementations.

Example
-------
>>> from repro.autograd import Tensor
>>> x = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 4.0], [6.0, 8.0]]
"""

from repro.autograd.dtype import (
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.autograd.sparse import IndexedRows, sparse_embedding_grads, sparse_grads_enabled
from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.module import Module, Parameter
from repro.autograd.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ModuleList,
    Sequential,
    embedding_index_check,
    index_check_enabled,
)
from repro.autograd.optim import SGD, Adagrad, Adam, Optimizer, clip_grad_norm
from repro.autograd import init
from repro.autograd.numeric import gradient_check

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Optimizer",
    "SGD",
    "Adam",
    "Adagrad",
    "clip_grad_norm",
    "init",
    "gradient_check",
    "resolve_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "IndexedRows",
    "sparse_embedding_grads",
    "sparse_grads_enabled",
    "embedding_index_check",
    "index_check_enabled",
]
