"""Neural-network layers built on the autograd substrate.

Only the layers the reproduction actually needs are provided: embeddings
(HAM's ``U``/``V``/``W`` lookup tables), linear layers and layer
normalization (SASRec blocks, HGN gates), dropout, and simple containers.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.module import Module, Parameter
from repro.autograd.sparse import IndexedRows
from repro.autograd.tensor import Tensor

__all__ = ["Embedding", "Linear", "LayerNorm", "Dropout", "Sequential", "ModuleList",
           "embedding_index_check", "index_check_enabled"]

_INDEX_CHECK = True


@contextlib.contextmanager
def embedding_index_check(enabled: bool):
    """Scope that enables/disables the per-lookup embedding range check.

    The ``indices.min()/max()`` validation in :meth:`Embedding.forward`
    is an O(batch) scan sitting inside the innermost training loop.  The
    trainer validates each instance array *once* up front and disables
    the per-lookup check for the epoch; interactive/debug code keeps the
    default-on safety net.
    """
    global _INDEX_CHECK
    previous = _INDEX_CHECK
    _INDEX_CHECK = bool(enabled)
    try:
        yield
    finally:
        _INDEX_CHECK = previous


def index_check_enabled() -> bool:
    """Whether embedding lookups currently validate their index range."""
    return _INDEX_CHECK


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Number of rows (e.g. number of items).
    embedding_dim:
        Dimensionality ``d`` of each row.
    rng:
        Random generator used to initialize the table.
    std:
        Standard deviation of the normal initializer; the HAM code uses
        small-variance normal initialization for all embedding tables.
    padding_idx:
        Optional row pinned to zero (used for sequence padding); its
        gradient is cleared after every backward pass by the optimizer
        hook in :meth:`apply_padding_mask`.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator, std: float = 0.01,
                 padding_idx: int | None = None):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = init.normal((num_embeddings, embedding_dim), rng, std=std)
        if padding_idx is not None:
            self.weight.data[padding_idx] = 0.0

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        # The range check is an O(batch) scan; inner training loops that
        # have already validated their index arrays disable it through
        # ``embedding_index_check(False)``.
        if _INDEX_CHECK and indices.size and (
                indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding indices out of range [0, {self.num_embeddings})"
            )
        return F.embedding(self.weight, indices)

    def apply_padding_mask(self) -> None:
        """Zero the padding row and its gradient (call after optimizer step)."""
        if self.padding_idx is None:
            return
        self.weight.data[self.padding_idx] = 0.0
        grad = self.weight.grad
        if grad is not None:
            if isinstance(grad, IndexedRows):
                grad.zero_rows(self.padding_idx)
            else:
                grad[self.padding_idx] = 0.0


class Linear(Module):
    """Affine transform ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((out_features, in_features), rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-8):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = init.ones((dim,))
        self.beta = init.zeros((dim,))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout layer; identity in evaluation mode."""

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.children_list = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.children_list:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.children_list)

    def __len__(self):
        return len(self.children_list)


class ModuleList(Module):
    """A list container whose elements are registered as sub-modules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self.children_list = list(modules or [])

    def append(self, module: Module) -> None:
        self.children_list.append(module)

    def __getitem__(self, index: int) -> Module:
        return self.children_list[index]

    def __iter__(self):
        return iter(self.children_list)

    def __len__(self):
        return len(self.children_list)
