"""Compute-dtype policy of the autograd substrate.

The seed engine hard-coded ``float64`` into every operation, which makes
the training hot path pay double memory bandwidth for no statistical
benefit — sequential recommenders train perfectly well in single
precision (the paper's PyTorch implementations run in ``float32``).

This module holds one process-wide *default* compute dtype used whenever
a tensor is created from non-float data (Python lists, ints, bools) and
by the parameter initializers.  Float arrays keep their own dtype, so a
``float32`` model stays ``float32`` end to end while legacy ``float64``
code is bit-for-bit unaffected.

The default stays ``float64`` at import time for backwards
compatibility; training opts into ``float32`` through
:class:`~repro.training.config.TrainingConfig` (whose ``dtype`` field
defaults to ``"float32"``) and :meth:`~repro.autograd.module.Module.astype`.
Benchmark tables that need bit-parity with the seed runs pin
``dtype="float64"``.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = [
    "resolve_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "FLOAT_DTYPES",
]

#: Compute dtypes the policy accepts.
FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float64)


def resolve_dtype(spec) -> np.dtype:
    """Normalize a dtype spec (None / str / numpy dtype) to a float dtype.

    ``None`` resolves to the current default; strings accept the numpy
    names (``"float32"``, ``"float64"``, ``"f4"``, ...).
    """
    if spec is None:
        return _DEFAULT_DTYPE
    dtype = np.dtype(spec)
    if dtype not in FLOAT_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {spec!r}; expected one of "
            f"{[d.name for d in FLOAT_DTYPES]}"
        )
    return dtype


def get_default_dtype() -> np.dtype:
    """The dtype non-float data is coerced to and initializers produce."""
    return _DEFAULT_DTYPE


def set_default_dtype(spec) -> np.dtype:
    """Set the process-wide default compute dtype; returns the previous one."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(spec)
    return previous


@contextlib.contextmanager
def default_dtype(spec):
    """Context manager scoping the default compute dtype.

    >>> with default_dtype("float32"):
    ...     model = HAM(...)   # parameters initialized in float32
    """
    previous = set_default_dtype(spec)
    try:
        yield get_default_dtype()
    finally:
        set_default_dtype(previous)
