"""Indexed (sparse) row gradients for embedding lookups.

The seed engine's ``take_rows`` backward scattered every lookup gradient
into a dense ``(num_rows, d)`` zeros matrix — for a recommender that is
one fresh ``num_items x d`` allocation per embedding table per batch,
even though a batch only touches a few hundred rows.

:class:`IndexedRows` is the sparse alternative: the looked-up indices
plus their gradient contributions.  It is *chunked* — accumulating two
indexed gradients (the same table looked up by several graph nodes, e.g.
HAM's high- and low-order lookups) appends a chunk instead of eagerly
scatter-adding, and :meth:`to_dense` densifies chunk by chunk in exactly
the order the dense path would have, so densification is bit-for-bit
identical to the legacy dense scatters.

:func:`~repro.autograd.tensor.Tensor.take_rows` emits ``IndexedRows``
for leaf parameters while the :func:`sparse_embedding_grads` context is
active; the optimizers in :mod:`repro.autograd.optim` consume the
:meth:`coalesce`-d form (sort + ``np.add.reduceat`` segment sum — far
cheaper than ``np.add.at``) so an update step also only touches the
looked-up rows.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["IndexedRows", "sparse_embedding_grads", "sparse_grads_enabled"]

_SPARSE_GRADS = False


@contextlib.contextmanager
def sparse_embedding_grads(enabled: bool = True):
    """Scope in which embedding lookups record indexed (sparse) gradients.

    Only *leaf* parameters are affected: a ``take_rows`` on a computed
    tensor keeps producing dense gradients, so interior graph nodes never
    see an :class:`IndexedRows`.
    """
    global _SPARSE_GRADS
    previous = _SPARSE_GRADS
    _SPARSE_GRADS = bool(enabled)
    try:
        yield
    finally:
        _SPARSE_GRADS = previous


def sparse_grads_enabled() -> bool:
    """Whether embedding lookups currently record sparse gradients."""
    return _SPARSE_GRADS


class IndexedRows:
    """Sparse gradient of a row table: chunks of (indices, row values).

    Parameters
    ----------
    indices:
        ``(N,)`` int64 array of looked-up row indices (duplicates allowed).
    rows:
        ``(N, *row_shape)`` gradient contribution of each lookup.
    shape:
        Shape of the dense table the gradient refers to
        (``(num_rows, *row_shape)``).
    """

    __slots__ = ("shape", "_chunks", "_coalesced")

    #: Opt out of NumPy's ufunc dispatch so ``ndarray + IndexedRows``
    #: falls back to :meth:`__radd__` instead of building object arrays.
    __array_ufunc__ = None

    def __init__(self, indices: np.ndarray, rows: np.ndarray, shape: tuple[int, ...]):
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        rows = np.asarray(rows)
        if rows.shape[0] != indices.shape[0]:
            raise ValueError(
                f"indices ({indices.shape[0]}) and rows ({rows.shape[0]}) disagree"
            )
        if rows.shape[1:] != tuple(shape[1:]):
            raise ValueError(
                f"row shape {rows.shape[1:]} does not match table shape {shape}"
            )
        self.shape = tuple(shape)
        self._chunks: list[tuple[np.ndarray, np.ndarray]] = [(indices, rows)]
        self._coalesced = False

    @classmethod
    def _from_chunks(cls, chunks: list[tuple[np.ndarray, np.ndarray]],
                     shape: tuple[int, ...]) -> "IndexedRows":
        out = cls.__new__(cls)
        out.shape = tuple(shape)
        out._chunks = chunks
        out._coalesced = False
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def indices(self) -> np.ndarray:
        """All looked-up indices (concatenated across chunks)."""
        if len(self._chunks) == 1:
            return self._chunks[0][0]
        return np.concatenate([idx for idx, _ in self._chunks])

    @property
    def rows(self) -> np.ndarray:
        """All row contributions (concatenated across chunks)."""
        if len(self._chunks) == 1:
            return self._chunks[0][1]
        return np.concatenate([rows for _, rows in self._chunks])

    @property
    def dtype(self):
        return self._chunks[0][1].dtype

    @property
    def nnz(self) -> int:
        """Number of stored (possibly duplicate) row contributions."""
        return int(sum(idx.shape[0] for idx, _ in self._chunks))

    def __repr__(self) -> str:
        return (f"IndexedRows(nnz={self.nnz}, chunks={len(self._chunks)}, "
                f"shape={self.shape})")

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def coalesce(self) -> "IndexedRows":
        """Unique indices with duplicate contributions segment-summed.

        Implemented as sort + ``np.add.reduceat`` rather than
        ``np.add.at`` (whose per-element ufunc dispatch would cost nearly
        as much as the dense scatter this class exists to avoid).  The
        result owns fresh arrays, so in-place scaling (gradient clipping,
        learning-rate application) cannot alias graph buffers.  Already
        coalesced gradients (e.g. stored back by clip_grad_norm) are
        returned as-is.
        """
        if self._coalesced:
            return self
        indices = self.indices
        rows = self.rows
        if indices.shape[0] == 0:
            out = IndexedRows(indices, np.array(rows, copy=True), self.shape)
            out._coalesced = True
            return out
        order = np.argsort(indices, kind="stable")
        sorted_indices = indices[order]
        boundaries = np.empty(sorted_indices.shape[0], dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_indices[1:], sorted_indices[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        unique = sorted_indices[starts]
        summed = np.add.reduceat(rows[order], starts, axis=0)
        out = IndexedRows(unique, summed, self.shape)
        out._coalesced = True
        return out

    def to_dense(self) -> np.ndarray:
        """Densify into the full table shape.

        Each chunk is scattered into its own zeros matrix and the
        matrices are then summed — the exact association order of the
        legacy dense path, hence bit-for-bit equivalence.
        """
        first_idx, first_rows = self._chunks[0]
        dense = np.zeros(self.shape, dtype=first_rows.dtype)
        np.add.at(dense, first_idx, first_rows)
        for idx, rows in self._chunks[1:]:
            chunk_dense = np.zeros(self.shape, dtype=rows.dtype)
            np.add.at(chunk_dense, idx, rows)
            dense = dense + chunk_dense
        return dense

    # ------------------------------------------------------------------ #
    # Gradient algebra (used by the backward accumulation loop)
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        if isinstance(other, IndexedRows):
            if other.shape != self.shape:
                raise ValueError("cannot add IndexedRows of different table shapes")
            return IndexedRows._from_chunks(self._chunks + other._chunks, self.shape)
        return np.array(other, copy=True) + self.to_dense()

    def __radd__(self, other):
        if isinstance(other, IndexedRows):
            return other.__add__(self)
        # dense + sparse: dense came first in accumulation order.
        return np.array(other, copy=True) + self.to_dense()

    def zero_rows(self, index: int) -> None:
        """Zero every contribution targeting ``index`` (padding rows)."""
        for idx, rows in self._chunks:
            rows[idx == index] = 0.0

    def scale_(self, factor: float) -> None:
        """Scale every contribution in place (gradient clipping)."""
        for _, rows in self._chunks:
            rows *= factor

    def sum_of_squares(self) -> float:
        """``sum(grad ** 2)`` of the equivalent dense gradient."""
        coalesced = self.coalesce()
        flat = coalesced.rows.reshape(-1)
        return float(flat @ flat)
