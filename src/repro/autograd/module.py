"""``Module``/``Parameter`` abstraction, mirroring ``torch.nn.Module``.

Models register :class:`Parameter` attributes and sub-modules simply by
assigning them; :meth:`Module.parameters` walks the tree so optimizers and
regularizers can reach every learnable tensor.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd.dtype import resolve_dtype
from repro.autograd.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable model parameter.

    Parameters always require gradients; optimizers update them in place.
    """

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for models and layers.

    Sub-classes assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__``; this base class discovers them by introspection, provides
    parameter iteration, gradient zeroing, train/eval switching and a simple
    ``state_dict`` for saving/restoring weights (used by the trainer to keep
    the best-on-validation model).
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------ #
    # Parameter discovery
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and children."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, element in enumerate(value):
                    if isinstance(element, Parameter):
                        yield f"{name}.{i}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all learnable parameters of the module tree."""
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(name, module)`` pairs, including ``self``."""
        yield prefix.rstrip("."), self
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, element in enumerate(value):
                    if isinstance(element, Module):
                        yield from element.named_modules(prefix=f"{name}.{i}.")

    # ------------------------------------------------------------------ #
    # Training utilities
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear the gradient of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout)."""
        for _, module in self.named_modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return int(sum(param.size for param in self.parameters()))

    def astype(self, dtype) -> "Module":
        """Cast every float parameter to ``dtype`` in place (returns self).

        This is how a model opts into the ``float32`` compute path: once
        the parameters are single precision, every forward/backward op
        stays single precision (see :mod:`repro.autograd.dtype`).
        Gradients and their buffers are dropped so stale double-precision
        arrays cannot leak into the next optimizer step.
        """
        dtype = resolve_dtype(dtype)
        for _, param in self.named_parameters():
            if param.data.dtype.kind == "f" and param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
                param.grad = None
                param._grad_buffer = None
        return self

    def compute_dtype(self):
        """Dtype of the first float parameter (None for count-based models)."""
        for _, param in self.named_parameters():
            if param.data.dtype.kind == "f":
                return param.data.dtype
        return None

    # ------------------------------------------------------------------ #
    # State persistence
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy every parameter's data, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`.

        Raises ``KeyError`` for missing entries and ``ValueError`` on shape
        mismatches, so silent weight corruption is impossible.
        """
        own = dict(self.named_parameters())
        for name, param in own.items():
            if name not in state:
                raise KeyError(f"missing parameter in state_dict: {name}")
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
