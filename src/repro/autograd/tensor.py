"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The engine is deliberately small: a :class:`Tensor` wraps a ``numpy``
array, remembers the tensors it was computed from and a closure that
propagates gradients to them.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients.

Broadcasting is supported for the element-wise operations; gradients of
broadcast operands are reduced back to the operand's shape with
:func:`_unbroadcast`.

Dtype policy
------------
Float arrays keep their dtype through every operation, so a model cast to
``float32`` computes and accumulates gradients in ``float32``; non-float
inputs (Python scalars, lists, int arrays) are coerced to the policy
default of :mod:`repro.autograd.dtype` (``float64`` unless changed).
Scalars appearing in arithmetic adopt the tensor's dtype so constants
never silently upcast a single-precision graph.

Gradient accumulation is in place: each leaf owns a persistent gradient
buffer that is filled with ``copyto``/``+=`` instead of re-allocating
``np.array(copy=True)`` on every backward pass.  Embedding lookups
(:meth:`take_rows`) can record sparse :class:`~repro.autograd.sparse.IndexedRows`
gradients when :func:`~repro.autograd.sparse.sparse_embedding_grads` is
active.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.autograd.dtype import get_default_dtype
from repro.autograd.sparse import IndexedRows, sparse_grads_enabled

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used for evaluation/scoring passes where gradients are not needed;
    operations executed inside the block produce tensors detached from the
    autograd graph.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether new operations are currently recorded in the graph."""
    return _GRAD_ENABLED


def _as_array(value, dtype=None) -> np.ndarray:
    """Coerce ``value`` (scalar, list, ndarray or Tensor) to an ndarray."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after broadcasting.

    NumPy broadcasting may have expanded an operand along leading axes or
    along axes of size 1.  The gradient of the broadcast result with respect
    to that operand is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _broadcast_grad(grad: np.ndarray, shape: tuple[int, ...], dtype) -> np.ndarray:
    """Broadcast ``grad`` to ``shape`` without copying unless a cast is needed.

    The result may be a read-only view; every consumer either reads it or
    copies into its own buffer, so the view is safe and saves one full
    allocation per reduction backward.
    """
    grad = np.broadcast_to(grad, shape)
    if grad.dtype != dtype:
        grad = grad.astype(dtype)
    return grad


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Float arrays keep their dtype; everything
        else is coerced to the policy default
        (:func:`repro.autograd.dtype.get_default_dtype`, ``float64``
        unless changed) or to an explicitly passed ``dtype``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward",
                 "_grad_buffer", "name")

    def __init__(self, data, requires_grad: bool = False, *, dtype=None, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        if dtype is None:
            array = np.asarray(data)
            if array.dtype.kind != "f":
                array = array.astype(get_default_dtype())
            self.data = array
        else:
            self.data = np.asarray(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | IndexedRows | None = None
        self._grad_buffer: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], None] | None = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def tolist(self):
        return self.data.tolist()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient (the buffer is kept for reuse)."""
        self.grad = None

    def _coerce(self, other) -> "Tensor":
        """Wrap a non-Tensor operand, matching this tensor's float dtype.

        Python scalars would otherwise become 0-d ``float64`` arrays and
        NumPy would upcast the whole expression, silently dragging a
        ``float32`` graph back to double precision.
        """
        if isinstance(other, Tensor):
            return other
        if np.isscalar(other) and self.data.dtype.kind == "f":
            return Tensor(other, dtype=self.data.dtype)
        return Tensor(other)

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"],
                    backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an output tensor wired to its parents when grad is enabled."""
        tracked = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=tracked, dtype=data.dtype)
        if tracked:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad) -> None:
        if not self.requires_grad:
            return
        if isinstance(grad, IndexedRows):
            # IndexedRows.__add__/__radd__ handle sparse+sparse (chunk
            # append) and dense+sparse (densify) accumulation.
            self.grad = grad if self.grad is None else self.grad + grad
            return
        if isinstance(self.grad, IndexedRows):
            self.grad = self.grad + grad
            return
        if self.grad is None:
            buffer = self._grad_buffer
            if (buffer is None or buffer.shape != self.data.shape
                    or buffer.dtype != self.data.dtype):
                buffer = self._grad_buffer = np.empty_like(self.data)
            np.copyto(buffer, grad)
            self.grad = buffer
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only "
                    "supported for scalar tensors"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape)

        # Topological order of the graph rooted at ``self``.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(node_grad)
            if node._backward is not None:
                contributions = node._backward(node_grad)
                for parent, contribution in zip(node._parents, contributions):
                    if contribution is None:
                        continue
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + contribution
                    else:
                        grads[key] = contribution

    # ------------------------------------------------------------------ #
    # Element-wise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other_t = self._coerce(other)
        data = self.data + other_t.data

        def backward(grad):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other_t.shape),
            )

        return self._make_child(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad):
            return (-grad,)

        return self._make_child(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other_t = self._coerce(other)
        data = self.data - other_t.data

        def backward(grad):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other_t.shape),
            )

        return self._make_child(data, (self, other_t), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other_t = self._coerce(other)
        data = self.data * other_t.data
        self_data, other_data = self.data, other_t.data

        def backward(grad):
            return (
                _unbroadcast(grad * other_data, self.shape),
                _unbroadcast(grad * self_data, other_t.shape),
            )

        return self._make_child(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other_t = self._coerce(other)
        data = self.data / other_t.data
        self_data, other_data = self.data, other_t.data

        def backward(grad):
            return (
                _unbroadcast(grad / other_data, self.shape),
                _unbroadcast(-grad * self_data / (other_data ** 2), other_t.shape),
            )

        return self._make_child(data, (self, other_t), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data ** exponent
        base = self.data

        def backward(grad):
            return (grad * exponent * base ** (exponent - 1),)

        return self._make_child(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparison (detached, no gradient)
    # ------------------------------------------------------------------ #
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return (grad * data,)

        return self._make_child(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)
        source = self.data

        def backward(grad):
            return (grad / source,)

        return self._make_child(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / data,)

        return self._make_child(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad):
            return (grad * sign,)

        return self._make_child(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return self._make_child(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - data ** 2),)

        return self._make_child(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad):
            return (grad * mask,)

        return self._make_child(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return self._make_child(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.shape
        dtype = self.data.dtype

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                return (_broadcast_grad(grad, input_shape, dtype),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                grad = np.expand_dims(grad, tuple(a % len(input_shape) for a in axes))
            return (_broadcast_grad(grad, input_shape, dtype),)

        return self._make_child(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Maximum along ``axis``; ties share the gradient equally."""
        data = self.data.max(axis=axis, keepdims=keepdims)
        source = self.data
        dtype = self.data.dtype

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                mask = (source == source.max()).astype(dtype)
                mask /= mask.sum()
                return (mask * grad,)
            expanded_max = source.max(axis=axis, keepdims=True)
            mask = (source == expanded_max).astype(dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            if not keepdims:
                grad = np.expand_dims(grad, axis)
            return (mask * grad,)

        return self._make_child(data, (self,), backward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Linear algebra and shape manipulation
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data
        a, b = self.data, other_t.data

        def backward(grad):
            if a.ndim == 2 and b.ndim == 2:
                return (grad @ b.T, a.T @ grad)
            # Batched matmul: contract over the batch dimensions.
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (
                _unbroadcast(grad_a, self.shape),
                _unbroadcast(grad_b, other_t.shape),
            )

        return self._make_child(data, (self, other_t), backward)

    __matmul__ = matmul

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return self._make_child(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            return (grad.reshape(original),)

        return self._make_child(data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad):
            return (np.squeeze(grad, axis=axis),)

        return self._make_child(data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        data = np.squeeze(self.data, axis=axis)

        def backward(grad):
            return (np.expand_dims(grad, axis),)

        return self._make_child(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        input_shape = self.shape
        dtype = self.data.dtype

        def backward(grad):
            full = np.zeros(input_shape, dtype=dtype)
            np.add.at(full, index, grad)
            return (full,)

        return self._make_child(data, (self,), backward)

    def take_rows(self, indices) -> "Tensor":
        """Gather rows (first-axis indexing), e.g. an embedding lookup.

        ``indices`` may be any integer array; the result has shape
        ``indices.shape + self.shape[1:]``.  The backward pass scatter-adds
        gradients into the source rows, matching ``torch.nn.Embedding`` —
        unless :func:`~repro.autograd.sparse.sparse_embedding_grads` is
        active and this tensor is a leaf, in which case the gradient is
        recorded as an :class:`~repro.autograd.sparse.IndexedRows` and no
        dense ``(num_rows, d)`` matrix is ever materialized.
        """
        idx = np.asarray(indices, dtype=np.int64)
        data = self.data[idx]
        input_shape = self.shape
        dtype = self.data.dtype
        # Only leaves may receive sparse gradients: interior nodes feed
        # their gradient into another backward closure that expects a
        # dense array.
        emit_sparse = (sparse_grads_enabled() and self.requires_grad
                       and self._backward is None)

        def backward(grad):
            rows = np.asarray(grad).reshape(-1, *input_shape[1:])
            if emit_sparse:
                # The copy gives the sparse gradient its own memory: the
                # incoming grad may be a read-only broadcast view or an
                # array shared with another parent's backward, and
                # IndexedRows mutates rows in place (zero_rows, clipping).
                return (IndexedRows(idx.reshape(-1), np.array(rows, copy=True),
                                    input_shape),)
            full = np.zeros(input_shape, dtype=dtype)
            np.add.at(full, idx.reshape(-1), rows)
            return (full,)

        return self._make_child(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Factory helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype or get_default_dtype()),
                      requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype or get_default_dtype()),
                      requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None,
              scale: float = 1.0, requires_grad: bool = False, dtype=None) -> "Tensor":
        rng = rng or np.random.default_rng()
        values = rng.normal(0.0, scale, size=shape)
        return Tensor(values.astype(dtype or get_default_dtype(), copy=False),
                      requires_grad=requires_grad)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(grad):
            return tuple(np.split(grad, splits, axis=axis))

        ref = tensors[0]
        return ref._make_child(data, tensors, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            moved = np.moveaxis(grad, axis, 0)
            return tuple(moved[i] for i in range(len(tensors)))

        ref = tensors[0]
        return ref._make_child(data, tensors, backward)
