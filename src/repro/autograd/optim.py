"""Optimizers for the autograd substrate.

The paper optimizes every model with Adam (learning rate 1e-3) and an L2
regularization factor applied to all embeddings; the regularization is
implemented here as decoupled weight decay so that model code does not have
to thread the penalty through each loss expression.

Two hot-path properties:

* **In-place steps.**  Every optimizer keeps preallocated moment /
  velocity state plus a scratch buffer per parameter and updates with
  ``out=``-style ufuncs, so a step allocates nothing proportional to the
  model size.
* **Sparse-aware steps.**  When a parameter's gradient is an
  :class:`~repro.autograd.sparse.IndexedRows` (embedding lookups under
  :func:`~repro.autograd.sparse.sparse_embedding_grads`), only the
  looked-up rows of the parameter — and of its optimizer state — are
  touched ("lazy" updates, like ``torch.optim.SparseAdam``).  Weight
  decay is then also applied lazily to just those rows.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.module import Parameter
from repro.autograd.sparse import IndexedRows

__all__ = ["Optimizer", "SGD", "Adam", "Adagrad", "clip_grad_norm"]


class Optimizer:
    """Base optimizer holding a parameter list and common bookkeeping."""

    def __init__(self, params: list[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.weight_decay = weight_decay
        self._scratch: list[np.ndarray | None] = [None] * len(self.params)

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if isinstance(grad, IndexedRows):
                coalesced = grad.coalesce()
                rows = coalesced.rows
                if self.weight_decay:
                    rows = rows + self.weight_decay * param.data[coalesced.indices]
                self._sparse_step(index, param, coalesced.indices, rows)
            else:
                self._dense_step(index, param, grad)

    # ------------------------------------------------------------------ #
    # Hooks implemented by concrete optimizers
    # ------------------------------------------------------------------ #
    def _dense_step(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def _sparse_step(self, index: int, param: Parameter, indices: np.ndarray,
                     rows: np.ndarray) -> None:
        """Update only ``param.data[indices]``; ``rows`` already includes
        (lazy) weight decay."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Buffer management
    # ------------------------------------------------------------------ #
    def _scratch_for(self, index: int, param: Parameter) -> np.ndarray:
        scratch = self._scratch[index]
        if (scratch is None or scratch.shape != param.data.shape
                or scratch.dtype != param.data.dtype):
            scratch = self._scratch[index] = np.empty_like(param.data)
        return scratch

    def _state_for(self, buffers: list, index: int, param: Parameter) -> np.ndarray:
        """Moment/velocity buffer for ``param``, reallocated if the
        parameter was re-shaped or cast (e.g. ``Module.astype``) after the
        optimizer was constructed."""
        state = buffers[index]
        if state.shape != param.data.shape or state.dtype != param.data.dtype:
            state = buffers[index] = np.zeros_like(param.data)
        return state

    def _decayed(self, index: int, param: Parameter, grad: np.ndarray) -> np.ndarray:
        """Dense gradient plus the L2 weight-decay term, in the scratch buffer."""
        if not self.weight_decay:
            return grad
        scratch = self._scratch_for(index, param)
        np.multiply(param.data, param.data.dtype.type(self.weight_decay), out=scratch)
        scratch += grad
        return scratch


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    The sparse path requires ``momentum == 0`` (a velocity is inherently
    dense); with momentum the indexed gradient is densified first.
    """

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _dense_step(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        grad = self._decayed(index, param, grad)
        if self.momentum:
            velocity = self._state_for(self._velocity, index, param)
            velocity *= self.momentum
            velocity += grad
            update = velocity
        else:
            update = grad
        if update is self._scratch[index]:
            update *= self.lr
            param.data -= update
        else:
            scratch = self._scratch_for(index, param)
            np.multiply(update, param.data.dtype.type(self.lr), out=scratch)
            param.data -= scratch

    def _sparse_step(self, index: int, param: Parameter, indices: np.ndarray,
                     rows: np.ndarray) -> None:
        if self.momentum:
            # Momentum couples every row across steps; densify and run the
            # velocity update directly.  ``rows`` already carries the
            # (lazy) weight decay, so _decayed must NOT run again here.
            dense = IndexedRows(indices, rows, param.data.shape).to_dense()
            velocity = self._state_for(self._velocity, index, param)
            velocity *= self.momentum
            velocity += dense
            scratch = self._scratch_for(index, param)
            np.multiply(velocity, param.data.dtype.type(self.lr), out=scratch)
            param.data -= scratch
            return
        param.data[indices] -= self.lr * rows


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014), the paper's optimizer of choice.

    Indexed gradients take the "lazy Adam" path: moments and parameters
    are only advanced for the looked-up rows.
    """

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._update_buf: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        self._step_count += 1
        super().step()

    def _bias_corrections(self) -> tuple[float, float]:
        t = self._step_count
        return 1.0 - self.beta1 ** t, 1.0 - self.beta2 ** t

    def _dense_step(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        bias1, bias2 = self._bias_corrections()
        grad = self._decayed(index, param, grad)
        m = self._state_for(self._m, index, param)
        v = self._state_for(self._v, index, param)
        buf = self._update_buf[index]
        if buf is None or buf.shape != param.data.shape or buf.dtype != param.data.dtype:
            buf = self._update_buf[index] = np.empty_like(param.data)

        dtype = param.data.dtype.type
        # Every ufunc below reproduces the seed engine's expression order
        # exactly (multiplication/addition operand order only differs
        # where IEEE arithmetic is bitwise commutative), so a float64 run
        # with dense gradients is bit-identical to the seed trainer.
        # m = beta1 * m + (1 - beta1) * grad
        m *= dtype(self.beta1)
        np.multiply(grad, dtype(1.0 - self.beta1), out=buf)
        m += buf
        # v = beta2 * v + ((1 - beta2) * grad) * grad
        v *= dtype(self.beta2)
        np.multiply(grad, dtype(1.0 - self.beta2), out=buf)
        buf *= grad
        v += buf
        # param -= (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
        np.divide(v, dtype(bias2), out=buf)
        np.sqrt(buf, out=buf)
        buf += dtype(self.eps)
        numerator = self._scratch_for(index, param)
        np.divide(m, dtype(bias1), out=numerator)
        numerator *= dtype(self.lr)
        numerator /= buf
        param.data -= numerator

    def _sparse_step(self, index: int, param: Parameter, indices: np.ndarray,
                     rows: np.ndarray) -> None:
        bias1, bias2 = self._bias_corrections()
        m = self._state_for(self._m, index, param)
        v = self._state_for(self._v, index, param)
        m_rows = m[indices]
        m_rows *= self.beta1
        m_rows += (1.0 - self.beta1) * rows
        m[indices] = m_rows
        v_rows = v[indices]
        v_rows *= self.beta2
        v_rows += (1.0 - self.beta2) * rows * rows
        v[indices] = v_rows
        denom = np.sqrt(v_rows / bias2)
        denom += self.eps
        param.data[indices] -= (self.lr / bias1) * m_rows / denom


class Adagrad(Optimizer):
    """Adagrad optimizer, offered for completeness in the grid-search space."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 eps: float = 1e-10, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def _dense_step(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        grad = self._decayed(index, param, grad)
        accum = self._state_for(self._accum, index, param)
        accum += grad * grad
        param.data -= self.lr * grad / (np.sqrt(accum) + self.eps)

    def _sparse_step(self, index: int, param: Parameter, indices: np.ndarray,
                     rows: np.ndarray) -> None:
        accum = self._state_for(self._accum, index, param)
        accum_rows = accum[indices]
        accum_rows += rows * rows
        accum[indices] = accum_rows
        param.data[indices] -= self.lr * rows / (np.sqrt(accum_rows) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm observed *before* clipping (useful for logging).
    Parameters without a gradient are skipped.  Indexed (sparse)
    gradients are coalesced in place — duplicate lookups of the same row
    must be summed before the norm is meaningful — and then scaled like
    any dense gradient.

    The squared norm is accumulated with a dot product (no ``grad*grad``
    temporary); its reduction order may differ from the seed's
    ``np.sum`` in the final bit, which only matters on steps where the
    clip actually fires.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads: list[np.ndarray | IndexedRows] = []
    for param in params:
        grad = param.grad
        if grad is None:
            continue
        if isinstance(grad, IndexedRows):
            # Coalescing copies (and is memoized), so the scale below
            # cannot alias a graph buffer; store back so the optimizer
            # sees the scaled rows without re-coalescing.
            grad = grad.coalesce()
            param.grad = grad
            flat = grad.rows.reshape(-1)
        else:
            flat = grad.reshape(-1)
        grads.append(grad)
        total += float(flat @ flat)
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for grad in grads:
            if isinstance(grad, IndexedRows):
                grad.scale_(scale)
            else:
                grad *= scale
    return norm
