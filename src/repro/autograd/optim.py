"""Optimizers for the autograd substrate.

The paper optimizes every model with Adam (learning rate 1e-3) and an L2
regularization factor applied to all embeddings; the regularization is
implemented here as decoupled weight decay so that model code does not have
to thread the penalty through each loss expression.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "Adagrad", "clip_grad_norm"]


class Optimizer:
    """Base optimizer holding a parameter list and common bookkeeping."""

    def __init__(self, params: list[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _effective_grad(self, param: Parameter) -> np.ndarray | None:
        """Gradient plus the L2 weight-decay term, or None if no gradient."""
        if param.grad is None:
            return None
        if self.weight_decay:
            return param.grad + self.weight_decay * param.data
        return param.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014), the paper's optimizer of choice."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.params, self._m, self._v):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class Adagrad(Optimizer):
    """Adagrad optimizer, offered for completeness in the grid-search space."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 eps: float = 1e-10, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, accum in zip(self.params, self._accum):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            accum += grad * grad
            param.data -= self.lr * grad / (np.sqrt(accum) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm observed *before* clipping (useful for logging).
    Parameters without a gradient are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads = [param.grad for param in params if param.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm
