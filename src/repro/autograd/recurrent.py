"""Recurrent layers (GRU) for the extended baseline set.

The paper's literature review compares against RNN-based recommenders
(GRU4Rec and variants) indirectly — HGN was shown to outperform them, so
the paper only reports HGN.  A GRU layer is provided here so the
reproduction can also run a GRU4Rec-style baseline as an extension.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.module import Module
from repro.autograd.tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single gated recurrent unit cell (Cho et al., 2014).

    ``h' = (1 - z) * h + z * tanh(W_n x + b_n + r * (U_n h))`` with update
    gate ``z`` and reset gate ``r`` computed from the input and the
    previous hidden state.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError("input_dim and hidden_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Gate parameters: one input->hidden and one hidden->hidden matrix
        # per gate (update z, reset r, candidate n), plus biases.
        self.weight_input = init.xavier_uniform((input_dim, 3 * hidden_dim), rng)
        self.weight_hidden = init.xavier_uniform((hidden_dim, 3 * hidden_dim), rng)
        self.bias = init.zeros((3 * hidden_dim,))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """One step: inputs ``x`` of shape ``(B, input_dim)``, state ``(B, hidden_dim)``."""
        gates_input = x.matmul(self.weight_input) + self.bias       # (B, 3H)
        gates_hidden = hidden.matmul(self.weight_hidden)            # (B, 3H)
        H = self.hidden_dim
        update = F.sigmoid(gates_input[:, 0:H] + gates_hidden[:, 0:H])
        reset = F.sigmoid(gates_input[:, H:2 * H] + gates_hidden[:, H:2 * H])
        candidate = F.tanh(gates_input[:, 2 * H:3 * H] + reset * gates_hidden[:, 2 * H:3 * H])
        return (1.0 - update) * hidden + update * candidate


class GRU(Module):
    """Unidirectional GRU over a ``(B, L, input_dim)`` sequence.

    Returns the hidden state at every position ``(B, L, hidden_dim)``;
    padded positions can be masked out by the caller (the hidden state is
    simply carried through them unchanged when a mask is supplied).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(self, sequence: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch, length, _ = sequence.shape
        hidden = Tensor(np.zeros((batch, self.hidden_dim), dtype=sequence.dtype))
        outputs = []
        for position in range(length):
            step_input = sequence[:, position, :]
            new_hidden = self.cell(step_input, hidden)
            if mask is not None:
                keep = Tensor(mask[:, position].astype(new_hidden.dtype)[:, None])
                new_hidden = new_hidden * keep + hidden * (1.0 - keep)
            hidden = new_hidden
            outputs.append(hidden)
        return Tensor.stack(outputs, axis=1)

    def final_state(self, sequence: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Hidden state after the last (real) position, shape ``(B, hidden_dim)``."""
        return self.forward(sequence, mask)[:, -1, :]
