"""Weight initialization schemes.

The HAM paper initializes embedding tables with small random values; the
baselines additionally use Xavier/Glorot initialization for dense layers.
All initializers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.dtype import get_default_dtype
from repro.autograd.module import Parameter


def _as_param(values: np.ndarray) -> Parameter:
    """Wrap initializer output, cast to the policy compute dtype."""
    return Parameter(np.asarray(values).astype(get_default_dtype(), copy=False))

__all__ = [
    "normal",
    "uniform",
    "xavier_uniform",
    "xavier_normal",
    "zeros",
    "ones",
    "constant",
]


def normal(shape: tuple[int, ...], rng: np.random.Generator,
           std: float = 0.01, mean: float = 0.0) -> Parameter:
    """Parameter drawn from N(mean, std^2)."""
    return _as_param(rng.normal(mean, std, size=shape))


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            low: float = -0.05, high: float = 0.05) -> Parameter:
    """Parameter drawn uniformly from [low, high)."""
    return _as_param(rng.uniform(low, high, size=shape))


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> Parameter:
    """Glorot uniform initialization."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _as_param(rng.uniform(-bound, bound, size=shape))


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> Parameter:
    """Glorot normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return _as_param(rng.normal(0.0, std, size=shape))


def zeros(shape: tuple[int, ...]) -> Parameter:
    """All-zeros parameter (typical for biases)."""
    return Parameter(np.zeros(shape, dtype=get_default_dtype()))


def ones(shape: tuple[int, ...]) -> Parameter:
    """All-ones parameter (typical for layer-norm scales)."""
    return Parameter(np.ones(shape, dtype=get_default_dtype()))


def constant(shape: tuple[int, ...], value: float) -> Parameter:
    """Parameter filled with ``value``."""
    return Parameter(np.full(shape, float(value), dtype=get_default_dtype()))
