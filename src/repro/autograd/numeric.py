"""Numerical gradient checking.

Used by the test suite to verify the autograd engine and the model forward
passes against central finite differences, which is the strongest evidence
that the NumPy substrate computes the same gradients PyTorch would.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["numerical_gradient", "gradient_check"]


def numerical_gradient(func: Callable[[], Tensor], tensor: Tensor,
                       epsilon: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``func()`` w.r.t. ``tensor``.

    ``func`` must return a scalar Tensor and must read ``tensor.data`` at
    call time (so perturbing the data changes the output).
    """
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = float(func().data)
        flat[i] = original - epsilon
        lower = float(func().data)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * epsilon)
    return grad


def gradient_check(func: Callable[[], Tensor], tensors: list[Tensor],
                   epsilon: float = 1e-6, atol: float = 1e-4,
                   rtol: float = 1e-3) -> bool:
    """Compare autograd gradients of ``func`` with finite differences.

    Parameters
    ----------
    func:
        Zero-argument callable returning a scalar :class:`Tensor`; it is
        re-evaluated many times, so keep inputs small.
    tensors:
        Leaf tensors (``requires_grad=True``) whose gradients are checked.

    Returns
    -------
    bool
        True when every analytic gradient matches the numerical one within
        the given tolerances; raises ``AssertionError`` with a diagnostic
        message otherwise.
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = func()
    output.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, tensor, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for tensor #{index}: "
                f"max abs difference {worst:.3e}"
            )
    return True
