"""Functional operations composed from :class:`~repro.autograd.tensor.Tensor` primitives.

These helpers mirror the ``torch.nn.functional`` operations the original
HAM/Caser/SASRec/HGN implementations rely on.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "logsigmoid",
    "sigmoid",
    "tanh",
    "relu",
    "dropout",
    "embedding",
    "mean_pool",
    "max_pool",
    "masked_fill",
    "scaled_dot_product_attention",
]


def sigmoid(x: Tensor) -> Tensor:
    """Element-wise logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Element-wise hyperbolic tangent."""
    return x.tanh()


def relu(x: Tensor) -> Tensor:
    """Element-wise rectified linear unit."""
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax, computed stably."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def logsigmoid(x: Tensor) -> Tensor:
    """``log(sigmoid(x))`` computed without overflow.

    Implemented as a primitive (``-logaddexp(0, -x)``) with the exact
    gradient ``1 - sigmoid(x)``, so the BPR loss is smooth even when the
    positive and negative scores coincide exactly.
    """
    data = -np.logaddexp(0.0, -x.data)
    sigmoid_x = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60.0, 60.0)))

    def backward(grad):
        return (grad * (1.0 - sigmoid_x),)

    return x._make_child(data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool = True,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: zero each element with probability ``p``.

    Identity when ``training`` is false or ``p`` is 0.
    """
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    # The mask matches x's dtype so dropout never upcasts a float32 graph.
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / x.dtype.type(1.0 - p)
    return x * Tensor(mask)


def embedding(weight: Tensor, indices) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices``."""
    return weight.take_rows(indices)


def mean_pool(x: Tensor, axis: int = 1) -> Tensor:
    """Mean pooling along ``axis`` (HAM Eq. 1, mean variant)."""
    return x.mean(axis=axis)


def max_pool(x: Tensor, axis: int = 1) -> Tensor:
    """Max pooling along ``axis`` (HAM Eq. 1, max variant)."""
    return x.max(axis=axis)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is true with ``value`` (no gradient
    flows through the replaced entries)."""
    mask = np.asarray(mask, dtype=bool)
    keep = Tensor((~mask).astype(x.dtype))
    fill = Tensor(mask.astype(x.dtype) * x.dtype.type(value))
    return x * keep + fill


def scaled_dot_product_attention(query: Tensor, key: Tensor, value: Tensor,
                                 mask: np.ndarray | None = None) -> Tensor:
    """Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V.

    Parameters
    ----------
    query, key, value:
        Tensors of shape ``(..., L, d)``.
    mask:
        Optional boolean array broadcastable to ``(..., L, L)``; positions
        where the mask is true are excluded from attention (set to -inf
        before the softmax).
    """
    d = query.shape[-1]
    scores = query.matmul(key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    if mask is not None:
        scores = masked_fill(scores, mask, -1e9)
    weights = softmax(scores, axis=-1)
    return weights.matmul(value)
