"""Command-line interface of the reproduction.

Usage examples::

    repro-ham list                       # list all reproducible experiments
    repro-ham stats                      # Table 2 dataset statistics
    repro-ham run table3 --scale tiny    # reproduce one table/figure
    repro-ham train --dataset cds --method HAMs_m --setting 80-20-CUT
    repro-ham serve --dataset cds --users 0 1 2 --k 10
    repro-ham serve --checkpoint model.npz --workers 4 --users 0 1 2
    repro-ham serve --dataset cds --gateway --max-batch 32 --max-wait-ms 2 \
              --cache-size 256 --cache-ttl 30 --users 0 1 2
    repro-ham serve --dataset cds --workers 4 --request-timeout 5 \
              --gateway --max-queue 256 --users 0 1 2
    repro-ham serve-node --checkpoint model.npz --bind 127.0.0.1:7001
    repro-ham serve-node --checkpoint model.npz --journal /var/lib/ham/journal
    repro-ham route --nodes 127.0.0.1:7001 127.0.0.1:7002 --users 0 1 2
    repro-ham route --nodes 127.0.0.1:7001 127.0.0.1:7002 --wal-dir /var/lib/ham/wal
    repro-ham bench-serve --dataset cds --out BENCH_serving.json
    repro-ham bench-train --items 8000 --out BENCH_training.json
    repro-ham bench-parallel --workers 4 --out BENCH_parallel.json
    repro-ham bench-resilience --workers 2 --out BENCH_resilience.json
    repro-ham bench-cluster --nodes 2 --out BENCH_cluster.json
    repro-ham bench-durability --appends 2000 --out BENCH_durability.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.data.benchmarks import BENCHMARK_NAMES, SCALES, load_benchmark
from repro.data.splits import SETTINGS, split_setting
from repro.evaluation.evaluator import RankingEvaluator
from repro.experiments.configs import default_model_hyperparameters, default_training_config
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.reporting import format_table
from repro.models.registry import MODEL_REGISTRY, create_model
from repro.training.trainer import Trainer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-ham",
        description="Reproduction of 'HAM: Hybrid Associations Models for Sequential Recommendation'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all reproducible tables and figures")

    stats = subparsers.add_parser("stats", help="print dataset statistics (Table 2)")
    stats.add_argument("--scale", choices=sorted(SCALES), default=None)

    run = subparsers.add_parser("run", help="reproduce one table or figure")
    run.add_argument("experiment", help="experiment id, e.g. table3, fig4 or ext-synergy")
    run.add_argument("--scale", choices=sorted(SCALES), default=None)
    run.add_argument("--epochs", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--save-dir", default=None,
                     help="persist rows and report under this directory (ResultsStore)")

    def add_training_arguments(subparser):
        subparser.add_argument("--dataset", choices=BENCHMARK_NAMES, default="cds")
        subparser.add_argument("--method", choices=sorted(MODEL_REGISTRY), default="HAMs_m")
        subparser.add_argument("--setting", choices=SETTINGS, default="80-20-CUT")
        subparser.add_argument("--scale", choices=sorted(SCALES), default=None)
        subparser.add_argument("--epochs", type=int, default=None)
        subparser.add_argument("--seed", type=int, default=0)

    train = subparsers.add_parser("train", help="train and evaluate a single model")
    add_training_arguments(train)
    train.add_argument("--checkpoint", default=None,
                       help="write the trained parameters to this .npz path")

    serve = subparsers.add_parser(
        "serve", help="train a model (or load a checkpoint) and answer top-k "
                      "requests through the scoring engine")
    add_training_arguments(serve)
    serve.add_argument("--users", type=int, nargs="+", default=[0, 1, 2],
                       help="user ids to recommend for")
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--explain", action="store_true",
                       help="print the per-factor HAM score decomposition of each hit")
    serve.add_argument("--checkpoint", default=None,
                       help="serve this trained .npz checkpoint instead of "
                            "training (no trainer stack is instantiated)")
    serve.add_argument("--workers", type=int, default=0,
                       help="shard the engine over this many worker processes "
                            "(shared-memory fan-out; <= 1 stays in-process)")
    serve.add_argument("--gateway", action="store_true",
                       help="serve through the online gateway: requests are "
                            "coalesced into engine micro-batches and hot "
                            "users are answered from the score-row cache")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="gateway flush threshold: flush as soon as this "
                            "many requests are queued")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="gateway flush deadline: maximum milliseconds the "
                            "oldest queued request waits before its batch is "
                            "flushed regardless of size")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="gateway score-row cache capacity (rows; 0 "
                            "disables caching)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="gateway score-row cache TTL in seconds "
                            "(default: no expiry)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       help="per-request deadline in seconds: bounds every "
                            "sharded fan-out and, with --gateway, every "
                            "queued request (default: the engine's 120 s)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="gateway admission watermark: submissions beyond "
                            "this backlog are shed with "
                            "GatewayOverloadedError (default: unbounded)")
    serve.add_argument("--retrieval", choices=("exact", "ann"),
                       default="exact",
                       help="top-k retrieval mode: 'exact' scores the full "
                            "catalogue; 'ann' generates candidates from a PQ "
                            "index and re-ranks them exactly")
    serve.add_argument("--n-probe", type=int, default=None,
                       help="ANN recall dial: coarse buckets probed per "
                            "query (higher = better recall, slower)")
    serve.add_argument("--candidate-multiplier", type=int, default=None,
                       help="ANN candidates kept per probed bucket, as a "
                            "multiple of k")

    bench = subparsers.add_parser(
        "bench-serve", help="benchmark cached (engine) vs uncached per-request scoring")
    add_training_arguments(bench)
    bench.add_argument("--requests", type=int, default=200,
                       help="timed requests per serving path")
    bench.add_argument("--users-per-request", type=int, default=1)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--out", default="BENCH_serving.json",
                       help="write the latency report to this JSON path")

    bench_train = subparsers.add_parser(
        "bench-train",
        help="benchmark the fast training path (float32 + sparse gradients + "
             "vectorized sampling) against the legacy substrate")
    bench_train.add_argument("--method", choices=sorted(MODEL_REGISTRY), default="HAMm")
    bench_train.add_argument("--users", type=int, default=96,
                             help="users in the synthetic workload")
    bench_train.add_argument("--items", type=int, default=8000,
                             help="catalogue size of the synthetic workload")
    bench_train.add_argument("--max-history", type=int, default=60,
                             help="maximum per-user history length")
    bench_train.add_argument("--epochs", type=int, default=3,
                             help="timed epochs per training path")
    bench_train.add_argument("--batch-size", type=int, default=256)
    bench_train.add_argument("--embedding-dim", type=int, default=48)
    bench_train.add_argument("--seed", type=int, default=0)
    bench_train.add_argument("--out", default="BENCH_training.json",
                             help="write the throughput report to this JSON path")

    bench_parallel = subparsers.add_parser(
        "bench-parallel",
        help="benchmark the multi-process substrate (sharded eval sweeps + "
             "worker-pool data loading) against the serial paths")
    bench_parallel.add_argument("--method", choices=sorted(MODEL_REGISTRY), default="HAMm")
    bench_parallel.add_argument("--users", type=int, default=1200,
                                help="users in the synthetic sweep workload")
    bench_parallel.add_argument("--items", type=int, default=6000,
                                help="catalogue size of the sweep workload")
    bench_parallel.add_argument("--workers", type=int, default=4,
                                help="worker processes / shards to compare "
                                     "against the serial path (at least 2)")
    bench_parallel.add_argument("--repeats", type=int, default=5,
                                help="timed sweeps per serving path")
    bench_parallel.add_argument("--k", type=int, default=10)
    bench_parallel.add_argument("--epochs", type=int, default=3,
                                help="timed training epochs per loader mode")
    bench_parallel.add_argument("--seed", type=int, default=0)
    bench_parallel.add_argument("--out", default="BENCH_parallel.json",
                                help="write the throughput report to this JSON path")

    bench_resilience = subparsers.add_parser(
        "bench-resilience",
        help="benchmark crash recovery: SIGKILL a shard worker mid-sweep and "
             "measure respawn time, post-recovery parity and degraded mode")
    bench_resilience.add_argument("--method", choices=sorted(MODEL_REGISTRY),
                                  default="HAMm")
    bench_resilience.add_argument("--users", type=int, default=400,
                                  help="users in the synthetic sweep workload")
    bench_resilience.add_argument("--items", type=int, default=2000,
                                  help="catalogue size of the sweep workload")
    bench_resilience.add_argument("--workers", type=int, default=2,
                                  help="worker processes / shards (at least 2; "
                                       "shard 0 is the one killed)")
    bench_resilience.add_argument("--repeats", type=int, default=5,
                                  help="timed sweeps per phase")
    bench_resilience.add_argument("--k", type=int, default=10)
    bench_resilience.add_argument("--seed", type=int, default=0)
    bench_resilience.add_argument("--out", default="BENCH_resilience.json",
                                  help="write the recovery report to this JSON path")

    serve_node = subparsers.add_parser(
        "serve-node",
        help="run one cluster engine node: train a model (or load a "
             "checkpoint) and serve the arena protocol on a socket until "
             "SIGTERM/SIGINT (graceful drain)")
    add_training_arguments(serve_node)
    serve_node.add_argument("--checkpoint", default=None,
                            help="serve this trained .npz checkpoint instead "
                                 "of training")
    serve_node.add_argument("--bind", default="127.0.0.1:0",
                            help="listen address: host:port (port 0 = OS "
                                 "assigned, printed at startup) or unix:/path")
    serve_node.add_argument("--workers", type=int, default=0,
                            help="shard the node's engine over this many "
                                 "worker processes (<= 1 stays in-process)")
    serve_node.add_argument("--node-index", type=int, default=0,
                            help="this node's index in the cluster node table")
    serve_node.add_argument("--read-timeout", type=float, default=None,
                            help="per-connection read/write timeout in "
                                 "seconds (default 30)")
    serve_node.add_argument("--request-timeout", type=float, default=None,
                            help="per-request deadline of a sharded engine")
    serve_node.add_argument("--journal", default=None, metavar="DIR",
                            help="durable local observe journal directory: "
                                 "observes are journaled before they are "
                                 "applied and replayed into the engine at "
                                 "the next start")
    serve_node.add_argument("--journal-fsync", default="always",
                            choices=("always", "interval", "never"),
                            help="fsync policy of the observe journal")

    route = subparsers.add_parser(
        "route",
        help="answer top-k requests through a ClusterRouter over running "
             "serve-node processes (consistent user-hash + replica failover)")
    route.add_argument("--nodes", nargs="+", required=True, metavar="ADDR",
                       help="node addresses (host:port or unix:/path), in "
                            "node-table order")
    route.add_argument("--users", type=int, nargs="+", default=[0, 1, 2],
                       help="user ids to recommend for")
    route.add_argument("--k", type=int, default=10)
    route.add_argument("--replication", type=int, default=2,
                       help="nodes per replica set (primary included)")
    route.add_argument("--request-timeout", type=float, default=None,
                       help="end-to-end deadline per request in seconds "
                            "(failover retries never exceed it)")
    route.add_argument("--gateway", action="store_true",
                       help="front the router with the micro-batching "
                            "gateway instead of calling it directly")
    route.add_argument("--wal-dir", default=None, metavar="DIR",
                       help="durable observe log directory: every observe "
                            "is journaled write-ahead and a restarted "
                            "router rebuilds its replay state from it")
    route.add_argument("--wal-fsync", default="always",
                       choices=("always", "interval", "never"),
                       help="fsync policy of the observe WAL")

    bench_cluster = subparsers.add_parser(
        "bench-cluster",
        help="benchmark multi-node serving: networked overhead vs the "
             "in-process sharded engine, and failover recovery after the "
             "primary is SIGKILLed mid-stream")
    bench_cluster.add_argument("--method", choices=sorted(MODEL_REGISTRY),
                               default="HAMm")
    bench_cluster.add_argument("--users", type=int, default=400,
                               help="users in the synthetic sweep workload")
    bench_cluster.add_argument("--items", type=int, default=2000,
                               help="catalogue size of the sweep workload")
    bench_cluster.add_argument("--nodes", type=int, default=2,
                               help="engine node processes (at least 2; "
                                    "node 0 is the one killed)")
    bench_cluster.add_argument("--repeats", type=int, default=5,
                               help="timed sweeps per phase")
    bench_cluster.add_argument("--k", type=int, default=10)
    bench_cluster.add_argument("--seed", type=int, default=0)
    bench_cluster.add_argument("--out", default="BENCH_cluster.json",
                               help="write the cluster report to this JSON path")

    bench_durability = subparsers.add_parser(
        "bench-durability",
        help="benchmark the durable-state layer: WAL append throughput per "
             "fsync policy, recovery time vs log length, torn-tail recovery "
             "and compaction reclaim")
    bench_durability.add_argument("--appends", type=int, default=2000,
                                  help="records appended per fsync policy")
    bench_durability.add_argument("--segment-kb", type=int, default=64,
                                  help="WAL segment rotation threshold in KiB")
    bench_durability.add_argument("--seed", type=int, default=0)
    bench_durability.add_argument("--out", default="BENCH_durability.json",
                                  help="write the durability report to this "
                                       "JSON path")

    bench_ann = subparsers.add_parser(
        "bench-ann",
        help="benchmark ANN candidate generation vs exact retrieval over a "
             "large synthetic catalogue: p50 latency and measured recall@k "
             "per probe-dial setting")
    bench_ann.add_argument("--items", type=int, default=100_000,
                           help="synthetic catalogue size")
    bench_ann.add_argument("--dim", type=int, default=64,
                           help="embedding dimension of the catalogue")
    bench_ann.add_argument("--k", type=int, default=10)
    bench_ann.add_argument("--queries", type=int, default=64,
                           help="queries timed per dial setting")
    bench_ann.add_argument("--seed", type=int, default=0)
    bench_ann.add_argument("--out", default="BENCH_ann.json",
                           help="write the retrieval report to this JSON path")

    bench_all = subparsers.add_parser(
        "bench-all",
        help="run every persisted benchmark artifact through its regression "
             "guard (the thresholds the benchmark test suite pins)")
    bench_all.add_argument("--results-dir", default="benchmarks/results",
                           help="directory holding the BENCH_*.json artifacts")
    return parser


def _command_list() -> int:
    print(format_table(list_experiments(), title="Reproducible experiments"))
    return 0


def _command_stats(scale: str | None) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        dataset = load_benchmark(name, scale=scale)
        rows.append({
            "dataset": dataset.name,
            "#users": dataset.num_users,
            "#items": dataset.num_items,
            "#intrns": dataset.num_interactions,
            "#intrns/u": round(dataset.interactions_per_user, 1),
            "#u/i": round(dataset.interactions_per_item, 1),
        })
    print(format_table(rows, title="Synthetic benchmark analogues (Table 2)"))
    return 0


def _command_run(experiment_id: str, scale: str | None, epochs: int | None, seed: int,
                 save_dir: str | None = None) -> int:
    spec = get_experiment(experiment_id)
    print(f"running {spec.experiment_id}: {spec.title} ({spec.paper_section})")
    output = spec.run(scale=scale, epochs=epochs, seed=seed)
    print(output["text"])
    if save_dir is not None:
        from repro.experiments.persistence import ResultsStore

        saved = ResultsStore(save_dir).save(
            spec.experiment_id, output,
            metadata={"scale": scale, "epochs": epochs, "seed": seed},
        )
        print(f"saved to {saved.path}")
    return 0


def _command_train(dataset: str, method: str, setting: str, scale: str | None,
                   epochs: int | None, seed: int, checkpoint: str | None = None) -> int:
    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, setting)
    print(data.summary())

    rng = np.random.default_rng(seed)
    hyperparameters = default_model_hyperparameters(method, dataset, setting)
    model = create_model(method, num_users=split.num_users, num_items=split.num_items,
                         rng=rng, **hyperparameters)
    print(model.describe())

    config = default_training_config(num_epochs=epochs, dataset=dataset,
                                     setting=setting, seed=seed)
    result = Trainer(model, config).fit(split.train_plus_valid())
    print(f"trained {config.num_epochs} epochs in {result.train_seconds:.1f}s "
          f"(final loss {result.final_loss:.4f})")

    metrics = RankingEvaluator(split, ks=(5, 10), mode="test").evaluate(model).metrics
    print(format_table([{"method": method, **{k: round(v, 4) for k, v in metrics.items()}}],
                       title=f"{method} on {data.name} in {setting}"))

    if checkpoint is not None:
        from repro.training.checkpoint import save_checkpoint

        # Everything engine_from_checkpoint needs to rebuild the model
        # without re-deriving defaults: method, dims, hyperparameters.
        path = save_checkpoint(model, checkpoint, metadata={
            "method": method, "dataset": dataset, "setting": setting, "seed": seed,
            "model": {"num_users": split.num_users, "num_items": split.num_items},
            "hyperparameters": hyperparameters,
            "metrics": {k: round(v, 6) for k, v in metrics.items()},
        })
        print(f"checkpoint written to {path}")
    return 0


def _train_for_serving(dataset: str, method: str, setting: str, scale: str | None,
                       epochs: int | None, seed: int):
    """Shared train-then-snapshot path of the serve/bench-serve commands."""
    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, setting)
    rng = np.random.default_rng(seed)
    hyperparameters = default_model_hyperparameters(method, dataset, setting)
    model = create_model(method, num_users=split.num_users, num_items=split.num_items,
                         rng=rng, **hyperparameters)
    config = default_training_config(num_epochs=epochs, dataset=dataset,
                                     setting=setting, seed=seed)
    histories = split.train_plus_valid()
    Trainer(model, config).fit(histories)
    return model, histories


#: Exit code of serve/serve-node/route when the engine is degraded or a
#: breaker is open — distinct from argparse's 2, so scripts and liveness
#: probes can tell "unhealthy" from "bad invocation".
UNHEALTHY_EXIT_CODE = 3

#: Exit code of serve/serve-node when ``--checkpoint`` names a corrupt
#: file (torn write, bit flip, mangled archive) — one diagnostic line on
#: stderr instead of a traceback, and a code scripts can branch on.
CORRUPT_CHECKPOINT_EXIT_CODE = 4


def _print_health_line(health: dict | None) -> bool:
    """One-line shard-health summary of a sharded serve run.

    Returns ``True`` when the engine is unhealthy — any shard degraded
    or its circuit breaker open — in which case the summary goes to
    **stderr** (healthy summaries go to stdout) and the serve commands
    exit with :data:`UNHEALTHY_EXIT_CODE`, so scripts and liveness
    probes can consume the verdict without parsing output.
    """
    if not health or health.get("mode") != "sharded":
        return False
    shards = health.get("shards", [])
    alive = sum(1 for shard in shards if shard.get("alive"))
    restarts = sum(shard.get("restarts", 0) for shard in shards)
    degraded = health.get("degraded_shards", [])
    breakers_open = sum(1 for shard in shards
                        if shard.get("breaker_open_s", 0) > 0)
    unhealthy = bool(degraded or breakers_open)
    line = (f"health: {alive}/{health['n_workers']} shard workers alive, "
            f"{restarts} restart(s), "
            f"degraded shards: {degraded if degraded else 'none'}")
    if breakers_open:
        line += f", {breakers_open} circuit breaker(s) open"
    print(line, file=sys.stderr if unhealthy else sys.stdout)
    return unhealthy


def _command_serve(dataset: str, method: str, setting: str, scale: str | None,
                   epochs: int | None, seed: int, users: list[int], k: int,
                   explain: bool = False, checkpoint: str | None = None,
                   workers: int = 0, gateway: bool = False,
                   max_batch: int = 32, max_wait_ms: float = 2.0,
                   cache_size: int = 256, cache_ttl: float | None = None,
                   request_timeout: float | None = None,
                   max_queue: int | None = None,
                   retrieval: str = "exact", n_probe: int | None = None,
                   candidate_multiplier: int | None = None) -> int:
    from repro.parallel import DEFAULT_REQUEST_TIMEOUT_S, make_scoring_engine
    from repro.retrieval import RetrievalConfig
    from repro.serving import ServingGateway, model_from_checkpoint, explain_ham_scores
    from repro.models.ham import HAM
    from repro.training.checkpoint import CheckpointCorruptError

    if checkpoint is not None:
        # Serve-only path: rebuild the trained model from the checkpoint;
        # the dataset/setting arguments only provide the histories.
        data = load_benchmark(dataset, scale=scale)
        split = split_setting(data, setting)
        histories = split.train_plus_valid()
        try:
            model, metadata = model_from_checkpoint(checkpoint)
        except CheckpointCorruptError as error:
            print(f"error: {error}", file=sys.stderr)
            return CORRUPT_CHECKPOINT_EXIT_CODE
        method = metadata.get("method", method)
    else:
        model, histories = _train_for_serving(dataset, method, setting, scale,
                                              epochs, seed)
    ann_config = None
    if retrieval == "ann":
        dials = {}
        if n_probe is not None:
            dials["n_probe"] = n_probe
        if candidate_multiplier is not None:
            dials["candidate_multiplier"] = candidate_multiplier
        ann_config = RetrievalConfig(**dials)
    engine = make_scoring_engine(
        model, histories, n_workers=workers, precompute=True,
        request_timeout_s=(request_timeout if request_timeout is not None
                           else DEFAULT_REQUEST_TIMEOUT_S),
        ann_config=ann_config)
    engine_name = type(engine).__name__
    if retrieval == "ann":
        engine_name = f"{engine_name}[ann]"
    if workers and workers > 1:
        print(f"sharded over {workers} worker processes "
              f"(user ranges, shared-memory snapshot)")
    print(model.describe())

    if gateway:
        # Online front-end: every user becomes one single-user request,
        # coalesced by the flusher into engine micro-batches (results
        # are bit-identical to engine.recommend_batch).
        engine_name = f"ServingGateway[{engine_name}]"
        try:
            front = ServingGateway(engine, max_batch=max_batch,
                                   max_wait_ms=max_wait_ms,
                                   cache_size=cache_size,
                                   cache_ttl_s=cache_ttl,
                                   max_queue=max_queue,
                                   request_timeout_s=request_timeout,
                                   own_engine=True,
                                   retrieval_mode=retrieval,
                                   n_probe=n_probe,
                                   candidate_multiplier=candidate_multiplier)
        except Exception:
            engine.close()
            raise
        with front:
            futures = [front.submit(user, k) for user in users]
            batches = [future.recommendations() for future in futures]
            stats = front.stats()
            health = front.health()
        cache = stats.cache
        cache_line = (
            f", cache {cache.hits}/{cache.requests} hits" if cache else ""
        )
        print(f"gateway: {stats.requests} requests in {stats.batches} "
              f"micro-batches (max {stats.max_batch_observed}, "
              f"{stats.flush_full} full / {stats.flush_deadline} deadline "
              f"flushes, {stats.shed} shed / {stats.expired} expired"
              f"{cache_line})")
        unhealthy = _print_health_line(health.get("engine"))
    else:
        try:
            if retrieval == "ann":
                # Candidate generation + exact re-rank; dials default to
                # the index's RetrievalConfig when flags are omitted.
                import numpy as np
                from repro.serving.engine import Recommendation

                ranked, scores = engine.top_k_scored(
                    np.asarray(users, dtype=np.int64), k, mode="ann",
                    n_probe=n_probe, candidate_multiplier=candidate_multiplier)
                batches = [
                    [Recommendation(item=int(item), score=float(score), rank=rank)
                     for rank, (item, score) in enumerate(zip(ranked[row], scores[row]))]
                    for row in range(ranked.shape[0])
                ]
            else:
                batches = engine.recommend_batch(users, k)
            health = engine.health() if hasattr(engine, "health") else None
        finally:
            engine.close()
        unhealthy = _print_health_line(health)
    rows = []
    for user, recommendations in zip(users, batches):
        for entry in recommendations:
            rows.append({"user": user, "rank": entry.rank, "item": entry.item,
                         "score": round(entry.score, 4)})
    print(format_table(rows, title=f"top-{k} via {engine_name} ({method} on {dataset})"))

    if explain and isinstance(model, HAM):
        explanation_rows = []
        for user, recommendations in zip(users, batches):
            explanations = explain_ham_scores(model, user, list(histories[user]),
                                              [entry.item for entry in recommendations])
            explanation_rows.extend(
                {key: round(value, 4) if isinstance(value, float) else value
                 for key, value in explanation.as_row().items()}
                for explanation in explanations
            )
        print(format_table(explanation_rows, title="per-factor score decomposition"))
    return UNHEALTHY_EXIT_CODE if unhealthy else 0


def _command_bench_serve(dataset: str, method: str, setting: str, scale: str | None,
                         epochs: int | None, seed: int, requests: int,
                         users_per_request: int, k: int, out: str) -> int:
    from repro.serving import run_serving_benchmark, write_report

    model, histories = _train_for_serving(dataset, method, setting, scale, epochs, seed)
    report = run_serving_benchmark(model, histories, num_requests=requests,
                                   users_per_request=users_per_request, k=k,
                                   seed=seed, model_name=method)
    print(report.summary())
    write_report(report, out)
    print(f"latency report written to {out}")
    return 0


def _command_bench_train(method: str, users: int, items: int, max_history: int,
                         epochs: int, batch_size: int, embedding_dim: int,
                         seed: int, out: str) -> int:
    from repro.training.bench import run_training_benchmark, write_training_report

    report = run_training_benchmark(
        num_users=users, num_items=items, max_history=max_history,
        epochs=epochs, batch_size=batch_size, model_name=method, seed=seed,
        model_kwargs={"embedding_dim": embedding_dim},
    )
    print(report.summary())
    write_training_report(report, out)
    print(f"throughput report written to {out}")
    return 0


def _command_bench_parallel(method: str, users: int, items: int, workers: int,
                            repeats: int, k: int, epochs: int, seed: int,
                            out: str) -> int:
    from repro.parallel.bench import run_parallel_benchmark, write_parallel_report

    if workers < 2:
        print("bench-parallel compares worker processes against the serial "
              "path and needs --workers >= 2")
        return 2

    report = run_parallel_benchmark(
        num_users=users, num_items=items, n_workers=workers, repeats=repeats,
        k=k, train_epochs=epochs, model_name=method, seed=seed,
    )
    print(report.summary())
    write_parallel_report(report, out)
    print(f"parallel throughput report written to {out}")
    return 0


def _command_bench_resilience(method: str, users: int, items: int, workers: int,
                              repeats: int, k: int, seed: int, out: str) -> int:
    from repro.parallel.resilience_bench import (
        run_resilience_benchmark,
        write_resilience_report,
    )

    if workers < 2:
        print("bench-resilience kills one shard worker and needs "
              "--workers >= 2")
        return 2

    report = run_resilience_benchmark(
        num_users=users, num_items=items, n_workers=workers, repeats=repeats,
        k=k, model_name=method, seed=seed,
    )
    print(report.summary())
    write_resilience_report(report, out)
    print(f"resilience report written to {out}")
    return 0


def _command_serve_node(dataset: str, method: str, setting: str,
                        scale: str | None, epochs: int | None, seed: int,
                        checkpoint: str | None, bind: str, workers: int,
                        node_index: int, read_timeout: float | None,
                        request_timeout: float | None,
                        journal: str | None = None,
                        journal_fsync: str = "always") -> int:
    import signal as _signal

    from repro.cluster.node import DEFAULT_READ_TIMEOUT_S, EngineNode
    from repro.parallel import make_scoring_engine
    from repro.serving.deploy import node_from_checkpoint
    from repro.training.checkpoint import CheckpointCorruptError

    if read_timeout is None:
        read_timeout = DEFAULT_READ_TIMEOUT_S
    if checkpoint is not None:
        data = load_benchmark(dataset, scale=scale)
        split = split_setting(data, setting)
        try:
            node = node_from_checkpoint(
                checkpoint, split.train_plus_valid(), bind=bind,
                n_workers=workers, node_index=node_index,
                read_timeout_s=read_timeout, request_timeout_s=request_timeout,
                journal_dir=journal, journal_fsync=journal_fsync)
        except CheckpointCorruptError as error:
            print(f"error: {error}", file=sys.stderr)
            return CORRUPT_CHECKPOINT_EXIT_CODE
    else:
        model, histories = _train_for_serving(dataset, method, setting, scale,
                                              epochs, seed)
        engine = make_scoring_engine(model, histories, n_workers=workers,
                                     precompute=True)
        try:
            node = EngineNode(engine, bind=bind, read_timeout_s=read_timeout,
                              node_index=node_index, own_engine=True,
                              journal_dir=journal,
                              journal_fsync=journal_fsync)
        except Exception:
            engine.close()
            raise
    node.install_sigterm_drain()
    print(f"node {node_index} serving on {node.address} "
          f"(epoch {node.epoch}); SIGTERM drains gracefully", flush=True)
    try:
        node.serve_forever()
    except KeyboardInterrupt:
        node.drain()
    # Exit-time health verdict, same convention as `serve`: degraded
    # shards or open breakers exit non-zero for scripts and probes.
    engine_health = getattr(node.engine, "health", None)
    unhealthy = _print_health_line(engine_health() if engine_health else None)
    node.close()
    return UNHEALTHY_EXIT_CODE if unhealthy else 0


def _command_route(nodes: list[str], users: list[int], k: int,
                   replication: int, request_timeout: float | None,
                   gateway: bool, wal_dir: str | None = None,
                   wal_fsync: str = "always") -> int:
    from repro.cluster.router import ClusterRouter
    from repro.serving import ServingGateway

    router_kwargs = {}
    if request_timeout is not None:
        router_kwargs["request_timeout_s"] = request_timeout
    router = ClusterRouter(nodes, replication=replication, wal_dir=wal_dir,
                           wal_fsync=wal_fsync, **router_kwargs)
    engine_name = f"ClusterRouter[{len(nodes)} nodes, r={router.replication}]"
    try:
        if gateway:
            engine_name = f"ServingGateway[{engine_name}]"
            with ServingGateway(router, own_engine=True) as front:
                futures = [front.submit(user, k) for user in users]
                batches = [future.recommendations() for future in futures]
                health = front.health().get("engine", {})
        else:
            batches = router.recommend_batch(users, k)
            health = router.health()
    finally:
        router.close()
    rows = []
    for user, recommendations in zip(users, batches):
        for entry in recommendations:
            rows.append({"user": user, "rank": entry.rank, "item": entry.item,
                         "score": round(entry.score, 4)})
    print(format_table(rows, title=f"top-{k} via {engine_name}"))
    up = sum(1 for node in health.get("nodes", []) if node.get("up"))
    unhealthy = not health.get("healthy", False)
    print(f"cluster health: {up}/{len(nodes)} nodes up, "
          f"{health.get('n_ranges')} ranges x {health.get('replication')} "
          f"replicas, observe log {health.get('observe_log_len', 0)}",
          file=sys.stderr if unhealthy else sys.stdout)
    return UNHEALTHY_EXIT_CODE if unhealthy else 0


def _command_bench_cluster(method: str, users: int, items: int, nodes: int,
                           repeats: int, k: int, seed: int, out: str) -> int:
    from repro.cluster.bench import run_cluster_benchmark, write_cluster_report

    if nodes < 2:
        print("bench-cluster kills the primary node and needs --nodes >= 2")
        return 2

    report = run_cluster_benchmark(
        num_users=users, num_items=items, n_nodes=nodes, repeats=repeats,
        k=k, model_name=method, seed=seed,
    )
    print(report.summary())
    write_cluster_report(report, out)
    print(f"cluster report written to {out}")
    return 0


def _command_bench_durability(appends: int, segment_kb: int, seed: int,
                              out: str) -> int:
    from repro.durability.bench import (
        run_durability_benchmark,
        write_durability_report,
    )

    report = run_durability_benchmark(appends=appends, segment_kb=segment_kb,
                                      seed=seed)
    print(report.summary())
    write_durability_report(report, out)
    print(f"durability report written to {out}")
    return 0


def _command_bench_ann(items: int, dim: int, k: int, queries: int, seed: int,
                       out: str) -> int:
    from repro.retrieval.bench import (
        run_retrieval_benchmark,
        write_retrieval_report,
    )

    report = run_retrieval_benchmark(num_items=items, dim=dim, k=k,
                                     num_queries=queries, seed=seed)
    print(report.summary())
    write_retrieval_report(report, out)
    print(f"retrieval report written to {out}")
    return 0


def _command_bench_all(results_dir: str) -> int:
    from repro.bench_all import run_all_guards

    results = run_all_guards(results_dir)
    if not results:
        print(f"no BENCH_*.json artifacts under {results_dir}")
        return 2
    for result in results:
        print(result.line())
    failed = sum(result.status == "fail" for result in results)
    passed = sum(result.status == "pass" for result in results)
    print(f"{passed}/{len(results)} artifacts passed their regression guard")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "stats":
        return _command_stats(args.scale)
    if args.command == "run":
        return _command_run(args.experiment, args.scale, args.epochs, args.seed,
                            save_dir=args.save_dir)
    if args.command == "train":
        return _command_train(args.dataset, args.method, args.setting,
                              args.scale, args.epochs, args.seed,
                              checkpoint=args.checkpoint)
    if args.command == "serve":
        return _command_serve(args.dataset, args.method, args.setting,
                              args.scale, args.epochs, args.seed,
                              users=args.users, k=args.k, explain=args.explain,
                              checkpoint=args.checkpoint, workers=args.workers,
                              gateway=args.gateway, max_batch=args.max_batch,
                              max_wait_ms=args.max_wait_ms,
                              cache_size=args.cache_size,
                              cache_ttl=args.cache_ttl,
                              request_timeout=args.request_timeout,
                              max_queue=args.max_queue,
                              retrieval=args.retrieval, n_probe=args.n_probe,
                              candidate_multiplier=args.candidate_multiplier)
    if args.command == "bench-serve":
        return _command_bench_serve(args.dataset, args.method, args.setting,
                                    args.scale, args.epochs, args.seed,
                                    requests=args.requests,
                                    users_per_request=args.users_per_request,
                                    k=args.k, out=args.out)
    if args.command == "bench-train":
        return _command_bench_train(args.method, args.users, args.items,
                                    args.max_history, args.epochs,
                                    args.batch_size, args.embedding_dim,
                                    args.seed, args.out)
    if args.command == "bench-parallel":
        return _command_bench_parallel(args.method, args.users, args.items,
                                       args.workers, args.repeats, args.k,
                                       args.epochs, args.seed, args.out)
    if args.command == "bench-resilience":
        return _command_bench_resilience(args.method, args.users, args.items,
                                         args.workers, args.repeats, args.k,
                                         args.seed, args.out)
    if args.command == "serve-node":
        return _command_serve_node(args.dataset, args.method, args.setting,
                                   args.scale, args.epochs, args.seed,
                                   checkpoint=args.checkpoint, bind=args.bind,
                                   workers=args.workers,
                                   node_index=args.node_index,
                                   read_timeout=args.read_timeout,
                                   request_timeout=args.request_timeout,
                                   journal=args.journal,
                                   journal_fsync=args.journal_fsync)
    if args.command == "route":
        return _command_route(args.nodes, args.users, args.k,
                              replication=args.replication,
                              request_timeout=args.request_timeout,
                              gateway=args.gateway, wal_dir=args.wal_dir,
                              wal_fsync=args.wal_fsync)
    if args.command == "bench-cluster":
        return _command_bench_cluster(args.method, args.users, args.items,
                                      args.nodes, args.repeats, args.k,
                                      args.seed, args.out)
    if args.command == "bench-durability":
        return _command_bench_durability(args.appends, args.segment_kb,
                                         args.seed, args.out)
    if args.command == "bench-ann":
        return _command_bench_ann(args.items, args.dim, args.k, args.queries,
                                  args.seed, args.out)
    if args.command == "bench-all":
        return _command_bench_all(args.results_dir)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
