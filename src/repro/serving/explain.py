"""Per-factor explanation of HAM scores (paper Eq. 7/8).

HAM's score is a *sum of three interpretable dot products*: the user's
general preference, the high-order association of the recent items
(optionally enhanced with synergies), and the low-order association of
the most recent one or two items.  The explanation exposes those
per-factor contributions, which is one concrete advantage of the linear
scoring function over the black-box baselines.

:func:`explain_ham_score` explains one ``(user, history, item)`` triple;
:func:`explain_ham_scores` amortizes the forward pass over many candidate
items of the same request (the "why these recommendations" batch case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import no_grad
from repro.data.windows import pad_histories
from repro.models.ham import HAM
from repro.models.ham_synergy import HAMSynergy
from repro.models.synergy import latent_cross

__all__ = ["HAMScoreExplanation", "explain_ham_score", "explain_ham_scores"]


@dataclass(frozen=True)
class HAMScoreExplanation:
    """Per-factor decomposition of a HAM recommendation score (Eq. 7/8)."""

    user: int
    item: int
    total: float
    user_preference: float
    high_order: float
    low_order: float
    uses_synergies: bool

    def dominant_factor(self) -> str:
        """Name of the factor contributing most to the score."""
        contributions = {
            "user_preference": self.user_preference,
            "high_order": self.high_order,
            "low_order": self.low_order,
        }
        return max(contributions, key=contributions.get)

    def as_row(self) -> dict:
        """Flat dict form of the decomposition (one table row per item)."""
        return {
            "user": self.user,
            "item": self.item,
            "total": self.total,
            "user_preference": self.user_preference,
            "high_order": self.high_order,
            "low_order": self.low_order,
            "dominant": self.dominant_factor(),
        }


def _validate_request(model: HAM, user: int, items: list[int]) -> None:
    if not isinstance(model, HAM):
        raise TypeError("score explanations are only defined for the HAM family")
    if not 0 <= user < model.num_users:
        raise ValueError(f"user id {user} outside [0, {model.num_users})")
    for item in items:
        if not 0 <= item < model.num_items:
            raise ValueError(f"item id {item} outside [0, {model.num_items})")


def explain_ham_scores(model: HAM, user: int, history: list[int],
                       items: list[int]) -> list[HAMScoreExplanation]:
    """Decompose the scores of several candidate items in one forward pass.

    Parameters
    ----------
    model:
        A (trained) :class:`HAM` or :class:`HAMSynergy` instance.
    user:
        User id the recommendations are for.
    history:
        The user's recent interaction history (only the last ``n_h`` items
        are used, exactly as at scoring time).
    items:
        Candidate items whose scores are being explained.

    Returns
    -------
    One :class:`HAMScoreExplanation` per candidate item, in order.
    """
    _validate_request(model, user, list(items))
    inputs = pad_histories([history], model.input_length, model.pad_id)

    with no_grad():
        item_ids = np.asarray(items, dtype=np.int64)
        candidates = model.candidate_item_embeddings().data[item_ids]     # (T, d)
        high_order, low_order = model.association_embeddings(inputs)
        uses_synergies = isinstance(model, HAMSynergy) and model.synergy_order > 1
        if uses_synergies:
            high_order = latent_cross(high_order, model.synergy_terms(inputs))
        high_contributions = candidates @ high_order.data[0]              # (T,)
        if low_order is not None:
            low_contributions = candidates @ low_order.data[0]
        else:
            low_contributions = np.zeros(len(item_ids))
        if model.use_user_embedding:
            user_vector = model.user_embeddings.weight.data[user]
            user_contributions = candidates @ user_vector
        else:
            user_contributions = np.zeros(len(item_ids))

    return [
        HAMScoreExplanation(
            user=user,
            item=int(item),
            total=float(user_contributions[row] + high_contributions[row]
                        + low_contributions[row]),
            user_preference=float(user_contributions[row]),
            high_order=float(high_contributions[row]),
            low_order=float(low_contributions[row]),
            uses_synergies=uses_synergies,
        )
        for row, item in enumerate(item_ids)
    ]


def explain_ham_score(model: HAM, user: int, history: list[int],
                      item: int) -> HAMScoreExplanation:
    """Decompose a HAM/HAMs score into its three factors (Eq. 7/8).

    Parameters
    ----------
    model:
        A (trained) :class:`HAM` or :class:`HAMSynergy` instance.
    user:
        User id the recommendation is for.
    history:
        The user's recent interaction history (only the last ``n_h`` items
        are used, exactly as at scoring time).
    item:
        Candidate item whose score is being explained.
    """
    return explain_ham_scores(model, user, history, [item])[0]
