"""Gateway throughput harness: micro-batched vs per-request serving.

The serving bench (:mod:`repro.serving.bench`) quantified what the
cached engine buys over the seed path; this harness quantifies what the
:class:`~repro.serving.gateway.ServingGateway` adds on top for *online*
traffic — a stream of single-user top-k requests:

* **unbatched** — the pre-gateway path: every request is one
  ``engine.top_k([user], k)`` call, paying the full per-call overhead
  (Python dispatch, one-row matmul, one-row mask, one ``argpartition``)
  per request;
* **batched** — the same request stream submitted through the gateway
  in waves of ``concurrency`` outstanding requests, coalesced into
  engine micro-batches (``max_batch``/``max_wait_ms`` flush policy) with
  the hot-user score-row cache enabled.

Both arms replay the *identical* request stream (a skewed mix: half the
requests hit a small hot-user set, so the row cache sees realistic
reuse), and the batched arm's ranked ids are compared bit-for-bit
against the unbatched arm's — batching and caching must never change a
single recommendation.

Latency accounting is end-to-end from the caller's seat: an unbatched
request is timed around its engine call; a batched request from submit
to future resolution, so queueing and flush-deadline waits count
against the gateway.  The report also records a fixed p95 budget
(``max_wait_ms`` plus a multiple of the unbatched p95) and whether the
batched arm held it — the "sustained req/s at fixed p95" framing of the
acceptance bar.

:func:`write_gateway_report` persists the result as
``benchmarks/results/BENCH_gateway.json`` under the unified
:mod:`repro.bench_schema` envelope.  Real speedups need real cores (the
flusher thread runs concurrently with the submitting caller), so the
``>= 3x`` assertion in ``benchmarks/test_gateway_throughput.py`` skips
on single-core runners — bit-parity is asserted everywhere.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.bench_schema import write_bench_report
from repro.models.registry import create_model
from repro.serving.bench import LatencyStats
from repro.serving.engine import ScoringEngine
from repro.serving.gateway import ServingGateway
from repro.training.bench import synthetic_training_histories

__all__ = ["GatewayBenchReport", "run_gateway_benchmark", "write_gateway_report"]

#: Batched p95 budget = 2 x max_wait_ms + this multiple of the unbatched
#: p95.  A healthy request waits at most one flush deadline, may queue
#: behind one in-flight batch (a second deadline's worth), and then
#: shares a micro-batch whose per-request service cost is a few
#: single-request times; blowing through the budget means batching is
#: buying throughput by unbounded queueing, which the guard should catch.
P95_BUDGET_FACTOR = 10.0


@dataclass(frozen=True)
class GatewayBenchReport:
    """Batched-vs-unbatched comparison on one synthetic request stream."""

    model_name: str
    num_users: int
    num_items: int
    num_requests: int
    k: int
    max_batch: int
    max_wait_ms: float
    concurrency: int
    cache_size: int
    cpu_count: int
    unbatched: LatencyStats
    batched: LatencyStats
    #: Throughput ratio (batched req/s / unbatched req/s); > 1 means the
    #: gateway wins.
    throughput_speedup: float
    #: The fixed p95 budget (ms) the batched arm is held to.
    p95_budget_ms: float
    within_p95_budget: bool
    #: Gateway results compared bit-for-bit against direct engine calls.
    topk_bit_identical: bool
    #: Gateway operational counters (flush reasons, cache hit rate, ...).
    gateway_stats: dict

    def as_dict(self) -> dict:
        """Plain-dict form for the ``BENCH_gateway.json`` payload."""
        return asdict(self)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        cache = self.gateway_stats.get("cache") or {}
        return (
            f"{self.model_name} gateway over {self.num_requests} single-user "
            f"requests ({self.num_users} users x {self.num_items} items, "
            f"top-{self.k}, {self.cpu_count} cores): "
            f"unbatched {self.unbatched.throughput_rps:.0f} req/s "
            f"(p95 {self.unbatched.p95_ms:.3f} ms) vs batched "
            f"{self.batched.throughput_rps:.0f} req/s "
            f"(p95 {self.batched.p95_ms:.3f} ms, budget "
            f"{self.p95_budget_ms:.3f} ms) -> {self.throughput_speedup:.2f}x; "
            f"cache hit rate {cache.get('hit_rate', 0.0):.2f}; "
            f"bit-identical: {self.topk_bit_identical}"
        )


def _request_stream(num_users: int, num_requests: int, hot_users: int,
                    hot_fraction: float, seed: int) -> np.ndarray:
    """Skewed single-user request stream: hot set + uniform tail."""
    rng = np.random.default_rng(seed)
    hot = rng.choice(num_users, size=min(hot_users, num_users), replace=False)
    users = rng.integers(0, num_users, size=num_requests)
    is_hot = rng.random(num_requests) < hot_fraction
    users[is_hot] = rng.choice(hot, size=int(is_hot.sum()))
    return users.astype(np.int64)


def run_gateway_benchmark(num_users: int = 1200, num_items: int = 4000,
                          max_history: int = 60, k: int = 10,
                          num_requests: int = 600, max_batch: int = 32,
                          max_wait_ms: float = 2.0, concurrency: int = 64,
                          cache_size: int = 256, hot_users: int = 32,
                          hot_fraction: float = 0.5,
                          model_name: str = "HAMm", seed: int = 0,
                          embedding_dim: int = 48) -> GatewayBenchReport:
    """Replay one request stream through both serving paths and compare.

    Parameters
    ----------
    num_requests:
        Timed single-user requests per arm (both arms replay the same
        stream; each arm gets an untimed warm-up pass over one wave).
    concurrency:
        Outstanding requests per submission wave on the batched arm —
        the open-loop load the gateway coalesces.  Must be >= 1.
    hot_users / hot_fraction:
        ``hot_fraction`` of the requests are drawn from a fixed set of
        ``hot_users`` ids, giving the score-row cache realistic reuse.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")

    model_kwargs = dict(embedding_dim=embedding_dim)
    if model_name.startswith("HAM"):
        model_kwargs.update(n_h=10, n_l=2)
    model = create_model(model_name, num_users, num_items,
                         rng=np.random.default_rng(seed), **model_kwargs)
    histories = synthetic_training_histories(num_users, num_items, max_history,
                                             seed=seed)
    stream = _request_stream(num_users, num_requests, hot_users, hot_fraction,
                             seed=seed + 1)

    engine = ScoringEngine(model, histories, exclude_seen=True, precompute=True)

    # ---- unbatched arm: one engine call per request ------------------- #
    warmup = stream[:concurrency]
    for user in warmup:
        engine.top_k(np.asarray([user], dtype=np.int64), k)
    unbatched_rows = np.empty((num_requests, min(k, num_items)), dtype=np.int64)
    unbatched_latencies = []
    unbatched_start = time.perf_counter()
    for position, user in enumerate(stream):
        start = time.perf_counter()
        unbatched_rows[position] = engine.top_k(
            np.asarray([user], dtype=np.int64), k)[0]
        unbatched_latencies.append(time.perf_counter() - start)
    unbatched_total = time.perf_counter() - unbatched_start

    # ---- batched arm: the same stream through the gateway ------------- #
    batched_rows = np.empty_like(unbatched_rows)
    batched_latencies = [0.0] * num_requests
    with ServingGateway(engine, max_batch=max_batch, max_wait_ms=max_wait_ms,
                        cache_size=cache_size) as gateway:
        for user in warmup:  # untimed warm-up wave
            gateway.submit(int(user), k)
        # Drain the warm-up before timing; the row cache stays warm,
        # exactly like the engine's representation cache above.
        gateway.top_k(int(warmup[-1]), k)

        batched_start = time.perf_counter()
        for wave_start in range(0, num_requests, concurrency):
            wave = range(wave_start,
                         min(wave_start + concurrency, num_requests))
            submitted = []
            for position in wave:
                submitted.append(
                    (position, time.perf_counter(),
                     gateway.submit(int(stream[position]), k)))
            for position, submit_time, future in submitted:
                batched_rows[position] = future.result(timeout=60.0)
                batched_latencies[position] = time.perf_counter() - submit_time
        batched_total = time.perf_counter() - batched_start
        gateway_stats = gateway.stats().as_dict()

    unbatched_stats = LatencyStats.from_seconds(unbatched_latencies)
    batched_stats = LatencyStats.from_seconds(batched_latencies)
    # Throughput from wall-clock totals (the batched arm overlaps
    # requests, so summing its per-request latencies would undercount).
    unbatched_rps = num_requests / unbatched_total if unbatched_total > 0 else float("inf")
    batched_rps = num_requests / batched_total if batched_total > 0 else float("inf")
    unbatched_stats = LatencyStats(requests=num_requests,
                                   p50_ms=unbatched_stats.p50_ms,
                                   p95_ms=unbatched_stats.p95_ms,
                                   mean_ms=unbatched_stats.mean_ms,
                                   throughput_rps=unbatched_rps)
    batched_stats = LatencyStats(requests=num_requests,
                                 p50_ms=batched_stats.p50_ms,
                                 p95_ms=batched_stats.p95_ms,
                                 mean_ms=batched_stats.mean_ms,
                                 throughput_rps=batched_rps)

    p95_budget_ms = 2 * max_wait_ms + P95_BUDGET_FACTOR * unbatched_stats.p95_ms
    return GatewayBenchReport(
        model_name=model_name,
        num_users=num_users,
        num_items=num_items,
        num_requests=num_requests,
        k=k,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        concurrency=concurrency,
        cache_size=cache_size,
        cpu_count=os.cpu_count() or 1,
        unbatched=unbatched_stats,
        batched=batched_stats,
        throughput_speedup=batched_rps / unbatched_rps
        if unbatched_rps > 0 else float("inf"),
        p95_budget_ms=p95_budget_ms,
        within_p95_budget=bool(batched_stats.p95_ms <= p95_budget_ms),
        topk_bit_identical=bool(np.array_equal(unbatched_rows, batched_rows)),
        gateway_stats=gateway_stats,
    )


def write_gateway_report(report: GatewayBenchReport, path) -> None:
    """Persist a report as the ``BENCH_gateway.json`` artifact."""
    cache = report.gateway_stats.get("cache") or {}
    write_bench_report(path, "gateway", report.as_dict(), headline={
        "throughput_speedup": report.throughput_speedup,
        "batched_p95_ms": report.batched.p95_ms,
        "unbatched_p95_ms": report.unbatched.p95_ms,
        "within_p95_budget": report.within_p95_budget,
        "cache_hit_rate": cache.get("hit_rate", 0.0),
        "cpu_count": report.cpu_count,
        "topk_bit_identical": report.topk_bit_identical,
    })
