"""Serving latency harness: cached engine vs. uncached per-request scoring.

Quantifies what the :class:`~repro.serving.engine.ScoringEngine` buys at
request time by answering the same stream of top-k requests two ways:

* **uncached** — the seed-repo path: left-pad the user's history, run the
  full model forward, build a Python ``set`` per user to mask seen items,
  rank (everything recomputed per request);
* **cached** — the engine path: representations, padded histories and the
  seen mask are materialized once and each request is a matmul + mask +
  ``argpartition``.

The report carries p50/p95 per-request latency and throughput for both
paths and the resulting speedup; :func:`write_report` persists it as the
``BENCH_serving.json`` artifact consumed by CI and the
``repro-ham bench-serve`` CLI command.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.bench_schema import write_bench_report

from repro.data.windows import pad_histories, pad_id_for
from repro.evaluation.ranking import top_k_items
from repro.models.base import SequentialRecommender
from repro.serving.engine import ScoringEngine

__all__ = ["LatencyStats", "ServingBenchReport", "run_serving_benchmark", "write_report"]


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution of one serving path over the request stream."""

    requests: int
    p50_ms: float
    p95_ms: float
    mean_ms: float
    throughput_rps: float

    @staticmethod
    def from_seconds(latencies: list[float]) -> "LatencyStats":
        """Build the stats row from raw per-request latencies (seconds)."""
        values = np.asarray(latencies, dtype=np.float64)
        total = float(values.sum())
        return LatencyStats(
            requests=len(latencies),
            p50_ms=float(np.percentile(values, 50) * 1e3),
            p95_ms=float(np.percentile(values, 95) * 1e3),
            mean_ms=float(values.mean() * 1e3),
            throughput_rps=float(len(latencies) / total) if total > 0 else float("inf"),
        )


@dataclass(frozen=True)
class ServingBenchReport:
    """Cached-vs-uncached serving comparison for one model/workload."""

    model_name: str
    num_users: int
    num_items: int
    num_requests: int
    users_per_request: int
    k: int
    cached: LatencyStats
    uncached: LatencyStats
    #: Median-latency ratio (uncached p50 / cached p50).  The median is
    #: the robust basis: scheduler/GC outliers would otherwise dominate a
    #: mean over sub-millisecond requests.
    speedup: float

    def as_dict(self) -> dict:
        """Plain-dict form for the ``BENCH_serving.json`` payload."""
        return asdict(self)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        return (
            f"{self.model_name}: cached p50 {self.cached.p50_ms:.3f} ms "
            f"(p95 {self.cached.p95_ms:.3f} ms, {self.cached.throughput_rps:.0f} req/s) "
            f"vs uncached p50 {self.uncached.p50_ms:.3f} ms "
            f"(p95 {self.uncached.p95_ms:.3f} ms, {self.uncached.throughput_rps:.0f} req/s) "
            f"-> {self.speedup:.1f}x"
        )


def _uncached_recommend(model: SequentialRecommender, histories: list[list[int]],
                        users: np.ndarray, k: int) -> np.ndarray:
    """The seed repo's per-request scoring path, kept as the baseline."""
    pad = pad_id_for(model.num_items)
    inputs = np.full((len(users), model.input_length), pad, dtype=np.int64)
    for row, user in enumerate(users):
        history = histories[user][-model.input_length:]
        if history:
            inputs[row, -len(history):] = history
    scores = model.score_all(np.asarray(users, dtype=np.int64), inputs)
    excluded = [set(histories[user]) for user in users]
    return top_k_items(scores, k, excluded=excluded)


def run_serving_benchmark(model: SequentialRecommender, histories: list[list[int]],
                          num_requests: int = 200, users_per_request: int = 1,
                          k: int = 10, seed: int = 0,
                          model_name: str | None = None) -> ServingBenchReport:
    """Time a stream of repeated top-k requests on both serving paths.

    Parameters
    ----------
    num_requests:
        Number of timed requests per path (each path also gets one
        untimed warm-up request).
    users_per_request:
        Users per request; 1 models interactive traffic, larger values
        model batched traffic.
    seed:
        Seed of the request-stream generator (both paths replay the
        identical stream).
    """
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if users_per_request < 1:
        raise ValueError("users_per_request must be positive")
    rng = np.random.default_rng(seed)
    requests = [
        rng.integers(0, model.num_users, size=users_per_request)
        for _ in range(num_requests + 1)
    ]

    engine = ScoringEngine(model, histories, exclude_seen=True, precompute=True)

    def timed(answer) -> list[float]:
        answer(requests[0])  # warm-up, untimed
        latencies = []
        for users in requests[1:]:
            start = time.perf_counter()
            answer(users)
            latencies.append(time.perf_counter() - start)
        return latencies

    uncached = timed(lambda users: _uncached_recommend(model, histories, users, k))
    cached = timed(lambda users: engine.top_k(users, k))

    cached_stats = LatencyStats.from_seconds(cached)
    uncached_stats = LatencyStats.from_seconds(uncached)
    return ServingBenchReport(
        model_name=model_name or type(model).__name__,
        num_users=model.num_users,
        num_items=model.num_items,
        num_requests=num_requests,
        users_per_request=users_per_request,
        k=k,
        cached=cached_stats,
        uncached=uncached_stats,
        speedup=uncached_stats.p50_ms / cached_stats.p50_ms
        if cached_stats.p50_ms > 0 else float("inf"),
    )


def write_report(report: ServingBenchReport, path) -> None:
    """Persist a report as the ``BENCH_serving.json`` artifact.

    Uses the unified envelope of :mod:`repro.bench_schema` (timestamp,
    host info, appended headline history) shared by every ``BENCH_*``
    artifact.
    """
    write_bench_report(path, "serving", report.as_dict(), headline={
        "speedup": report.speedup,
        "cached_p50_ms": report.cached.p50_ms,
        "uncached_p50_ms": report.uncached.p50_ms,
    })
