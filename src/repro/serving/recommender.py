"""Back-compat serving facade over the :class:`ScoringEngine`.

:class:`Recommender` keeps the original single-file ``repro.serving`` API
(``recommend`` / ``recommend_batch`` / ``score`` / ``similar_items``) but
delegates every scoring decision to one shared engine, so application
code written against the old interface transparently gains the cached,
batched scoring path.
"""

from __future__ import annotations

from repro.data.windows import pad_id_for
from repro.models.base import SequentialRecommender
from repro.serving.engine import Recommendation, ScoringEngine

__all__ = ["Recommendation", "Recommender"]


class Recommender:
    """Serve top-k recommendations from a trained model.

    Parameters
    ----------
    model:
        Any trained model of the study (gradient-based or count-based).
    histories:
        Per-user interaction histories the recommendations condition on —
        typically ``split.train_plus_valid()`` after training, or the full
        sequences in a production-style setting.
    exclude_seen:
        Exclude items already present in a user's history from the
        ranking (the paper's protocol).

    Notes
    -----
    To preserve the original class's contract — every request reflects
    the model's *current* weights and the caller's *current* history
    lists — the facade's engine snapshots the scoring head by view
    (``copy_weights=False``) and re-reads the histories on every request
    (``live_histories=True``).  Serving deployments that want the cached
    fast path should use :class:`~repro.serving.engine.ScoringEngine`
    directly.
    """

    def __init__(self, model: SequentialRecommender, histories: list[list[int]],
                 exclude_seen: bool = True):
        self.engine = ScoringEngine(model, histories, exclude_seen=exclude_seen,
                                    copy_weights=False, live_histories=True)
        self.model = model
        self.histories = histories
        self.exclude_seen = exclude_seen
        self.pad_id = pad_id_for(model.num_items)

    def observe(self, user: int, item: int) -> None:
        """Record a new interaction (appends to the caller's history list)."""
        self.engine.observe(user, item)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def recommend(self, user: int, k: int = 10) -> list[Recommendation]:
        """Top-``k`` recommendations for one user."""
        return self.engine.recommend(user, k)

    def recommend_batch(self, users: list[int], k: int = 10) -> list[list[Recommendation]]:
        """Top-``k`` recommendations for several users at once."""
        return self.engine.recommend_batch(users, k)

    def score(self, user: int, item: int) -> float:
        """The model score of one (user, candidate item) pair."""
        return self.engine.score(user, item)

    def similar_items(self, item: int, k: int = 10) -> list[Recommendation]:
        """Items most similar to ``item`` under the model's own geometry.

        Gradient-based models answer with cosine similarity between
        candidate-item embeddings; count-based models that expose a
        ``neighbors`` method (ItemKNN) answer from their similarity matrix.
        """
        if not 0 <= item < self.model.num_items:
            raise ValueError(f"item id {item} outside [0, {self.model.num_items})")
        if k < 1:
            raise ValueError("k must be positive")
        if hasattr(self.model, "neighbors"):
            return [
                Recommendation(item=neighbor, score=similarity, rank=rank)
                for rank, (neighbor, similarity) in enumerate(self.model.neighbors(item, k))
            ]
        return self.engine.similar_items(item, k)
