"""High-level recommendation serving: the batched scoring engine,
the back-compat recommender facade and HAM score explanations.

The paper motivates HAM through its run-time behaviour (Table 14): at
serving time a recommendation request has to be answered in microseconds
per user.  This package is the layer a downstream application would use
on top of a trained model:

* :class:`~repro.serving.engine.ScoringEngine` — a frozen snapshot of a
  trained model (candidate embedding table, item biases, per-user padded
  histories and cached representations, all materialized once under
  ``no_grad``) that answers ``score_all`` / ``top_k`` /
  ``recommend_batch`` requests with zero per-request re-embedding, plus
  incremental ``observe(user, item)`` updates for session-style traffic.
* :class:`~repro.serving.recommender.Recommender` — the original serving
  facade, now a thin wrapper over the engine.
* :func:`~repro.serving.explain.explain_ham_score` /
  :func:`~repro.serving.explain.explain_ham_scores` — per-factor
  decompositions of HAM's linear score (Eq. 7/8).
* :class:`~repro.serving.gateway.ServingGateway` — the online request
  front-end: coalesces concurrent single-user requests into engine
  micro-batches (bounded queue, ``max_batch``/``max_wait_ms`` flush
  policy) and layers a hot-user
  :class:`~repro.serving.cache.ScoreRowCache` (LRU + TTL) over the
  engine's representation cache; results stay bit-identical to direct
  engine calls (``repro-ham serve --gateway``).  Admission control
  sheds load with :class:`~repro.serving.gateway.GatewayOverloadedError`
  at the ``max_queue`` watermark, and per-request deadlines propagate
  into the engine (see ``docs/robustness.md``).
* :func:`~repro.serving.bench.run_serving_benchmark` — the cached-vs-
  uncached latency harness behind ``repro-ham bench-serve`` — and
  :func:`~repro.serving.gateway_bench.run_gateway_benchmark`, the
  batched-vs-unbatched throughput harness behind ``BENCH_gateway.json``.
* :func:`~repro.serving.deploy.engine_from_checkpoint` — rebuild a
  trained model from a ``.npz`` checkpoint and serve it (serially or
  sharded over worker processes) without the trainer stack
  (``repro-ham serve --checkpoint``).
"""

from repro.serving.engine import Recommendation, ScoringEngine
from repro.serving.cache import CacheStats, ScoreRowCache
from repro.serving.gateway import (
    GatewayFuture,
    GatewayOverloadedError,
    GatewayStats,
    ServingGateway,
)
from repro.serving.deploy import engine_from_checkpoint, model_from_checkpoint
from repro.serving.recommender import Recommender
from repro.serving.explain import (
    HAMScoreExplanation,
    explain_ham_score,
    explain_ham_scores,
)
from repro.serving.bench import (
    LatencyStats,
    ServingBenchReport,
    run_serving_benchmark,
    write_report,
)
from repro.serving.gateway_bench import (
    GatewayBenchReport,
    run_gateway_benchmark,
    write_gateway_report,
)

__all__ = [
    "Recommendation",
    "ScoringEngine",
    "CacheStats",
    "ScoreRowCache",
    "GatewayFuture",
    "GatewayOverloadedError",
    "GatewayStats",
    "ServingGateway",
    "Recommender",
    "engine_from_checkpoint",
    "model_from_checkpoint",
    "HAMScoreExplanation",
    "explain_ham_score",
    "explain_ham_scores",
    "LatencyStats",
    "ServingBenchReport",
    "run_serving_benchmark",
    "write_report",
    "GatewayBenchReport",
    "run_gateway_benchmark",
    "write_gateway_report",
]
