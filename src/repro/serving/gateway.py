"""Online serving gateway: async micro-batching over the scoring engine.

The engines serve *batches* cheaply — one ``(B, d) @ (d, num_items)``
matmul amortizes all per-request overhead — but online traffic arrives
as *single-user* requests.  The :class:`ServingGateway` is the front-end
that reconciles the two: callers submit requests from any thread and get
a :class:`GatewayFuture` back immediately; a background flusher thread
coalesces whatever is queued into one engine batch and resolves all the
futures at once.  A batch is flushed as soon as either

* ``max_batch`` requests are waiting (**flush-on-full**), or
* the oldest queued request has waited ``max_wait_ms`` milliseconds
  (**flush-on-deadline**) — the knob that trades p95 latency against
  batching efficiency (see ``docs/serving.md``).

Layered over the engine's per-user *representation* cache, the gateway
keeps a :class:`~repro.serving.cache.ScoreRowCache` of finished *score
rows* (LRU + TTL): a hot user's repeat request skips the engine
entirely and re-ranks the cached ``(num_items,)`` row.  Because the
cached row is bit-for-bit the row the engine would recompute (until
``observe``/``refresh`` invalidates it), gateway results are
**bit-identical** to direct ``ScoringEngine.top_k`` calls — asserted by
the test suite and the ``BENCH_gateway.json`` harness.

``observe(user, item)`` forwards the interaction to the engine (which
routes it to the owning shard when the engine is a
:class:`~repro.parallel.sharded.ShardedScoringEngine`) and drops only
that user's cached rows.

The gateway works over any engine exposing the scoring API
(``score_all`` / ``masked_scores`` / ``top_k`` / ``observe``) — the
serial :class:`~repro.serving.engine.ScoringEngine` and the sharded
multi-process engine alike.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.ranking import top_k_items
from repro.serving.cache import CacheStats, ScoreRowCache
from repro.serving.engine import Recommendation

__all__ = ["GatewayFuture", "GatewayStats", "ServingGateway"]


class GatewayFuture:
    """Handle to one in-flight gateway request.

    Resolved by the flusher thread; :meth:`result` blocks the caller
    until then.  Futures are single-assignment: exactly one of a value
    or an error is ever set.
    """

    __slots__ = ("_event", "_ranked", "_scores", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._ranked: np.ndarray | None = None
        self._scores: np.ndarray | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the request has been resolved (value or error)."""
        return self._event.is_set()

    def _resolve(self, ranked: np.ndarray, scores: np.ndarray) -> None:
        self._ranked = ranked
        self._scores = scores
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """The ranked top-k item ids (best first), blocking until ready.

        Raises the batch's error if the engine call failed, and
        ``TimeoutError`` if ``timeout`` seconds elapse first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("gateway request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._ranked

    def recommendations(self, timeout: float | None = None) -> list[Recommendation]:
        """The result as :class:`Recommendation` entries (item/score/rank)."""
        ranked = self.result(timeout)
        return [
            Recommendation(item=int(item), score=float(score), rank=rank)
            for rank, (item, score) in enumerate(zip(ranked, self._scores))
        ]


@dataclass(frozen=True)
class GatewayStats:
    """Operational counters of one :class:`ServingGateway`.

    ``flush_full`` / ``flush_deadline`` / ``flush_drain`` partition the
    batches by what triggered them (queue reached ``max_batch``, the
    oldest request hit ``max_wait_ms``, or the close-time drain).
    ``cache`` is the embedded :class:`~repro.serving.cache.CacheStats`
    snapshot, or ``None`` when the gateway was built with caching off.
    """

    requests: int
    batches: int
    flush_full: int
    flush_deadline: int
    flush_drain: int
    max_batch_observed: int
    mean_batch_size: float
    cache: CacheStats | None = None

    def as_dict(self) -> dict:
        """Plain-dict form with the cache stats inlined."""
        payload = {
            "requests": self.requests,
            "batches": self.batches,
            "flush_full": self.flush_full,
            "flush_deadline": self.flush_deadline,
            "flush_drain": self.flush_drain,
            "max_batch_observed": self.max_batch_observed,
            "mean_batch_size": self.mean_batch_size,
        }
        if self.cache is not None:
            payload["cache"] = self.cache.as_dict()
        return payload


@dataclass
class _Request:
    """One queued request plus its arrival stamp and future."""

    user: int
    k: int
    masked: bool
    arrived: float
    future: GatewayFuture = field(default_factory=GatewayFuture)


class ServingGateway:
    """Async micro-batching front-end over a scoring engine.

    Parameters
    ----------
    engine:
        The engine requests are served from — a serial
        :class:`~repro.serving.engine.ScoringEngine` or a
        :class:`~repro.parallel.sharded.ShardedScoringEngine`.  The
        gateway serializes every engine call behind one lock, so the
        engine needs no thread-safety of its own.
    max_batch:
        Flush as soon as this many requests are queued.  Larger batches
        amortize more per-call overhead; ``max_wait_ms`` bounds how long
        a lone request waits for company.
    max_wait_ms:
        Maximum milliseconds the *oldest* queued request may wait before
        its batch is flushed regardless of size — the direct p95-latency
        knob.  ``0`` flushes every poll (micro-batches still form under
        concurrent bursts).
    cache_size:
        Capacity of the hot-user score-row cache; ``0`` disables
        caching entirely.
    cache_ttl_s:
        Optional TTL for cached rows (seconds); ``None`` keeps rows
        until eviction or invalidation.
    own_engine:
        When true, :meth:`close` also closes the engine.

    Notes
    -----
    The gateway starts its flusher thread at construction and must be
    closed (it is also a context manager).  Requests still queued at
    close time are drained, not dropped.
    """

    def __init__(self, engine, max_batch: int = 32, max_wait_ms: float = 2.0,
                 cache_size: int = 256, cache_ttl_s: float | None = None,
                 own_engine: bool = False):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative (0 disables)")
        if cache_ttl_s is not None and cache_ttl_s <= 0:
            raise ValueError("cache_ttl_s must be positive (or None to disable)")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.cache = (ScoreRowCache(cache_size, ttl_s=cache_ttl_s)
                      if cache_size else None)
        self._own_engine = own_engine

        self._lock = threading.Lock()
        self._queued = threading.Condition(self._lock)
        self._queue: deque[_Request] = deque()
        self._closed = False

        # Engine + cache access is serialized: the flusher thread and
        # observe()/refresh() callers never touch them concurrently.
        self._engine_lock = threading.Lock()

        self._requests = 0
        self._batches = 0
        self._flush_full = 0
        self._flush_deadline = 0
        self._flush_drain = 0
        self._batched_requests = 0
        self._max_batch_observed = 0

        self._thread = threading.Thread(target=self._run, name="gateway-flusher",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Request API
    # ------------------------------------------------------------------ #
    def submit(self, user: int, k: int = 10,
               exclude_seen: bool | None = None) -> GatewayFuture:
        """Enqueue one single-user top-k request; returns immediately.

        ``exclude_seen=None`` inherits the engine's default.  Raises at
        the call site on invalid ids so bad requests never poison a
        batch.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if not 0 <= user < self.engine.num_users:
            raise ValueError(f"user id {user} outside [0, {self.engine.num_users})")
        masked = bool(self.engine.exclude_seen if exclude_seen is None
                      else exclude_seen)
        request = _Request(user=int(user), k=int(k), masked=masked,
                           arrived=time.monotonic())
        with self._lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            self._queue.append(request)
            self._requests += 1
            self._queued.notify_all()
        return request.future

    def top_k(self, user: int, k: int = 10,
              exclude_seen: bool | None = None) -> np.ndarray:
        """Blocking top-k for one user (``submit`` + ``result``)."""
        return self.submit(user, k, exclude_seen=exclude_seen).result()

    def recommend(self, user: int, k: int = 10) -> list[Recommendation]:
        """Blocking :class:`Recommendation` list for one user."""
        return self.submit(user, k).recommendations()

    def observe(self, user: int, item: int) -> None:
        """Record a new interaction and invalidate the user's cached rows.

        Delegates to ``engine.observe`` — which a sharded engine routes
        to the owning user-range worker — then drops the user's score
        rows from the gateway cache so the next request re-scores.
        """
        with self._engine_lock:
            self.engine.observe(user, item)
            if self.cache is not None:
                self.cache.invalidate_user(user)

    def refresh(self) -> None:
        """Re-snapshot the engine's weights and clear the row cache.

        Serial engines only: a sharded engine's frozen table lives in
        an already-published shared-memory segment, so refreshing it
        means building a new engine (raises ``NotImplementedError``).
        """
        refresh = getattr(self.engine, "refresh", None)
        if refresh is None:
            raise NotImplementedError(
                f"{type(self.engine).__name__} cannot refresh in place; "
                "build a new engine (and gateway) from the updated model"
            )
        with self._engine_lock:
            refresh()
            if self.cache is not None:
                self.cache.clear()

    def stats(self) -> GatewayStats:
        """Operational counter snapshot (see :class:`GatewayStats`)."""
        # The cache is only ever touched under the engine lock (its own
        # documented contract), so its snapshot is taken there; the two
        # locks are acquired sequentially, never nested.
        cache_stats = None
        if self.cache is not None:
            with self._engine_lock:
                cache_stats = self.cache.stats()
        with self._lock:
            batches = self._batches
            mean = self._batched_requests / batches if batches else 0.0
            snapshot = GatewayStats(
                requests=self._requests,
                batches=batches,
                flush_full=self._flush_full,
                flush_deadline=self._flush_deadline,
                flush_drain=self._flush_drain,
                max_batch_observed=self._max_batch_observed,
                mean_batch_size=mean,
                cache=cache_stats,
            )
        return snapshot

    # ------------------------------------------------------------------ #
    # Flusher
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            batch, reason = self._next_batch()
            if batch is None:
                return
            # Count the batch *before* resolving its futures: a caller
            # unblocked by result() may read stats() immediately and
            # must see the batch that served it.
            with self._lock:
                self._batches += 1
                self._batched_requests += len(batch)
                self._max_batch_observed = max(self._max_batch_observed, len(batch))
                if reason == "full":
                    self._flush_full += 1
                elif reason == "deadline":
                    self._flush_deadline += 1
                else:
                    self._flush_drain += 1
            self._execute(batch)

    def _next_batch(self) -> tuple[list[_Request] | None, str]:
        """Block until a batch is due; ``(None, ...)`` means shut down."""
        with self._lock:
            while True:
                if self._queue:
                    if self._closed:
                        reason = "drain"
                        break
                    if len(self._queue) >= self.max_batch:
                        reason = "full"
                        break
                    # The deadline is anchored at the *arrival* of the
                    # oldest request, so time a request spent queued
                    # behind a running batch counts against it.
                    deadline = self._queue[0].arrived + self.max_wait_s
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        reason = "deadline"
                        break
                    self._queued.wait(timeout=remaining)
                elif self._closed:
                    return None, "shutdown"
                else:
                    self._queued.wait()
            batch = [self._queue.popleft()
                     for _ in range(min(len(self._queue), self.max_batch))]
        return batch, reason

    def _execute(self, batch: list[_Request]) -> None:
        try:
            with self._engine_lock:
                rows = self._score_rows(batch)
            for request, row in zip(batch, rows):
                # Per-row ranking is bit-identical to the engine's batch
                # call: argpartition/argsort operate row-independently.
                ranked = top_k_items(row[None, :], request.k)[0]
                request.future._resolve(ranked, row[ranked])
        except BaseException as error:
            # Resolve with the error and keep the flusher alive: a dead
            # flusher would strand every future submitted afterwards,
            # which is strictly worse than reporting the failure
            # per-batch.
            for request in batch:
                if not request.future.done():
                    request.future._fail(error)

    def _score_rows(self, batch: list[_Request]) -> list[np.ndarray]:
        """One score row per request: cache hits + one engine batch."""
        rows: dict[tuple[int, bool], np.ndarray] = {}
        pending: list[tuple[int, bool]] = []
        for request in batch:
            key = (request.user, request.masked)
            if key in rows or key in pending:
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                rows[key] = cached
            else:
                pending.append(key)
        for masked in (True, False):
            users = [user for user, flag in pending if flag == masked]
            if not users:
                continue
            user_array = np.asarray(users, dtype=np.int64)
            scores = (self.engine.masked_scores(user_array) if masked
                      else self.engine.score_all(user_array))
            for position, user in enumerate(users):
                if self.cache is not None:
                    # put() returns the cache's owned copy — serve that
                    # instead of copying the row a second time.
                    row = self.cache.put((user, masked), scores[position])
                else:
                    row = np.array(scores[position], copy=True)
                rows[(user, masked)] = row
        return [rows[(request.user, request.masked)] for request in batch]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 30.0) -> None:
        """Drain queued requests, stop the flusher and (optionally) the engine.

        Raises ``RuntimeError`` if the flusher fails to drain within
        ``timeout`` seconds — in that case an owned engine is left
        open, since tearing it down under an in-flight batch would turn
        pending results into shutdown errors.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queued.notify_all()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"gateway flusher did not drain within {timeout:.1f}s; "
                "the engine was left open"
            )
        if self._own_engine:
            self.engine.close()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
