"""Online serving gateway: async micro-batching over the scoring engine.

The engines serve *batches* cheaply — one ``(B, d) @ (d, num_items)``
matmul amortizes all per-request overhead — but online traffic arrives
as *single-user* requests.  The :class:`ServingGateway` is the front-end
that reconciles the two: callers submit requests from any thread and get
a :class:`GatewayFuture` back immediately; a background flusher thread
coalesces whatever is queued into one engine batch and resolves all the
futures at once.  A batch is flushed as soon as either

* ``max_batch`` requests are waiting (**flush-on-full**), or
* the oldest queued request has waited ``max_wait_ms`` milliseconds
  (**flush-on-deadline**) — the knob that trades p95 latency against
  batching efficiency (see ``docs/serving.md``).

Layered over the engine's per-user *representation* cache, the gateway
keeps a :class:`~repro.serving.cache.ScoreRowCache` of finished *score
rows* (LRU + TTL): a hot user's repeat request skips the engine
entirely and re-ranks the cached ``(num_items,)`` row.  Because the
cached row is bit-for-bit the row the engine would recompute (until
``observe``/``refresh`` invalidates it), gateway results are
**bit-identical** to direct ``ScoringEngine.top_k`` calls — asserted by
the test suite and the ``BENCH_gateway.json`` harness.

``observe(user, item)`` forwards the interaction to the engine (which
routes it to the owning shard when the engine is a
:class:`~repro.parallel.sharded.ShardedScoringEngine`) and drops only
that user's cached rows.

The gateway works over any engine exposing the scoring API
(``score_all`` / ``masked_scores`` / ``top_k`` / ``observe``) — the
serial :class:`~repro.serving.engine.ScoringEngine`, the sharded
multi-process engine, and the multi-node
:class:`~repro.cluster.router.ClusterRouter` alike
(:meth:`ServingGateway.over_cluster` wires the last one up directly),
so micro-batching, caching and shedding work unchanged over the wire.

Admission control and deadlines
-------------------------------
Under overload a bounded queue that *blocks* converts every caller into
a hung thread; the gateway sheds instead.  With ``max_queue`` set,
:meth:`submit` fails fast with :class:`GatewayOverloadedError` once that
many requests are queued — the error carries a ``retry_after_s`` hint
derived from the observed batch service time (EWMA) and the current
backlog.  Per-request deadlines (``submit(..., timeout=...)``) expire
queued requests before they waste a flush, bound how long a flush waits
on the engine (propagated as the engine's own ``timeout=`` when it
advertises ``supports_deadlines``), and surface as ``TimeoutError`` on
the future.  ``health()`` reports queue depth, flusher liveness and —
for a sharded engine — the per-shard supervision state underneath.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.ranking import top_k_items
from repro.serving.cache import CacheStats, ScoreRowCache
from repro.serving.engine import Recommendation

__all__ = ["GatewayFuture", "GatewayStats", "ServingGateway",
           "GatewayOverloadedError"]

#: Weight of the newest batch in the service-time EWMA behind the
#: ``retry_after_s`` hint of :class:`GatewayOverloadedError`.
_EWMA_ALPHA = 0.2

#: Cold-start floor of the ``retry_after_s`` hint: before the first
#: batch completes there is no observed service time, and a gateway
#: configured with ``max_wait_ms=0`` would otherwise hint ~0 seconds —
#: telling shed clients to hammer it during the thundering-herd moment
#: it is least able to absorb.
_COLD_START_RETRY_S = 0.05


class GatewayOverloadedError(RuntimeError):
    """The gateway queue is at its high watermark; the request was shed.

    Raised by :meth:`ServingGateway.submit` instead of queueing (or
    blocking) when ``max_queue`` requests are already waiting.
    ``retry_after_s`` estimates when capacity frees up — the observed
    batch service time scaled by the backlog — so callers can back off
    instead of hammering the gateway.
    """

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"gateway queue full; retry in ~{retry_after_s:.3f}s")
        self.retry_after_s = retry_after_s


class GatewayFuture:
    """Handle to one in-flight gateway request.

    Resolved by the flusher thread; :meth:`result` blocks the caller
    until then.  Futures are single-assignment: exactly one of a value
    or an error is ever set.
    """

    __slots__ = ("_event", "_ranked", "_scores", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._ranked: np.ndarray | None = None
        self._scores: np.ndarray | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the request has been resolved (value or error)."""
        return self._event.is_set()

    def _resolve(self, ranked: np.ndarray, scores: np.ndarray) -> None:
        self._ranked = ranked
        self._scores = scores
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """The ranked top-k item ids (best first), blocking until ready.

        Raises the batch's error if the engine call failed, and
        ``TimeoutError`` if ``timeout`` seconds elapse first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("gateway request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._ranked

    def recommendations(self, timeout: float | None = None) -> list[Recommendation]:
        """The result as :class:`Recommendation` entries (item/score/rank)."""
        ranked = self.result(timeout)
        return [
            Recommendation(item=int(item), score=float(score), rank=rank)
            for rank, (item, score) in enumerate(zip(ranked, self._scores))
        ]


@dataclass(frozen=True)
class GatewayStats:
    """Operational counters of one :class:`ServingGateway`.

    ``flush_full`` / ``flush_deadline`` / ``flush_drain`` partition the
    batches by what triggered them (queue reached ``max_batch``, the
    oldest request hit ``max_wait_ms``, or the close-time drain).
    ``shed`` counts submissions refused with
    :class:`GatewayOverloadedError` at the ``max_queue`` watermark, and
    ``expired`` counts requests failed by their own deadline (while
    queued or at flush time).  ``cache`` is the embedded
    :class:`~repro.serving.cache.CacheStats` snapshot, or ``None`` when
    the gateway was built with caching off.
    """

    requests: int
    batches: int
    flush_full: int
    flush_deadline: int
    flush_drain: int
    max_batch_observed: int
    mean_batch_size: float
    shed: int = 0
    expired: int = 0
    cache: CacheStats | None = None

    def as_dict(self) -> dict:
        """Plain-dict form with the cache stats inlined."""
        payload = {
            "requests": self.requests,
            "batches": self.batches,
            "flush_full": self.flush_full,
            "flush_deadline": self.flush_deadline,
            "flush_drain": self.flush_drain,
            "max_batch_observed": self.max_batch_observed,
            "mean_batch_size": self.mean_batch_size,
            "shed": self.shed,
            "expired": self.expired,
        }
        if self.cache is not None:
            payload["cache"] = self.cache.as_dict()
        return payload


@dataclass
class _Request:
    """One queued request plus its arrival stamp, deadline and future.

    ``deadline`` is a monotonic-clock instant (``None`` = no deadline):
    the flusher fails the request with ``TimeoutError`` once it passes,
    whether the request is still queued or about to be batched.
    """

    user: int
    k: int
    masked: bool
    arrived: float
    deadline: float | None = None
    future: GatewayFuture = field(default_factory=GatewayFuture)


class ServingGateway:
    """Async micro-batching front-end over a scoring engine.

    Parameters
    ----------
    engine:
        The engine requests are served from — a serial
        :class:`~repro.serving.engine.ScoringEngine` or a
        :class:`~repro.parallel.sharded.ShardedScoringEngine`.  The
        gateway serializes every engine call behind one lock, so the
        engine needs no thread-safety of its own.
    max_batch:
        Flush as soon as this many requests are queued.  Larger batches
        amortize more per-call overhead; ``max_wait_ms`` bounds how long
        a lone request waits for company.
    max_wait_ms:
        Maximum milliseconds the *oldest* queued request may wait before
        its batch is flushed regardless of size — the direct p95-latency
        knob.  ``0`` flushes every poll (micro-batches still form under
        concurrent bursts).
    cache_size:
        Capacity of the hot-user score-row cache; ``0`` disables
        caching entirely.
    cache_ttl_s:
        Optional TTL for cached rows (seconds); ``None`` keeps rows
        until eviction or invalidation.
    max_queue:
        High-watermark admission control: with this many requests
        already queued, :meth:`submit` sheds (raises
        :class:`GatewayOverloadedError` with a retry-after hint) instead
        of queueing.  ``None`` (default) never sheds — the pre-existing
        behaviour.
    request_timeout_s:
        Default per-request deadline applied to every :meth:`submit`
        that does not pass its own ``timeout``; ``None`` (default)
        means no deadline.
    retrieval_mode:
        ``"exact"`` (default) scores the full catalogue per batch and
        feeds the score-row cache.  ``"ann"`` serves batches through
        the engine's ANN candidate stage (``top_k_scored(mode="ann")``)
        — sub-linear in catalogue size, bypassing the row cache (there
        is no full row to cache); the engine must have an ANN index
        attached.
    n_probe / candidate_multiplier:
        Optional ANN dial overrides applied to every batch in
        ``retrieval_mode="ann"`` (``None`` inherits the index
        defaults).
    own_engine:
        When true, :meth:`close` also closes the engine.

    Notes
    -----
    The gateway starts its flusher thread at construction and must be
    closed (it is also a context manager).  Requests still queued at
    close time are drained, not dropped.
    """

    def __init__(self, engine, max_batch: int = 32, max_wait_ms: float = 2.0,
                 cache_size: int = 256, cache_ttl_s: float | None = None,
                 max_queue: int | None = None,
                 request_timeout_s: float | None = None,
                 retrieval_mode: str = "exact",
                 n_probe: int | None = None,
                 candidate_multiplier: int | None = None,
                 own_engine: bool = False):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative (0 disables)")
        if cache_ttl_s is not None and cache_ttl_s <= 0:
            raise ValueError("cache_ttl_s must be positive (or None to disable)")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be positive (or None to disable)")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")
        if retrieval_mode not in ("exact", "ann"):
            raise ValueError(
                f"retrieval_mode must be 'exact' or 'ann', got {retrieval_mode!r}")
        self.retrieval_mode = retrieval_mode
        self.n_probe = None if n_probe is None else int(n_probe)
        self.candidate_multiplier = (None if candidate_multiplier is None
                                     else int(candidate_multiplier))
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.max_queue = None if max_queue is None else int(max_queue)
        self.request_timeout_s = request_timeout_s
        self.cache = (ScoreRowCache(cache_size, ttl_s=cache_ttl_s)
                      if cache_size else None)
        self._own_engine = own_engine
        # Propagate request deadlines into engines that accept them
        # (the sharded engine advertises the capability).
        self._engine_deadlines = bool(getattr(engine, "supports_deadlines",
                                              False))

        self._lock = threading.Lock()
        self._queued = threading.Condition(self._lock)
        self._queue: deque[_Request] = deque()
        self._closed = False

        # Engine + cache access is serialized: the flusher thread and
        # observe()/refresh() callers never touch them concurrently.
        self._engine_lock = threading.Lock()

        self._requests = 0
        self._batches = 0
        self._flush_full = 0
        self._flush_deadline = 0
        self._flush_drain = 0
        self._batched_requests = 0
        self._max_batch_observed = 0
        self._shed = 0
        self._expired = 0
        # EWMA of batch service seconds, behind the retry-after hint.
        self._service_ewma_s: float | None = None

        self._thread = threading.Thread(target=self._run, name="gateway-flusher",
                                        daemon=True)
        self._thread.start()

    @classmethod
    def over_cluster(cls, addresses: list[str], *, replication: int = 2,
                     n_ranges: int | None = None,
                     request_timeout_s: float | None = None,
                     heartbeat_interval_s: float = 2.0,
                     **gateway_kwargs) -> "ServingGateway":
        """A gateway whose engine is a :class:`ClusterRouter` over nodes.

        The cluster backend: requests are micro-batched, cached and
        shed exactly as over a local engine, then fanned out by
        consistent user-hash to the ``addresses`` node table with
        replica failover (see :mod:`repro.cluster.router`).
        ``observe()`` is routed to the owning node and replayed to its
        replicas; deadlines propagate into the router's retry budget.
        The router is owned: closing the gateway closes it.
        """
        from repro.cluster.router import ClusterRouter

        router = ClusterRouter(addresses, replication=replication,
                               n_ranges=n_ranges,
                               heartbeat_interval_s=heartbeat_interval_s,
                               **({"request_timeout_s": request_timeout_s}
                                  if request_timeout_s is not None else {}))
        return cls(router, own_engine=True, **gateway_kwargs)

    # ------------------------------------------------------------------ #
    # Request API
    # ------------------------------------------------------------------ #
    def submit(self, user: int, k: int = 10,
               exclude_seen: bool | None = None,
               timeout: float | None = None) -> GatewayFuture:
        """Enqueue one single-user top-k request; returns immediately.

        ``exclude_seen=None`` inherits the engine's default.  Raises at
        the call site on invalid ids so bad requests never poison a
        batch, and with :class:`GatewayOverloadedError` when the queue
        is at its ``max_queue`` watermark.

        ``timeout`` (seconds, default: the gateway's
        ``request_timeout_s``) is the request's end-to-end deadline: it
        bounds queueing *and* the engine flush, and an expired request
        fails with ``TimeoutError`` — pass the same value to
        :meth:`GatewayFuture.result` to bound the caller's wait too.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if not 0 <= user < self.engine.num_users:
            raise ValueError(f"user id {user} outside [0, {self.engine.num_users})")
        if timeout is None:
            timeout = self.request_timeout_s
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        masked = bool(self.engine.exclude_seen if exclude_seen is None
                      else exclude_seen)
        now = time.monotonic()
        request = _Request(user=int(user), k=int(k), masked=masked,
                           arrived=now,
                           deadline=None if timeout is None else now + timeout)
        with self._lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            if self.max_queue is not None and len(self._queue) >= self.max_queue:
                self._shed += 1
                raise GatewayOverloadedError(self._retry_after_locked())
            self._queue.append(request)
            self._requests += 1
            self._queued.notify_all()
        return request.future

    def _retry_after_locked(self) -> float:
        """Retry hint for a shed request (callers hold ``self._lock``).

        Batches needed to drain the backlog times the observed batch
        service time (EWMA), floored at the flush wait — a rough "when
        does capacity free up", not a guarantee.
        """
        service = self._service_ewma_s
        if service is None:
            # No batch has completed yet (cold start): seed the estimate
            # from the configured flush wait, floored so the hint stays
            # usable even with max_wait_ms=0.
            service = max(self.max_wait_s, _COLD_START_RETRY_S)
        backlog_batches = max(1, -(-len(self._queue) // self.max_batch))
        return max(service * backlog_batches, self.max_wait_s, 1e-3)

    def top_k(self, user: int, k: int = 10,
              exclude_seen: bool | None = None,
              timeout: float | None = None) -> np.ndarray:
        """Blocking top-k for one user (``submit`` + ``result``)."""
        future = self.submit(user, k, exclude_seen=exclude_seen,
                             timeout=timeout)
        return future.result(timeout)

    def recommend(self, user: int, k: int = 10) -> list[Recommendation]:
        """Blocking :class:`Recommendation` list for one user."""
        return self.submit(user, k).recommendations()

    def observe(self, user: int, item: int) -> None:
        """Record a new interaction and invalidate the user's cached rows.

        Delegates to ``engine.observe`` — which a sharded engine routes
        to the owning user-range worker — then drops the user's score
        rows from the gateway cache so the next request re-scores.
        """
        with self._engine_lock:
            self.engine.observe(user, item)
            if self.cache is not None:
                self.cache.invalidate_user(user)

    def refresh(self) -> None:
        """Re-snapshot the engine's weights and clear the row cache.

        Serial engines only: a sharded engine's frozen table lives in
        an already-published shared-memory segment, so refreshing it
        means building a new engine (raises ``NotImplementedError``).
        """
        refresh = getattr(self.engine, "refresh", None)
        if refresh is None:
            raise NotImplementedError(
                f"{type(self.engine).__name__} cannot refresh in place; "
                "build a new engine (and gateway) from the updated model"
            )
        with self._engine_lock:
            refresh()
            if self.cache is not None:
                self.cache.clear()

    def stats(self) -> GatewayStats:
        """Operational counter snapshot (see :class:`GatewayStats`)."""
        # The cache is only ever touched under the engine lock (its own
        # documented contract), so its snapshot is taken there; the two
        # locks are acquired sequentially, never nested.
        cache_stats = None
        if self.cache is not None:
            with self._engine_lock:
                cache_stats = self.cache.stats()
        with self._lock:
            batches = self._batches
            mean = self._batched_requests / batches if batches else 0.0
            snapshot = GatewayStats(
                requests=self._requests,
                batches=batches,
                flush_full=self._flush_full,
                flush_deadline=self._flush_deadline,
                flush_drain=self._flush_drain,
                max_batch_observed=self._max_batch_observed,
                mean_batch_size=mean,
                shed=self._shed,
                expired=self._expired,
                cache=cache_stats,
            )
        return snapshot

    def health(self) -> dict:
        """Liveness snapshot of the gateway and its engine, JSON-ready.

        Reports the queue depth against the shedding watermark, whether
        the flusher thread is alive, and — when the engine exposes its
        own ``health()`` (the sharded engine does) — the per-shard
        supervision state nested under ``"engine"``.
        """
        with self._lock:
            payload = {
                "closed": self._closed,
                "flusher_alive": self._thread.is_alive(),
                "queue_depth": len(self._queue),
                "max_queue": self.max_queue,
            }
        engine_health = getattr(self.engine, "health", None)
        if engine_health is not None:
            payload["engine"] = engine_health()
        return payload

    # ------------------------------------------------------------------ #
    # Flusher
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            batch, reason = self._next_batch()
            if batch is None:
                return
            # Count the batch *before* resolving its futures: a caller
            # unblocked by result() may read stats() immediately and
            # must see the batch that served it.
            with self._lock:
                self._batches += 1
                self._batched_requests += len(batch)
                self._max_batch_observed = max(self._max_batch_observed, len(batch))
                if reason == "full":
                    self._flush_full += 1
                elif reason == "deadline":
                    self._flush_deadline += 1
                else:
                    self._flush_drain += 1
            self._execute(batch)

    def _expire_queued_locked(self) -> None:
        """Fail queued requests whose deadline has passed (lock held)."""
        now = time.monotonic()
        if not any(request.deadline is not None and request.deadline <= now
                   for request in self._queue):
            return
        keep: deque[_Request] = deque()
        for request in self._queue:
            if request.deadline is not None and request.deadline <= now:
                self._expired += 1
                request.future._fail(
                    TimeoutError("gateway request deadline expired while queued"))
            else:
                keep.append(request)
        self._queue = keep

    def _next_batch(self) -> tuple[list[_Request] | None, str]:
        """Block until a batch is due; ``(None, ...)`` means shut down."""
        with self._lock:
            while True:
                self._expire_queued_locked()
                if self._queue:
                    if self._closed:
                        reason = "drain"
                        break
                    if len(self._queue) >= self.max_batch:
                        reason = "full"
                        break
                    # The flush deadline is anchored at the *arrival* of
                    # the oldest request, so time a request spent queued
                    # behind a running batch counts against it — and it
                    # never waits past the earliest per-request deadline
                    # in the queue, so expiries surface promptly.
                    flush_at = self._queue[0].arrived + self.max_wait_s
                    next_deadline = min(
                        (request.deadline for request in self._queue
                         if request.deadline is not None),
                        default=None)
                    if next_deadline is not None:
                        flush_at = min(flush_at, next_deadline)
                    remaining = flush_at - time.monotonic()
                    if remaining <= 0:
                        reason = "deadline"
                        break
                    self._queued.wait(timeout=remaining)
                elif self._closed:
                    return None, "shutdown"
                else:
                    self._queued.wait()
            batch = [self._queue.popleft()
                     for _ in range(min(len(self._queue), self.max_batch))]
        return batch, reason

    def _execute(self, batch: list[_Request]) -> None:
        started = time.monotonic()
        # A deadline that passed while the request waited for this flush
        # fails here, before any engine work is spent on it.
        live: list[_Request] = []
        expired = 0
        for request in batch:
            if request.deadline is not None and request.deadline <= started:
                expired += 1
                request.future._fail(
                    TimeoutError("gateway request deadline expired before flush"))
            else:
                live.append(request)
        if expired:
            with self._lock:
                self._expired += expired
        if not live:
            return
        # The engine call is bounded by the earliest deadline in the
        # batch (engines advertising supports_deadlines only).
        engine_timeout = None
        if self._engine_deadlines:
            deadlines = [request.deadline for request in live
                         if request.deadline is not None]
            if deadlines:
                engine_timeout = max(min(deadlines) - started, 1e-3)
        try:
            if self.retrieval_mode == "ann":
                with self._engine_lock:
                    resolved = self._ann_results(live, engine_timeout)
                for request, (ranked, scores) in zip(live, resolved):
                    request.future._resolve(ranked, scores)
            else:
                with self._engine_lock:
                    rows = self._score_rows(live, engine_timeout)
                for request, row in zip(live, rows):
                    # Per-row ranking is bit-identical to the engine's
                    # batch call: argpartition/argsort operate
                    # row-independently.
                    ranked = top_k_items(row[None, :], request.k)[0]
                    request.future._resolve(ranked, row[ranked])
        except BaseException as error:
            # Resolve with the error and keep the flusher alive: a dead
            # flusher would strand every future submitted afterwards,
            # which is strictly worse than reporting the failure
            # per-batch.
            timed_out = 0
            for request in live:
                if not request.future.done():
                    request.future._fail(error)
                    if isinstance(error, TimeoutError):
                        timed_out += 1
            if timed_out:
                with self._lock:
                    self._expired += timed_out
        finally:
            elapsed = time.monotonic() - started
            with self._lock:
                if self._service_ewma_s is None:
                    self._service_ewma_s = elapsed
                else:
                    self._service_ewma_s = (
                        _EWMA_ALPHA * elapsed
                        + (1.0 - _EWMA_ALPHA) * self._service_ewma_s)

    def _ann_results(self, batch: list[_Request],
                     engine_timeout: float | None = None,
                     ) -> list[tuple[np.ndarray, np.ndarray]]:
        """``(ranked, scores)`` per request through the ANN stage.

        Requests are grouped by their mask flag and deduplicated by
        user; each group is served with one ``top_k_scored`` call at
        the group's largest ``k``, and narrower requests take a prefix
        of their user's row (top-k lists nest by construction).  The
        score-row cache is not involved — the whole point of the ANN
        path is never materializing ``(num_items,)`` rows.
        """
        engine_kwargs = {}
        if engine_timeout is not None:
            engine_kwargs["timeout"] = engine_timeout
        rows: dict[tuple[int, bool], tuple[np.ndarray, np.ndarray]] = {}
        for masked in (True, False):
            requests = [request for request in batch if request.masked == masked]
            if not requests:
                continue
            users = sorted({request.user for request in requests})
            kmax = max(request.k for request in requests)
            ranked, scores = self.engine.top_k_scored(
                np.asarray(users, dtype=np.int64), kmax,
                exclude_seen=masked, mode="ann", n_probe=self.n_probe,
                candidate_multiplier=self.candidate_multiplier,
                **engine_kwargs)
            for position, user in enumerate(users):
                rows[(user, masked)] = (ranked[position], scores[position])
        results = []
        for request in batch:
            ranked, scores = rows[(request.user, request.masked)]
            width = min(request.k, ranked.shape[0])
            results.append((ranked[:width], scores[:width]))
        return results

    def _score_rows(self, batch: list[_Request],
                    engine_timeout: float | None = None) -> list[np.ndarray]:
        """One score row per request: cache hits + one engine batch."""
        rows: dict[tuple[int, bool], np.ndarray] = {}
        pending: list[tuple[int, bool]] = []
        for request in batch:
            key = (request.user, request.masked)
            if key in rows or key in pending:
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                rows[key] = cached
            else:
                pending.append(key)
        engine_kwargs = {}
        if engine_timeout is not None:
            engine_kwargs["timeout"] = engine_timeout
        for masked in (True, False):
            users = [user for user, flag in pending if flag == masked]
            if not users:
                continue
            user_array = np.asarray(users, dtype=np.int64)
            scores = (self.engine.masked_scores(user_array, **engine_kwargs)
                      if masked
                      else self.engine.score_all(user_array, **engine_kwargs))
            for position, user in enumerate(users):
                if self.cache is not None:
                    # put() returns the cache's owned copy — serve that
                    # instead of copying the row a second time.
                    row = self.cache.put((user, masked), scores[position])
                else:
                    row = np.array(scores[position], copy=True)
                rows[(user, masked)] = row
        return [rows[(request.user, request.masked)] for request in batch]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 30.0) -> None:
        """Drain queued requests, stop the flusher and (optionally) the engine.

        Raises ``RuntimeError`` if the flusher fails to drain within
        ``timeout`` seconds — in that case an owned engine is left
        open, since tearing it down under an in-flight batch would turn
        pending results into shutdown errors.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queued.notify_all()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"gateway flusher did not drain within {timeout:.1f}s; "
                "the engine was left open"
            )
        if self._own_engine:
            self.engine.close()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
