"""Hot-user score-row cache: LRU eviction, optional TTL, counted.

The :class:`~repro.serving.engine.ScoringEngine` already caches the
expensive half of a request — the per-user *representation* — but every
``top_k`` still pays the ``(d,) @ (d, num_items)`` matmul plus the seen
mask.  Real traffic is heavily skewed: a small set of hot users issues
most requests, and between two requests of the same user nothing about
their score row changes unless ``observe()`` recorded a new interaction
or the model was re-frozen.

:class:`ScoreRowCache` closes that gap for the
:class:`~repro.serving.gateway.ServingGateway`: it keeps the most
recently used masked/raw score rows (one ``(num_items,)`` float vector
per entry, an owned copy so no batch matrix is pinned alive), evicts in
LRU order once ``capacity`` is reached, and optionally expires entries
``ttl_s`` seconds after insertion — the freshness bound for deployments
where the engine is periodically re-frozen behind the gateway's back.
Every outcome is counted (hits, misses, evictions, expirations,
invalidations) and surfaced through :meth:`stats`, which the gateway
folds into its own stats report.

The cache is deliberately *not* thread-safe: the gateway serializes all
engine and cache access behind its execution lock, and keeping the lock
out of the cache keeps single-threaded reuse (tests, offline replays)
free of locking overhead.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from collections import OrderedDict
from typing import Callable, Hashable

import numpy as np

__all__ = ["CacheStats", "ScoreRowCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one :class:`ScoreRowCache`.

    ``hits``/``misses`` count :meth:`ScoreRowCache.get` outcomes (an
    expired entry counts as both an expiration and a miss);
    ``evictions`` counts capacity-driven LRU drops, ``invalidations``
    explicit per-user/``clear`` removals.  ``size`` is the current
    number of live entries and ``capacity``/``ttl_s`` echo the cache
    configuration so a stats row is self-describing.
    """

    capacity: int
    ttl_s: float | None
    size: int
    hits: int
    misses: int
    evictions: int
    expirations: int
    invalidations: int

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (counters plus derived ``hit_rate``)."""
        payload = asdict(self)
        payload["hit_rate"] = self.hit_rate
        return payload


class ScoreRowCache:
    """Capacity-bounded LRU + TTL cache of per-user score rows.

    Parameters
    ----------
    capacity:
        Maximum number of cached rows; inserting beyond it evicts the
        least recently used entry.  Must be positive — callers that want
        caching off should not construct a cache at all.
    ttl_s:
        Optional time-to-live in seconds.  An entry older than this is
        treated as absent on lookup (counted as an expiration) and
        removed.  ``None`` disables expiry.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.

    Keys are arbitrary hashables; the gateway uses ``(user, masked)``
    pairs so the masked and unmasked row of one user live as separate
    entries, and :meth:`invalidate_user` drops both at once.
    """

    def __init__(self, capacity: int, ttl_s: float | None = None,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None to disable)")
        self.capacity = int(capacity)
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: OrderedDict[Hashable, tuple[np.ndarray, float | None]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Whether ``key`` holds a live (non-expired) entry.

        Does not touch the LRU order or the hit/miss counters, but does
        drop (and count) an expired entry it finds.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        if self._expired(entry):
            del self._entries[key]
            self._expirations += 1
            return False
        return True

    def _expired(self, entry: tuple[np.ndarray, float | None]) -> bool:
        expires_at = entry[1]
        return expires_at is not None and self._clock() >= expires_at

    def get(self, key: Hashable) -> np.ndarray | None:
        """The cached row for ``key``, or ``None`` on miss/expiry.

        A hit refreshes the entry's LRU position.  The returned array is
        the cache's own copy — callers must not mutate it.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        if self._expired(entry):
            del self._entries[key]
            self._expirations += 1
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry[0]

    def put(self, key: Hashable, row: np.ndarray) -> np.ndarray:
        """Insert (or replace) the row for ``key``; returns the stored copy.

        Stores an owned copy of ``row`` so cached entries never pin a
        batch score matrix alive, and returns that copy so callers can
        serve it without copying a second time (they must not mutate
        it).  Replacing an existing key refreshes its LRU position and
        TTL deadline; inserting a new key beyond ``capacity`` evicts the
        least recently used entry first.
        """
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        expires_at = None if self.ttl_s is None else self._clock() + self.ttl_s
        stored = np.array(row, copy=True)
        self._entries[key] = (stored, expires_at)
        self._entries.move_to_end(key)
        return stored

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed."""
        if key in self._entries:
            del self._entries[key]
            self._invalidations += 1
            return True
        return False

    def invalidate_user(self, user: int) -> int:
        """Drop every row of ``user`` (masked and raw); returns the count.

        This is the ``observe()`` hook: a new interaction changes both
        the user's representation and their seen mask, so neither cached
        row may survive.
        """
        removed = 0
        for masked in (False, True):
            removed += self.invalidate((user, masked))
        return removed

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        self._invalidations += len(self._entries)
        self._entries.clear()

    def stats(self) -> CacheStats:
        """Counter snapshot (see :class:`CacheStats`)."""
        return CacheStats(
            capacity=self.capacity,
            ttl_s=self.ttl_s,
            size=len(self._entries),
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            expirations=self._expirations,
            invalidations=self._invalidations,
        )
