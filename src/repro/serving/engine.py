"""Batched scoring engine — "materialize once, serve many".

The paper's run-time argument (Table 14) is that HAM answers a
recommendation request in microseconds per user.  The engine makes the
reproduction live up to that claim: instead of re-padding histories and
re-running the model forward on every request, a :class:`ScoringEngine`
takes one frozen snapshot of a trained model and materializes, under
``no_grad``,

* the candidate embedding table and item biases (:class:`FrozenScorer`),
* the per-user padded history matrix (one :func:`pad_histories` call),
* the per-user sequence representations (computed lazily in micro-batches
  and cached), and
* per-user seen-item index arrays (CSR-style: memory scales with the
  number of interactions, not ``num_users x num_items``) for vectorized
  exclusion of already-interacted items.

A repeated top-k request then costs one ``(B, d) @ (d, num_items)``
matmul, one index-assignment mask and one ``argpartition`` — no
per-request padding, no Python ``set`` construction and no embedding
forward pass.  ``top_k`` and ``recommend_batch`` process large user
lists in ``micro_batch_size`` chunks so peak memory stays bounded by
``micro_batch_size x num_items`` scores.

Count-based models (Popularity, ItemKNN, MarkovChain) have no
representation/embedding decomposition; for those the engine falls back
to calling ``model.score_all`` on the cached padded inputs, which still
removes the per-request padding and masking overhead.

``observe(user, item)`` supports session-style traffic: it appends to the
user's history, updates the padded row and the seen arrays in place, and
invalidates only that user's cached representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import no_grad
from repro.data.seen import SeenIndex
from repro.data.windows import pad_histories, pad_id_for
from repro.evaluation.ranking import top_k_items
from repro.models.base import FrozenScorer, SequentialRecommender
from repro.retrieval.index import ANNIndex, RetrievalConfig

__all__ = ["Recommendation", "ScoringEngine"]


@dataclass(frozen=True)
class Recommendation:
    """One recommended item with its model score and rank (0 = best)."""

    item: int
    score: float
    rank: int


class ScoringEngine:
    """Frozen, batched scoring snapshot of a trained model.

    Parameters
    ----------
    model:
        Any trained model of the study (gradient-based or count-based).
    histories:
        Per-user interaction histories the recommendations condition on —
        typically ``split.train_plus_valid()`` after training.
    exclude_seen:
        Exclude items already present in a user's history from rankings
        (the paper's protocol).  Per-request overrides are available on
        :meth:`top_k`.
    micro_batch_size:
        Users per chunk for the model forward and for the score matrix of
        :meth:`top_k` / :meth:`recommend_batch`; keeps peak memory at
        ``micro_batch_size x num_items`` scores for large user lists.
        (:meth:`score_all` returns the full ``(B, num_items)`` matrix by
        contract, so its output necessarily scales with the request.)
    precompute:
        Materialize every user's representation eagerly at construction.
        With ``False`` (the default) representations are computed on
        first use, which is what the evaluators want — they touch each
        user exactly once.
    copy_weights:
        Snapshot the scoring head by copy (``True``, the serving
        contract) or by view onto the live parameters (``False``, used by
        the evaluators and the back-compat facade so in-place optimizer
        updates keep flowing through).
    cache_representations:
        Cache per-user representations across requests (``True``, the
        serving contract).  ``False`` recomputes them on every request.
    live_histories:
        ``False`` (the serving contract): snapshot the histories at
        construction and evolve them only through :meth:`observe`.
        ``True``: keep a reference to the caller's lists and re-read them
        on every request — the behaviour of the original ``Recommender``,
        whose callers record new interactions by appending to their own
        history lists.  Implies no representation caching; ``observe``
        appends to the caller's lists.
    """

    def __init__(self, model: SequentialRecommender, histories: list[list[int]],
                 exclude_seen: bool = True, micro_batch_size: int = 1024,
                 precompute: bool = False, copy_weights: bool = True,
                 cache_representations: bool = True,
                 live_histories: bool = False):
        if len(histories) < model.num_users:
            raise ValueError(
                f"histories cover {len(histories)} users but the model expects "
                f"{model.num_users}"
            )
        self._wire_core(model, exclude_seen, micro_batch_size)
        self._copy_weights = copy_weights
        self._live = live_histories
        self._cache_representations = cache_representations and not live_histories

        if live_histories:
            self._histories = histories
            self._inputs = None
        else:
            self._histories = [list(histories[user]) for user in range(self.num_users)]
            self._inputs = pad_histories(self._histories, self.input_length, self.pad_id)
        # Seen-item index arrays, built lazily on the first masked request
        # (an exclude_seen=False engine never pays for them) and never at
        # all in live mode, where they would go stale.
        self._seen_items: list[np.ndarray] | None = None

        # Fast path: models exposing the representation/embedding
        # decomposition get cached representations; the rest fall back to
        # model.score_all on the cached padded inputs.
        try:
            self._frozen = model.freeze(copy=copy_weights)
        except NotImplementedError:
            pass
        else:
            if self._cache_representations:
                self._alloc_representation_cache()
        if precompute:
            self.materialize()

    def _wire_core(self, model: SequentialRecommender, exclude_seen: bool,
                   micro_batch_size: int) -> None:
        """Shared field wiring of ``__init__`` and :meth:`from_snapshot`."""
        if micro_batch_size < 1:
            raise ValueError("micro_batch_size must be positive")
        model.eval()
        self.model = model
        self.num_users = model.num_users
        self.num_items = model.num_items
        self.input_length = model.input_length
        self.pad_id = pad_id_for(model.num_items)
        self.exclude_seen = exclude_seen
        self.micro_batch_size = micro_batch_size
        self._frozen: FrozenScorer | None = None
        self._representations: np.ndarray | None = None
        self._rep_valid: np.ndarray | None = None
        self._ann: ANNIndex | None = None
        # History-less snapshot engines raise on observe() unless
        # from_snapshot() opted them in (the shard workers do).
        self._snapshot_observable = False

    def _alloc_representation_cache(self) -> None:
        # The cache matches the model's compute dtype so the cached path
        # stays bit-for-bit identical to model.score_all (float32 models
        # included).
        self._representations = np.zeros(
            (self.num_users, self._frozen.embedding_dim),
            dtype=self._frozen.candidate_embeddings.dtype,
        )
        self._rep_valid = np.zeros(self.num_users, dtype=bool)

    @classmethod
    def from_snapshot(cls, model: SequentialRecommender, *, inputs: np.ndarray,
                      seen_items: list[np.ndarray] | None,
                      frozen: FrozenScorer | None,
                      exclude_seen: bool = True,
                      micro_batch_size: int = 1024,
                      observable: bool = False) -> "ScoringEngine":
        """Build an engine directly from pre-materialized arrays.

        This is the constructor the multi-process substrate uses: a shard
        worker attaches the parent's padded ``inputs``, per-user
        ``seen_items`` views and :class:`FrozenScorer` arrays from
        ``multiprocessing.shared_memory`` and wires them into a regular
        engine — every scoring request then runs the exact serial code
        path, which is what makes sharded results bit-identical to the
        single-process engine.

        Snapshot engines have no history lists, so :meth:`history`
        raises.  By default :meth:`observe` raises too; ``observable=True``
        opts a snapshot engine into incremental updates — ``inputs`` must
        then be writable (the shard workers attach their padded-input
        block writable for exactly this) and ``observe`` evolves the
        padded row, the per-user seen array and the representation-cache
        validity bit without a backing history list.
        """
        engine = cls.__new__(cls)
        engine._wire_core(model, exclude_seen, micro_batch_size)
        engine._copy_weights = True
        engine._live = False
        engine._cache_representations = frozen is not None
        engine._histories = None
        engine._snapshot_observable = observable
        if observable and not inputs.flags.writeable:
            raise ValueError("observable=True needs writable inputs")
        if inputs.shape != (engine.num_users, engine.input_length):
            raise ValueError(
                f"inputs shape {inputs.shape} does not match "
                f"({engine.num_users}, {engine.input_length})"
            )
        engine._inputs = inputs
        engine._seen_items = seen_items
        engine._frozen = frozen
        if frozen is not None:
            engine._alloc_representation_cache()
        return engine

    # ------------------------------------------------------------------ #
    # Snapshot maintenance
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """No-op: the serial engine holds no external resources.

        Exists so serial and sharded engines share one lifecycle API and
        callers can ``engine.close()`` unconditionally.
        """

    @property
    def supports_cached_representations(self) -> bool:
        """Whether the model exposes the fast representation path."""
        return self._frozen is not None

    def materialize(self) -> "ScoringEngine":
        """Eagerly compute and cache every user's representation."""
        if self._rep_valid is not None:
            self._ensure_representations(np.arange(self.num_users, dtype=np.int64))
        return self

    def refresh(self) -> "ScoringEngine":
        """Re-snapshot the model (call after further training).

        A built ANN index is retrained over the refreshed candidate
        table with its previous configuration, so the approximate stage
        never serves stale geometry.
        """
        if self._frozen is not None:
            self._frozen = self.model.freeze(copy=self._copy_weights)
            if self._rep_valid is not None:
                self._rep_valid[:] = False
                dtype = self._frozen.candidate_embeddings.dtype
                if self._representations.dtype != dtype:
                    # Training may have re-cast the model (Module.astype).
                    self._representations = self._representations.astype(dtype)
            if self._ann is not None:
                self.build_ann_index(self._ann.config)
        return self

    # ------------------------------------------------------------------ #
    # ANN retrieval (the approximate first stage of top_k(mode="ann"))
    # ------------------------------------------------------------------ #
    @property
    def ann_index(self) -> ANNIndex | None:
        """The attached ANN candidate index, or ``None`` (exact only)."""
        return self._ann

    def build_ann_index(self, config: RetrievalConfig | None = None) -> ANNIndex:
        """Train an ANN index over the frozen candidate table.

        Returns the index (also attached to the engine, enabling
        ``top_k(..., mode="ann")``).  Requires the representation fast
        path — count-based models score through ``model.score_all`` and
        have no candidate table to index.
        """
        if self._frozen is None:
            raise NotImplementedError(
                f"{type(self.model).__name__} has no candidate-embedding "
                "table; ANN retrieval needs the representation fast path"
            )
        table = self._scorer().candidate_embeddings[: self.num_items]
        self._ann = ANNIndex.build(np.ascontiguousarray(table), config)
        return self._ann

    def attach_ann_index(self, index: ANNIndex) -> None:
        """Attach a pre-built index (e.g. from a snapshot or the arena).

        The index must have been trained over this engine's candidate
        table — the geometry is validated, the contents trusted.
        """
        if self._frozen is None:
            raise NotImplementedError(
                f"{type(self.model).__name__} has no candidate-embedding "
                "table; ANN retrieval needs the representation fast path"
            )
        if index.num_items != self.num_items:
            raise ValueError(
                f"index covers {index.num_items} items, engine serves "
                f"{self.num_items}"
            )
        if index.dim != self._frozen.embedding_dim:
            raise ValueError(
                f"index dim {index.dim} does not match embedding dim "
                f"{self._frozen.embedding_dim}"
            )
        self._ann = index

    def _ensure_seen_arrays(self) -> None:
        """Materialize the per-user seen arrays (lazy, one CSR pass)."""
        if self._seen_items is not None:
            return
        if self._histories is None:
            raise RuntimeError(
                "this snapshot engine was built without seen-item arrays; "
                "masked requests are unavailable"
            )
        index = SeenIndex.from_histories(self._histories, self.num_items)
        self._seen_items = [index.user_items(user) for user in range(self.num_users)]

    def _ann_candidates(self, rep: np.ndarray, k: int, n_probe: int,
                        multiplier: int, bias: np.ndarray | None,
                        seen: np.ndarray | None,
                        width: int) -> np.ndarray | None:
        """Unseen candidate ids of one query, or ``None`` for exact fallback.

        Starts at the requested ``n_probe`` and doubles the probed
        prefix while the (seen-filtered) candidate set is still
        narrower than the requested ``width`` — probing more buckets
        only *extends* the set, so the initial dial still decides the
        common case.  If every bucket has been probed and the per-bucket
        quota still leaves the set short, the caller scores that row
        exactly instead.
        """
        index = self._ann
        probe = n_probe
        while True:
            candidates = index.candidates(rep, k, probe, multiplier, bias)
            if seen is not None and seen.size and candidates.size:
                candidates = candidates[np.isin(candidates, seen, invert=True)]
            if candidates.size >= width:
                return candidates
            if probe >= index.n_buckets:
                return None
            probe = min(index.n_buckets, probe * 2)

    def _ann_top_k(self, users: np.ndarray, k: int, exclude: bool,
                   n_probe: int | None,
                   multiplier: int | None) -> tuple[np.ndarray, np.ndarray]:
        """ANN candidates + exact re-rank: ``(ranked, scores)`` per user."""
        if self._ann is None:
            raise RuntimeError(
                "no ANN index attached; call build_ann_index() / "
                "attach_ann_index() or use mode='exact'"
            )
        index = self._ann
        n_probe = index.config.n_probe if n_probe is None else int(n_probe)
        multiplier = (index.config.candidate_multiplier if multiplier is None
                      else int(multiplier))
        scorer = self._scorer()
        table = scorer.candidate_embeddings[: self.num_items]
        bias = (scorer.item_bias[: self.num_items]
                if scorer.item_bias is not None else None)
        representations = self._representations_for(users)
        width = min(k, self.num_items)
        ranked = np.empty((users.size, width), dtype=np.int64)
        out_scores = np.empty((users.size, width), dtype=np.float64)
        if exclude:
            self._ensure_seen_arrays()
        for row in range(users.size):
            rep = representations[row]
            seen = self._seen_items[users[row]] if exclude else None
            candidates = self._ann_candidates(rep, k, n_probe, multiplier,
                                              bias, seen, width)
            if candidates is None:
                # Quota-starved even with every bucket probed: score the
                # row exactly so the contract (width ids, best first)
                # holds regardless of catalogue shape.
                scores = scorer.scores_from_representation(rep[None, :])
                scores = np.array(scores, dtype=np.float64, copy=True)
                if seen is not None and seen.size:
                    scores[0, seen] = -np.inf
                ids = top_k_items(scores, k)[0]
                ranked[row] = ids
                out_scores[row] = scores[0, ids]
                continue
            scores = table[candidates] @ rep
            if bias is not None:
                scores = scores + bias[candidates]
            scores = scores.astype(np.float64, copy=False)
            if candidates.size > width:
                top = np.argpartition(-scores, width - 1)[:width]
            else:
                top = np.arange(candidates.size)
            pick = top[np.argsort(-scores[top], kind="stable")]
            ranked[row] = candidates[pick]
            out_scores[row] = scores[pick]
        return ranked, out_scores

    def history(self, user: int) -> list[int]:
        """Copy of the engine's current history of ``user``."""
        self._validate_user(user)
        if self._histories is None:
            raise RuntimeError("snapshot engines hold no history lists")
        return list(self._histories[user])

    def observe(self, user: int, item: int) -> None:
        """Record a new ``(user, item)`` interaction incrementally.

        Appends to the user's history, shifts the padded input row,
        marks the item as seen and invalidates only that user's cached
        representation — the next request recomputes one row instead of
        the whole table.
        """
        self._validate_user(user)
        self._validate_item(item)
        if self._histories is None:
            if not self._snapshot_observable:
                raise RuntimeError(
                    "snapshot engines are read-only; observe() is only "
                    "available on engines built from histories or snapshots "
                    "taken with observable=True"
                )
        else:
            self._histories[user].append(item)
        if self._inputs is not None:
            row = self._inputs[user]
            row[:-1] = row[1:]
            row[-1] = item
        if self._seen_items is not None:
            self._seen_items[user] = np.append(self._seen_items[user], item)
        if self._rep_valid is not None:
            self._rep_valid[user] = False

    def replay_observe(self, user: int, item: int) -> None:
        """Re-apply an already-acknowledged interaction to a fresh snapshot.

        Recovery path of the sharded engine: a respawned shard worker
        re-attaches to shared memory whose padded input rows already
        contain every acknowledged ``observe`` (the previous incarnation
        shifted them in place), but the per-user seen arrays and the
        representation-validity bits are process-local and restart from
        the original snapshot.  Replay closes exactly that gap — it
        marks ``item`` seen and invalidates ``user``'s cached
        representation *without* shifting the input row again, so
        applying one replay per acknowledged observe reconstructs the
        dead worker's scoring state bit-for-bit.
        """
        self._validate_user(user)
        self._validate_item(item)
        if self._seen_items is not None:
            self._seen_items[user] = np.append(self._seen_items[user], item)
        if self._rep_valid is not None:
            self._rep_valid[user] = False

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _validate_user(self, user: int) -> None:
        if not 0 <= user < self.num_users:
            raise ValueError(f"user id {user} outside [0, {self.num_users})")

    def _validate_item(self, item: int) -> None:
        if not 0 <= item < self.num_items:
            raise ValueError(f"item id {item} outside [0, {self.num_items})")

    def _as_user_array(self, users) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d sequence of user ids")
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            bad = users[(users < 0) | (users >= self.num_users)][0]
            raise ValueError(f"user id {bad} outside [0, {self.num_users})")
        return users

    def _inputs_for(self, users: np.ndarray) -> np.ndarray:
        if self._inputs is not None:
            return self._inputs[users]
        return pad_histories(self._histories, self.input_length, self.pad_id,
                             users=users)

    def _scorer(self) -> FrozenScorer:
        """The scoring head to use for the current request.

        Live engines re-freeze on every call: ``freeze(copy=False)`` only
        tracks in-place weight updates when ``candidate_item_embeddings``
        returns a parameter view, and models like FPMC build a fresh
        derived table per call instead.
        """
        if self._live:
            return self.model.freeze(copy=False)
        return self._frozen

    def _compute_representations(self, users: np.ndarray) -> np.ndarray:
        """Model forward over ``users``' inputs, in micro-batches."""
        result = np.empty((users.size, self._frozen.embedding_dim),
                          dtype=self._frozen.candidate_embeddings.dtype)
        for start in range(0, users.size, self.micro_batch_size):
            chunk = users[start:start + self.micro_batch_size]
            with no_grad():
                result[start:start + self.micro_batch_size] = (
                    self.model.sequence_representation(chunk, self._inputs_for(chunk)).data
                )
        return result

    def _ensure_representations(self, users: np.ndarray) -> None:
        """Compute and cache representations for the not-yet-valid users."""
        pending = np.unique(users[~self._rep_valid[users]])
        if pending.size == 0:
            return
        self._representations[pending] = self._compute_representations(pending)
        self._rep_valid[pending] = True

    def _representations_for(self, users: np.ndarray) -> np.ndarray:
        if self._rep_valid is not None:
            self._ensure_representations(users)
            return self._representations[users]
        return self._compute_representations(users)

    def _mask_seen(self, scores: np.ndarray, users: np.ndarray) -> None:
        """Push each user's seen items to ``-inf``, in place."""
        if self._live:
            for row, user in enumerate(users):
                history = self._histories[user]
                if history:
                    scores[row, np.asarray(history, dtype=np.int64)] = -np.inf
            return
        # Built through the shared CSR index (one pass over the
        # histories); the per-user views stay cheap to index with and
        # observe() replaces them per user as interactions arrive.
        self._ensure_seen_arrays()
        for row, user in enumerate(users):
            scores[row, self._seen_items[user]] = -np.inf

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def score_all(self, users) -> np.ndarray:
        """Raw scores of every real item, ``(B, num_items)``.

        Matches ``model.score_all`` on the same users bit-for-bit (the
        parity the evaluators rely on), but serves repeated requests from
        the cached representations.
        """
        users = self._as_user_array(users)
        if self._frozen is not None:
            return self._scorer().scores_from_representation(self._representations_for(users))
        chunks = []
        for start in range(0, users.size, self.micro_batch_size):
            chunk = users[start:start + self.micro_batch_size]
            chunks.append(self.model.score_all(chunk, self._inputs_for(chunk)))
        if not chunks:
            return np.zeros((0, self.num_items), dtype=np.float64)
        return chunks[0] if len(chunks) == 1 else np.vstack(chunks)

    def masked_scores(self, users) -> np.ndarray:
        """Scores with seen items pushed to ``-inf``.

        On the fast path the engine owns the freshly computed score
        array, so the mask is applied in place; the ``model.score_all``
        fallback gets a defensive float64 copy (a model override may
        return aliased or integer-typed scores).
        """
        users = self._as_user_array(users)
        scores = self.score_all(users)
        if self._frozen is None:
            scores = np.array(scores, dtype=np.float64, copy=True)
        self._mask_seen(scores, users)
        return scores

    def top_k(self, users, k: int, exclude_seen: bool | None = None,
              mode: str | None = None, n_probe: int | None = None,
              candidate_multiplier: int | None = None) -> np.ndarray:
        """Ranked ids of the top-``k`` items per user, best first.

        ``mode`` selects the retrieval stage: ``"exact"`` (the default)
        scores the full catalogue — large user lists are processed in
        ``micro_batch_size`` chunks so only ``(chunk, num_items)``
        scores are alive at a time.  ``"ann"`` asks the attached
        :class:`~repro.retrieval.index.ANNIndex` for candidates and
        re-ranks only those with exact scores; ``n_probe`` /
        ``candidate_multiplier`` override the index's dial defaults for
        this request (more probes → higher recall, more latency).
        """
        if k < 1:
            raise ValueError("k must be positive")
        if mode not in (None, "exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        exclude = self.exclude_seen if exclude_seen is None else exclude_seen
        users = self._as_user_array(users)
        if mode == "ann":
            return self._ann_top_k(users, k, exclude, n_probe,
                                   candidate_multiplier)[0]
        width = min(k, self.num_items)
        ranked = np.empty((users.size, width), dtype=np.int64)
        for start in range(0, users.size, self.micro_batch_size):
            chunk = users[start:start + self.micro_batch_size]
            scores = self.masked_scores(chunk) if exclude else self.score_all(chunk)
            ranked[start:start + self.micro_batch_size] = top_k_items(scores, k)
        return ranked

    def top_k_scored(self, users, k: int, exclude_seen: bool | None = None,
                     mode: str | None = None, n_probe: int | None = None,
                     candidate_multiplier: int | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`top_k` plus the (float64) scores of the returned items.

        The gateway's ANN path uses this to resolve futures without
        materializing full score rows; seen items are masked before
        ranking exactly as in :meth:`top_k`.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if mode not in (None, "exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        exclude = self.exclude_seen if exclude_seen is None else exclude_seen
        users = self._as_user_array(users)
        if mode == "ann":
            return self._ann_top_k(users, k, exclude, n_probe,
                                   candidate_multiplier)
        width = min(k, self.num_items)
        ranked = np.empty((users.size, width), dtype=np.int64)
        out_scores = np.empty((users.size, width), dtype=np.float64)
        for start in range(0, users.size, self.micro_batch_size):
            chunk = users[start:start + self.micro_batch_size]
            scores = self.masked_scores(chunk) if exclude else self.score_all(chunk)
            ids = top_k_items(scores, k)
            stop = start + self.micro_batch_size
            ranked[start:stop] = ids
            out_scores[start:stop] = scores[np.arange(ids.shape[0])[:, None], ids]
        return ranked, out_scores

    # ------------------------------------------------------------------ #
    # Request-level API
    # ------------------------------------------------------------------ #
    def recommend(self, user: int, k: int = 10) -> list[Recommendation]:
        """Top-``k`` recommendations for one user."""
        return self.recommend_batch([user], k)[0]

    def recommend_batch(self, users, k: int = 10) -> list[list[Recommendation]]:
        """Top-``k`` recommendations for several users at once."""
        if k < 1:
            raise ValueError("k must be positive")
        users = self._as_user_array(users)
        results: list[list[Recommendation]] = []
        for start in range(0, users.size, self.micro_batch_size):
            chunk = users[start:start + self.micro_batch_size]
            scores = self.score_all(chunk)
            if self.exclude_seen:
                # Keep the raw scores readable for the Recommendation
                # entries; the mask goes into a copy.
                visible = np.array(scores, dtype=np.float64, copy=True)
                self._mask_seen(visible, chunk)
            else:
                visible = scores
            ranked = top_k_items(visible, k)
            row_indices = np.arange(ranked.shape[0])[:, None]
            ranked_scores = scores[row_indices, ranked]
            results.extend(
                [
                    Recommendation(item=int(item), score=float(score), rank=rank)
                    for rank, (item, score) in enumerate(zip(ranked[row], ranked_scores[row]))
                ]
                for row in range(ranked.shape[0])
            )
        return results

    def score(self, user: int, item: int) -> float:
        """The model score of one (user, candidate item) pair."""
        self._validate_user(user)
        self._validate_item(item)
        return float(self.score_all([user])[0, item])

    def similar_items(self, item: int, k: int = 10) -> list[Recommendation]:
        """Items most similar to ``item`` by candidate-embedding cosine."""
        self._validate_item(item)
        if k < 1:
            raise ValueError("k must be positive")
        if self._frozen is None:
            raise NotImplementedError(
                f"{type(self.model).__name__} has no item embeddings"
            )
        table = self._scorer().candidate_embeddings[: self.num_items]
        norms = np.linalg.norm(table, axis=1)
        norms = np.where(norms > 0, norms, 1.0)
        similarities = (table @ table[item]) / (norms * norms[item])
        similarities[item] = -np.inf
        order = np.argsort(-similarities, kind="stable")[:k]
        return [
            Recommendation(item=int(other), score=float(similarities[other]), rank=rank)
            for rank, other in enumerate(order)
        ]
