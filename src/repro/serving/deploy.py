"""Checkpoint-to-engine deployment path.

A serve-only deployment should not have to drag in the trainer stack
(losses, samplers, optimizers) just to answer requests: everything the
engine needs is the trained parameters and the histories to condition
on.  This module rebuilds a model from a ``.npz`` checkpoint written by
``repro-ham train --checkpoint`` (whose metadata records the method
name, dataset dimensions, hyperparameters and compute dtype) and wires
it straight into a :class:`~repro.serving.engine.ScoringEngine` — or,
with ``n_workers > 1``, a sharded multi-process
:class:`~repro.parallel.sharded.ShardedScoringEngine`.  This is the
``repro-ham serve --checkpoint`` path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.models.base import SequentialRecommender
from repro.models.registry import create_model
from repro.training.checkpoint import (_METADATA_KEY, load_checkpoint,
                                       open_checkpoint, read_metadata)

__all__ = ["model_from_checkpoint", "engine_from_checkpoint",
           "node_from_checkpoint"]


def _stored_float_dtype(path: str | Path) -> np.dtype | None:
    """Dtype of the first float parameter stored in the checkpoint."""
    with open_checkpoint(Path(path)) as archive:
        for name in archive.files:
            if name == _METADATA_KEY:
                continue
            array = archive[name]
            if array.dtype.kind == "f":
                return array.dtype
    return None


def model_from_checkpoint(path: str | Path, method: str | None = None,
                          num_users: int | None = None,
                          num_items: int | None = None,
                          hyperparameters: dict | None = None,
                          ) -> tuple[SequentialRecommender, dict[str, Any]]:
    """Rebuild the trained model stored at ``path``.

    The checkpoint metadata written by ``repro-ham train`` carries the
    method name, the dataset dimensions and the model hyperparameters;
    any of them can be overridden (or supplied, for checkpoints written
    by older code or external tools) through the keyword arguments.

    The model's parameters are cast to the checkpoint's stored dtype
    *before* loading, so the reconstruction is bit-exact — an engine
    built on it scores identically to the model that was saved.

    Returns
    -------
    ``(model, metadata)`` — the model is in ``eval`` mode and holds the
    checkpointed parameters.
    """
    metadata = read_metadata(path)
    dims = metadata.get("model", {})
    method = method if method is not None else metadata.get("method")
    num_users = num_users if num_users is not None else dims.get("num_users")
    num_items = num_items if num_items is not None else dims.get("num_items")
    if hyperparameters is None:
        hyperparameters = metadata.get("hyperparameters", {})
    if method is None or num_users is None or num_items is None:
        raise ValueError(
            f"checkpoint {path} does not record method/num_users/num_items; "
            "pass them explicitly to model_from_checkpoint"
        )

    model = create_model(method, int(num_users), int(num_items),
                         rng=np.random.default_rng(0), **dict(hyperparameters))
    dtype = _stored_float_dtype(path)
    if dtype is not None:
        model.astype(dtype)
    load_checkpoint(model, path)
    model.eval()
    return model, metadata


def engine_from_checkpoint(path: str | Path, histories: list[list[int]],
                           n_workers: int = 0, exclude_seen: bool = True,
                           micro_batch_size: int = 1024,
                           precompute: bool = False,
                           request_timeout_s: float | None = None,
                           **model_overrides):
    """``load_checkpoint`` → scoring engine, no trainer stack involved.

    Parameters
    ----------
    histories:
        Per-user interaction histories the recommendations condition on
        (typically ``split.train_plus_valid()`` of the serving dataset).
    n_workers:
        ``> 1`` builds a multi-process
        :class:`~repro.parallel.sharded.ShardedScoringEngine`; otherwise
        the serial engine.
    request_timeout_s:
        Per-request deadline of the sharded engine (``repro-ham serve
        --request-timeout``); ``None`` keeps the engine default
        (:data:`~repro.parallel.sharded.DEFAULT_REQUEST_TIMEOUT_S`).
    model_overrides:
        Forwarded to :func:`model_from_checkpoint` (``method``,
        ``num_users``, ``num_items``, ``hyperparameters``).
    """
    from repro.parallel.sharded import DEFAULT_REQUEST_TIMEOUT_S, make_scoring_engine

    if request_timeout_s is None:
        request_timeout_s = DEFAULT_REQUEST_TIMEOUT_S
    model, _ = model_from_checkpoint(path, **model_overrides)
    return make_scoring_engine(model, histories, n_workers=n_workers,
                               exclude_seen=exclude_seen,
                               micro_batch_size=micro_batch_size,
                               precompute=precompute,
                               request_timeout_s=request_timeout_s)


def node_from_checkpoint(path: str | Path, histories: list[list[int]],
                         bind: str = "127.0.0.1:0", n_workers: int = 0,
                         exclude_seen: bool = True,
                         micro_batch_size: int = 1024,
                         precompute: bool = True, node_index: int = 0,
                         read_timeout_s: float | None = None,
                         request_timeout_s: float | None = None,
                         journal_dir: str | None = None,
                         journal_fsync: str = "always",
                         **model_overrides):
    """Checkpoint → :class:`~repro.cluster.node.EngineNode`, ready to serve.

    The ``repro-ham serve-node`` path: rebuilds the engine exactly as
    :func:`engine_from_checkpoint` (serial, or sharded with
    ``n_workers > 1``) and binds it to ``bind`` (``"host:port"`` or
    ``"unix:/path"``).  ``precompute`` defaults to ``True`` — a node
    pays materialization once at boot instead of on first request.
    ``journal_dir`` (``repro-ham serve-node --journal``) gives the node
    a durable local observe journal, replayed into the engine at boot.
    The returned node owns the engine; install SIGTERM drain and block
    with :meth:`~repro.cluster.node.EngineNode.serve_forever`.
    """
    from repro.cluster.node import DEFAULT_READ_TIMEOUT_S, EngineNode

    engine = engine_from_checkpoint(
        path, histories, n_workers=n_workers, exclude_seen=exclude_seen,
        micro_batch_size=micro_batch_size, precompute=precompute,
        request_timeout_s=request_timeout_s, **model_overrides)
    if read_timeout_s is None:
        read_timeout_s = DEFAULT_READ_TIMEOUT_S
    try:
        return EngineNode(engine, bind=bind, read_timeout_s=read_timeout_s,
                          node_index=node_index, own_engine=True,
                          journal_dir=journal_dir,
                          journal_fsync=journal_fsync)
    except BaseException:
        engine.close()
        raise
