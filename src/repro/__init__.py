"""repro — reproduction of "HAM: Hybrid Associations Models for Sequential Recommendation".

The package is organized as:

``repro.autograd``
    NumPy reverse-mode autodiff substrate (stand-in for PyTorch).
``repro.data``
    Interaction datasets, preprocessing, experimental-setting splits,
    sliding-window training instances and synthetic benchmark analogues.
``repro.models``
    The HAM model family (the paper's contribution) and the Caser, SASRec
    and HGN baselines, plus simple reference recommenders.
``repro.training``
    BPR objective, negative sampling, the training loop and grid search.
``repro.evaluation``
    Recall@k / NDCG@k, the ranking evaluator, significance tests and
    run-time measurement.
``repro.analysis``
    Parameter studies, ablations, improvement summaries, item-frequency
    and gating-weight analyses (paper Sections 6.5-7).
``repro.experiments``
    Registry mapping every paper table/figure to a runnable experiment.
``repro.serving``
    The batched scoring engine, top-k recommendation serving and
    per-factor HAM score explanations.
"""

from repro.serving import Recommender, ScoringEngine, explain_ham_score

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "data",
    "models",
    "training",
    "evaluation",
    "analysis",
    "experiments",
    "serving",
    "Recommender",
    "ScoringEngine",
    "explain_ham_score",
]
