"""Training loop for every model of the study.

The loop follows the paper's protocol (Sections 4.4 and 5.3): sliding
windows of ``n_h + n_p`` items form the training instances, each positive
target is paired with one sampled negative, the BPR loss is minimized with
Adam + weight decay, and the model is validated every ``eval_every``
epochs; the parameters of the best validation epoch are kept.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.autograd import Adam, clip_grad_norm, embedding_index_check, sparse_embedding_grads
from repro.data.batching import BatchIterator
from repro.data.seen import SeenIndex
from repro.data.windows import build_training_instances
from repro.models.base import SequentialRecommender
from repro.models.nonparametric import NonParametricRecommender
from repro.training.config import TrainingConfig
from repro.training.early_stopping import EarlyStopping
from repro.training.losses import get_loss
from repro.training.negative_sampling import NegativeSampler
from repro.training.schedules import LearningRateSchedule

__all__ = ["Trainer", "TrainingResult"]


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    epoch_losses: list[float] = field(default_factory=list)
    validation_history: list[tuple[int, float]] = field(default_factory=list)
    best_validation: float = float("-inf")
    best_epoch: int = -1
    train_seconds: float = 0.0
    #: Wall-clock seconds of each optimization epoch (excludes validation);
    #: the training benchmark derives its p50 epoch time from this.
    epoch_seconds: list[float] = field(default_factory=list)
    #: Sliding-window instances the run trained on (0 for count-based models).
    num_instances: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class Trainer:
    """Train a :class:`SequentialRecommender` with BPR + Adam.

    Parameters
    ----------
    model:
        Any model implementing the shared interface.  Count-based models
        (:class:`NonParametricRecommender` sub-classes such as POP,
        ItemKNN or MarkovChain) are special-cased: they are fitted from
        the training sequences instead of running the BPR loop.
    config:
        Optimization hyperparameters.
    validation_fn:
        Optional callable ``model -> float`` (higher is better), evaluated
        every ``config.eval_every`` epochs; the paper uses Recall@10 on the
        validation split.
    """

    def __init__(self, model: SequentialRecommender,
                 config: TrainingConfig | None = None,
                 validation_fn: Callable[[SequentialRecommender], float] | None = None,
                 schedule: LearningRateSchedule | None = None,
                 early_stopping: EarlyStopping | None = None):
        self.model = model
        self.config = config or TrainingConfig()
        self.validation_fn = validation_fn
        self.schedule = schedule
        self.early_stopping = early_stopping
        self.rng = np.random.default_rng(self.config.seed)

        loss_name = self.config.loss or getattr(model, "recommended_loss", None) or "bpr"
        self.loss_fn = get_loss(loss_name)
        self.loss_name = loss_name
        self.num_negatives = (
            self.config.num_negatives
            or getattr(model, "recommended_num_negatives", None)
            or 1
        )

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def fit(self, train_sequences: list[list[int]]) -> TrainingResult:
        """Train the model on per-user ``train_sequences``.

        Returns the loss/validation history; the model is left holding the
        best-on-validation parameters when ``config.keep_best`` is set and
        a validation function was provided.
        """
        start = time.perf_counter()
        result = TrainingResult()

        if isinstance(self.model, NonParametricRecommender):
            self.model.fit_counts(train_sequences)
            result.train_seconds = time.perf_counter() - start
            return result

        if self.config.dtype is not None:
            # The fast path trains in float32; benchmark tables that need
            # bit-parity with the seed runs pin dtype="float64".
            self.model.astype(self.config.dtype)

        instances = build_training_instances(
            train_sequences, num_items=self.model.num_items,
            n_h=self.model.input_length, n_p=self.config.n_p,
        )
        if len(instances) == 0:
            raise ValueError("no training instances could be built from the sequences")
        result.num_instances = len(instances)
        # Index ranges are validated once here, so the per-lookup check in
        # Embedding.forward can be skipped inside the epoch loop (the
        # sampler only ever draws from [0, num_items)).
        self._validate_instances(instances)

        seen_index = SeenIndex.from_histories(train_sequences, self.model.num_items)
        loader = None
        sampler = None
        iterator = None
        if self.config.loader_workers > 0:
            # Worker-pool path: batches arrive with negatives already
            # drawn; the optimizer loop never waits on sampling.
            from repro.parallel.loader import ParallelBatchLoader

            loader = ParallelBatchLoader(
                instances, self.model.num_items, seen_index,
                batch_size=self.config.batch_size,
                num_negatives=self.num_negatives,
                seed=self.config.seed,
                n_workers=self.config.loader_workers,
                prefetch_batches=self.config.prefetch_batches,
                vectorized=self.config.vectorized_sampling,
            )
        else:
            sampler = NegativeSampler(self.model.num_items, seen_index=seen_index,
                                      rng=self.rng,
                                      vectorized=self.config.vectorized_sampling)
            iterator = BatchIterator(instances, batch_size=self.config.batch_size,
                                     rng=self.rng)
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate,
                         weight_decay=self.config.weight_decay)

        try:
            best_state = self._fit_epochs(result, optimizer, loader, iterator, sampler)
        finally:
            if loader is not None:
                loader.close()

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        result.train_seconds = time.perf_counter() - start
        return result

    def _fit_epochs(self, result: TrainingResult, optimizer: Adam, loader,
                    iterator, sampler):
        best_state = None
        self.model.train()
        for epoch in range(1, self.config.num_epochs + 1):
            if self.schedule is not None:
                optimizer.lr = self.schedule(epoch)
            if loader is not None:
                batches = loader.epoch(epoch - 1)
            else:
                batches = self._sampled_batches(iterator, sampler)
            epoch_start = time.perf_counter()
            epoch_loss = self._run_epoch(batches, optimizer)
            result.epoch_seconds.append(time.perf_counter() - epoch_start)
            result.epoch_losses.append(epoch_loss)
            if self.config.verbose:
                print(f"epoch {epoch:4d}  loss {epoch_loss:.4f}")

            should_validate = (
                self.validation_fn is not None
                and (epoch % self.config.eval_every == 0 or epoch == self.config.num_epochs)
            )
            if should_validate:
                self.model.eval()
                score = float(self.validation_fn(self.model))
                self.model.train()
                result.validation_history.append((epoch, score))
                if score > result.best_validation:
                    result.best_validation = score
                    result.best_epoch = epoch
                    if self.config.keep_best:
                        best_state = self.model.state_dict()
                if self.config.verbose:
                    print(f"epoch {epoch:4d}  validation {score:.4f}")
                if self.early_stopping is not None and self.early_stopping.update(score):
                    if self.config.verbose:
                        print(f"early stopping after epoch {epoch}")
                    break
        return best_state

    # ------------------------------------------------------------------ #
    # One epoch
    # ------------------------------------------------------------------ #
    def _validate_instances(self, instances) -> None:
        """One-time range validation of the training index arrays."""
        pad = instances.pad_id
        for name, array in (("inputs", instances.inputs), ("targets", instances.targets)):
            if array.size and (array.min() < 0 or array.max() > pad):
                raise ValueError(f"training {name} contain ids outside [0, {pad}]")
        if instances.users.size and (
                instances.users.min() < 0
                or instances.users.max() >= self.model.num_users):
            raise ValueError(
                f"training users outside [0, {self.model.num_users})"
            )

    def _sampled_batches(self, iterator: BatchIterator, sampler: NegativeSampler):
        """The in-process batch stream: draw negatives batch by batch.

        This preserves the exact RNG call order of the earlier trainer,
        so ``loader_workers=0`` runs stay bit-identical to it.
        """
        for batch in iterator:
            batch_size, num_targets = batch.targets.shape
            batch.negatives = sampler.sample(
                batch.users, (batch_size, num_targets * self.num_negatives)
            )
            yield batch

    def _run_epoch(self, batches, optimizer: Adam) -> float:
        with embedding_index_check(self.config.validate_indices), \
                sparse_embedding_grads(self.config.sparse_embedding_grad):
            return self._run_epoch_inner(batches, optimizer)

    def _run_epoch_inner(self, batches, optimizer: Adam) -> float:
        total_loss = 0.0
        total_batches = 0
        for batch in batches:
            batch_size, num_targets = batch.targets.shape
            negatives = batch.negatives
            mask = batch.target_mask()
            # Padded targets point at the pad row (zero embedding); they are
            # excluded from the loss by the mask.
            if self.config.fused_scoring:
                # One sequence forward + one candidate gather for both
                # score sets (see SequentialRecommender.score_item_pairs).
                positive_scores, negative_scores = self.model.score_item_pairs(
                    batch.users, batch.inputs, batch.targets, negatives)
            else:
                positive_scores = self.model.score_items(batch.users, batch.inputs, batch.targets)
                negative_scores = self.model.score_items(batch.users, batch.inputs, negatives)
            if self.num_negatives > 1:
                negative_scores = negative_scores.reshape(
                    batch_size, num_targets, self.num_negatives
                )
            loss = self.loss_fn(positive_scores, negative_scores, mask)

            optimizer.zero_grad()
            loss.backward()
            if self.config.max_grad_norm is not None:
                clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
            optimizer.step()
            if hasattr(self.model, "after_step"):
                self.model.after_step()

            total_loss += float(loss.data)
            total_batches += 1
        return total_loss / max(total_batches, 1)
